//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the subset of the proptest API that
//! `tests/proptest_invariants.rs` uses: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`ProptestConfig`], range and
//! [`collection::vec`] strategies, and [`sample::select`].
//!
//! Semantics: each `#[test]` function inside [`proptest!`] is run for
//! `ProptestConfig::cases` generated inputs drawn from a generator seeded
//! deterministically from the test's module path and name, so failures are
//! reproducible run-to-run. Unlike real proptest there is **no shrinking**:
//! a failing case reports the case number and message only. That trade-off
//! keeps the stand-in tiny while preserving the tests' power to catch
//! structural bugs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and range/vec implementations.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Mirror of `proptest::strategy::Strategy`, reduced to plain seeded
    /// sampling (no value trees, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Strategy returned by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy returned by [`crate::sample::select`].
    pub struct Select<T> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use super::strategy::{Strategy, VecStrategy};

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling from explicit option lists ([`select`]).

    use super::strategy::Select;

    /// Generates values uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (on first sample) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Per-`proptest!` block configuration. Mirror of
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A test-case failure raised by [`prop_assert!`] and friends.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the deterministic generator for one proptest function.
/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[must_use]
pub fn deterministic_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name: stable across runs and
    // independent of declaration order.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Draws one value from a strategy. Implementation detail of [`proptest!`];
/// free function so the macro body needs no trait imports at the call site.
#[doc(hidden)]
pub fn sample_one<S: strategy::Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.sample_value(rng)
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
///
/// Supports the optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $pat = $crate::sample_one(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case (by returning a [`TestCaseError`]) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 2usize..9, y in -1.5f64..1.5) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(mut xs in prop::collection::vec(0u32..10, 1..6)) {
            xs.sort_unstable();
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn select_draws_from_options(q in prop::sample::select(vec![2u64, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&q));
        }
    }

    #[test]
    fn failures_panic_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            // No `#[test]` here: the fn is declared inside this test's body
            // purely to exercise the macro expansion, not to be collected.
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let payload = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(payload.contains("failed at case 1/4"), "{payload}");
    }
}
