//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate implements the subset of the criterion 0.5 API that the
//! `bi-bench` benches use: [`Criterion`], [`BenchmarkId`], benchmark groups
//! with [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! batches of iterations until `measurement_time` elapses (at least
//! `sample_size` iterations), and reports the mean wall-clock time per
//! iteration on stdout as `name/param ... time: <mean>`. There are no
//! statistical analyses, plots, or saved baselines — swap the real criterion
//! back in (same API) when the environment has network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Copy, Debug)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(700),
            sample_size: 10,
        }
    }
}

/// The benchmark harness entry point. Mirror of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets how long each benchmark measures for.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.config.measurement_time = duration;
        self
    }

    /// Sets how long each benchmark warms up for.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.config.warm_up_time = duration;
        self
    }

    /// Sets the minimum number of measured iterations.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.sample_size = samples;
        self
    }

    /// In real criterion this applies CLI filters; the stand-in accepts and
    /// ignores them so generated `main` functions stay source-compatible.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let config = self.config;
        run_one(&id.into().render(None), config, f);
    }

    /// Prints the closing summary (no-op in the stand-in).
    pub fn final_summary(&self) {}
}

/// A named benchmark within a group, optionally parameterized.
/// Mirror of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(g) = group {
            out.push_str(g);
            out.push('/');
        }
        out.push_str(&self.function);
        if let Some(p) = &self.parameter {
            if !self.function.is_empty() {
                out.push('/');
            }
            out.push_str(p);
        }
        out
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the minimum number of measured iterations for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().render(Some(&self.name)), self.config, f);
        self
    }

    /// Runs one benchmark in this group, handing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.render(Some(&self.name)), self.config, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times a single benchmark routine. Mirror of `criterion::Bencher`.
pub struct Bencher {
    config: Config,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly (warm-up, then timed batches) and records
    /// the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_deadline {
            black_box(routine());
        }
        let started = Instant::now();
        let deadline = started + self.config.measurement_time;
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if iterations >= self.config.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.total = started.elapsed();
        self.iterations = iterations;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, config: Config, mut f: F) {
    let mut bencher = Bencher {
        config,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{name:<50} (no measurement: Bencher::iter not called)");
    } else {
        let per_iter = bencher.total.as_secs_f64() / bencher.iterations as f64;
        println!(
            "{name:<50} time: {:>12} ({} iterations)",
            format_time(per_iter),
            bencher.iterations
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group runner function. Mirror of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark target of this group.
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`. Mirror of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_run(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(2);
        targets = targets_run
    }

    #[test]
    fn group_macro_expands_and_runs() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(
            BenchmarkId::new("f", 3).render(Some("g")),
            "g/f/3".to_string()
        );
        assert_eq!(BenchmarkId::from_parameter(5).render(None), "5".to_string());
    }
}
