//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand` 0.9 API that the
//! workspace uses: the [`Rng`] extension trait (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic, well-mixed, and plenty for randomized test
//! instances and experiment sweeps. It is **not** the ChaCha12 generator of
//! the real `rand` crate, so seeded streams differ from upstream (nothing in
//! the workspace depends on the exact stream, only on determinism per seed).
//! It is not cryptographically secure.

/// A source of random `u64`s. Mirror of `rand_core::RngCore` (the subset
/// needed here).
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] stream
/// (the stand-in for sampling from rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from; mirror of
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in every workspace use, so one rejection loop suffices.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return self.start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                let span_minus_1 = end.abs_diff(start) as u64;
                if span_minus_1 == u64::MAX {
                    // Full 64-bit domain: every u64 draw maps to a distinct
                    // value, and span_minus_1 + 1 would overflow.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                let span = span_minus_1 + 1;
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng) as f32;
        let x = self.start + u * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// User-facing extension methods, mirroring `rand::Rng` (0.9 names).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators ([`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded through SplitMix64.
    ///
    /// Named `StdRng` to mirror `rand::rngs::StdRng`; the stream differs
    /// from upstream's ChaCha12 (see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers ([`SliceRandom`]).

    use super::{RngCore, SampleRange};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(5);
        let _: u64 = r.random_range(0u64..=u64::MAX);
        let _: i64 = r.random_range(i64::MIN..=i64::MAX);
        let x: u8 = r.random_range(0u8..=u8::MAX);
        let _ = x;
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
