//! # bayesian-ignorance
//!
//! A comprehensive Rust reproduction of **"Bayesian ignorance"** by Noga
//! Alon, Yuval Emek, Michal Feldman and Moshe Tennenholtz (PODC 2010;
//! journal version in *Theoretical Computer Science* 452 (2012) 1–11).
//!
//! The paper quantifies the effect of agents having only *local views* in a
//! Bayesian game by comparing the social cost achievable under partial
//! information against the expected social cost under complete information,
//! for benevolent agents (`optP/optC`) and for selfish agents at best and
//! worst equilibria (`best-eqP/best-eqC`, `worst-eqP/worst-eqC`). Most of
//! its results concern Bayesian **network cost-sharing (NCS) games**.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`core`] *(crate `bi-core`)* — the Bayesian game model, equilibria,
//!   potentials, the six ignorance measures, Section 4's
//!   public-randomness machinery, and the unified solver engine
//!   ([`core::model::BayesianModel`] + [`core::solve::Solver`]) that
//!   computes the measures for every game representation through one
//!   configurable entry point (pluggable backends, budgets, threads);
//! * [`ncs`] — complete-information and Bayesian NCS games with exact
//!   solvers;
//! * [`service`] *(crate `bi-service`)* — the serving layer: the
//!   canonical JSON wire codec ([`util::json`] + per-crate
//!   `Encode`/`Decode` impls), a content-addressed sharded LRU solve
//!   cache, the `bi-serve` HTTP server (worker pool, bounded queue,
//!   `503` backpressure) and the `bi-loadgen` benchmark driver;
//! * [`constructions`] — every explicit construction from the paper
//!   (affine-plane game, `G_k`, `G_worst`, diamond game, FRT strategies);
//! * [`graph`], [`geometry`], [`metric`], [`online`], [`zerosum`],
//!   [`util`] — the substrates.
//!
//! # Quickstart
//!
//! Build a 2-agent Bayesian NCS game and solve it through the unified
//! engine — the same [`core::solve::Solver`] serves matrix-form
//! [`core::BayesianGame`]s and graph-form [`ncs::BayesianNcsGame`]s:
//!
//! ```
//! use bayesian_ignorance::core::solve::Solver;
//! use bayesian_ignorance::graph::{Direction, Graph};
//! use bayesian_ignorance::ncs::{BayesianNcsGame, NcsGame, Prior};
//!
//! // A directed diamond: two routes from s to t.
//! let mut g = Graph::new(Direction::Directed);
//! let s = g.add_node();
//! let m = g.add_node();
//! let t = g.add_node();
//! g.add_edge(s, m, 1.0);
//! g.add_edge(m, t, 1.0);
//! g.add_edge(s, t, 3.0);
//!
//! // Agent 0 always travels s→t; agent 1 travels s→t or stays put.
//! let prior = Prior::independent(vec![
//!     vec![((s, t), 1.0)],
//!     vec![((s, t), 0.5), ((s, s), 0.5)],
//! ]);
//! let game = BayesianNcsGame::new(g, prior).expect("valid game");
//!
//! // Exact exhaustive solve, swept by two worker threads. Swap the
//! // backend (`Backend::MonteCarloSampling { .. }`) and budget for games
//! // beyond exhaustive reach.
//! let report = Solver::builder()
//!     .threads(2)
//!     .build()
//!     .solve(&game)
//!     .expect("solvable");
//! assert!(report.exact);
//! let measures = report.measures;
//! // Complete or partial, someone must buy a route, so optP ≥ optC ≥ 2.
//! assert!(measures.opt_c >= 2.0 - 1e-9);
//! assert!(measures.opt_p >= measures.opt_c - 1e-9);
//! # let _ = NcsGame::new; // re-exported API exercised elsewhere
//! ```

pub use bi_constructions as constructions;
pub use bi_core as core;
pub use bi_geometry as geometry;
pub use bi_graph as graph;
pub use bi_metric as metric;
pub use bi_ncs as ncs;
pub use bi_online as online;
pub use bi_service as service;
pub use bi_util as util;
pub use bi_zerosum as zerosum;
