//! Benevolent network design under uncertainty (Lemma 3.4): route demands
//! along a sampled FRT tree and pay at most `O(log n)` times the expected
//! complete-information optimum — no matter what the prior is.
//!
//! Scenario: a utility plans conduit routes on a street grid. Each day a
//! random set of sites must be connected to the depot; crews commit to a
//! routing *policy* before demands are known.
//!
//! Run with `cargo run --release --example network_design`.

use bayesian_ignorance::constructions::frt_strategy::{
    measure_shared_source, random_terminal_states, FrtRouting,
};
use bayesian_ignorance::graph::{generators, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("street grid   n   K(s) [FRT policy]   optC [exact Steiner]   ratio");
    println!("-------------------------------------------------------------------");
    for side in [3usize, 4, 5, 6, 7] {
        let graph = generators::grid_graph(side, side, 1.0);
        let depot = NodeId::new(0);
        // The planning policy: built once, before any demand is observed.
        let routing = FrtRouting::build(&graph, 16, 2024)?;
        // A prior over demand scenarios: 8 equiprobable site sets.
        let states = random_terminal_states(&graph, depot, 8, 4, 99);
        let m = measure_shared_source(&graph, &routing, depot, &states);
        println!(
            "{side}×{side:<10} {:>3} {:>19.4} {:>21.4} {:>8.4}",
            side * side,
            m.strategy_cost,
            m.opt_c,
            m.ratio()
        );
    }
    println!();
    println!("The ratio stays flat as the grid grows — the O(log n) guarantee of");
    println!("Lemma 3.4. Section 4 adds: with public random bits the planner does");
    println!("not even need to know the demand distribution.");
    Ok(())
}
