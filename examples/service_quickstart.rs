//! Quickstart for the solve service: the wire codec, the
//! content-addressed cache, and batch solving — all in-process.
//!
//! Run with `cargo run --release --example service_quickstart`.
//!
//! For the full networked stack, run the two binaries instead:
//!
//! ```text
//! cargo run --release --bin bi-serve -- --addr 127.0.0.1:0
//! # note the printed port, then:
//! cargo run --release --bin bi-loadgen -- --addr 127.0.0.1:<port> \
//!     --unique 64 --hot 1500 --min-hit-rate 0.99
//! ```

use bayesian_ignorance::core::solve::SolverConfig;
use bayesian_ignorance::graph::{Direction, Graph};
use bayesian_ignorance::ncs::{BayesianNcsGame, Prior};
use bayesian_ignorance::service::{
    BatchRequest, CacheConfig, GameSpec, SolveRequest, SolveService,
};
use bayesian_ignorance::util::{Decode, Encode};

fn main() {
    // The paper's diamond game: two routes from s to t, an always-on
    // agent and a sometimes-on agent.
    let mut g = Graph::new(Direction::Directed);
    let s = g.add_node();
    let m = g.add_node();
    let t = g.add_node();
    g.add_edge(s, m, 1.0);
    g.add_edge(m, t, 1.0);
    g.add_edge(s, t, 3.0);
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), 0.5), ((s, s), 0.5)],
    ]);
    let game = BayesianNcsGame::new(g, prior).expect("valid game");

    // 1. The canonical wire codec: every solvable object has a
    //    deterministic JSON form; canonical bytes are the cache key.
    let request = SolveRequest {
        game: GameSpec::Ncs(game),
        config: SolverConfig::default(),
    };
    let wire = request.encode().canonical_string();
    println!("wire request ({} bytes):\n  {wire}\n", wire.len());
    let parsed = SolveRequest::decode_str(&wire).expect("round-trips");

    // 2. The content-addressed cache: the first solve computes, the
    //    second is answered from canonical-byte identity.
    let service = SolveService::new(CacheConfig::default());
    let cold = service.solve(&parsed).expect("solvable");
    let warm = service.solve(&parsed).expect("solvable");
    println!(
        "cold: hit={} | warm: hit={} | same bytes: {}",
        cold.cache_hit,
        warm.cache_hit,
        cold.body == warm.body
    );
    println!(
        "report:\n  {}\n",
        std::str::from_utf8(&warm.body).expect("canonical JSON is UTF-8")
    );

    // 3. Batch solving: one config, many games (here: a family of
    //    priors over one graph) — uncached members go through
    //    Solver::solve_many in parallel.
    let family: Vec<GameSpec> = [0.25, 0.5, 0.75]
        .iter()
        .map(|&p| {
            let mut g = Graph::new(Direction::Directed);
            let s = g.add_node();
            let m = g.add_node();
            let t = g.add_node();
            g.add_edge(s, m, 1.0);
            g.add_edge(m, t, 1.0);
            g.add_edge(s, t, 3.0);
            let prior = Prior::independent(vec![
                vec![((s, t), 1.0)],
                vec![((s, t), p), ((s, s), 1.0 - p)],
            ]);
            GameSpec::Ncs(BayesianNcsGame::new(g, prior).expect("valid game"))
        })
        .collect();
    let batch = BatchRequest {
        games: family,
        config: SolverConfig {
            threads: 2,
            ..SolverConfig::default()
        },
    };
    for (i, result) in service.solve_batch(&batch).iter().enumerate() {
        let outcome = result.as_ref().expect("solvable");
        println!(
            "batch[{i}]: hit={} report={}",
            outcome.cache_hit,
            std::str::from_utf8(&outcome.body).expect("canonical JSON is UTF-8")
        );
    }
    let stats = service.cache_stats();
    println!(
        "\ncache: {} hits, {} misses, {} entries",
        stats.hits, stats.misses, stats.entries
    );
}
