//! Quickstart: build a Bayesian network cost-sharing game, solve it with
//! the unified [`Solver`] engine, and read off the three ignorance
//! ratios.
//!
//! Run with `cargo run --example quickstart`.

use bayesian_ignorance::core::solve::Solver;
use bayesian_ignorance::graph::{Direction, Graph};
use bayesian_ignorance::ncs::{BayesianNcsGame, Prior};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small directed network: two routes from s to t — a shared two-hop
    // route (1 + 1) and a private direct edge (3).
    let mut g = Graph::new(Direction::Directed);
    let s = g.add_node();
    let m = g.add_node();
    let t = g.add_node();
    g.add_edge(s, m, 1.0);
    g.add_edge(m, t, 1.0);
    g.add_edge(s, t, 3.0);

    // Agent 0 always needs s→t. Agent 1 needs s→t only half the time —
    // and agent 0 cannot observe whether she is there to share costs.
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), 0.5), ((s, s), 0.5)],
    ]);
    let game = BayesianNcsGame::new(g, prior)?;

    // Exact measures through the unified engine: partial-information (P)
    // vs complete-information (C). `Solver::builder()` exposes backends
    // (exhaustive / dynamics / Monte Carlo), budgets, and worker threads;
    // the default reproduces the exact exhaustive solve.
    let report = Solver::builder().threads(2).build().solve(&game)?;
    let measures = report.measures;
    measures.verify_chain()?; // Observation 2.2
    println!(
        "method: {:?} (exact: {}), profiles evaluated: {}",
        report.method, report.exact, report.profiles_evaluated
    );
    println!();

    println!(
        "optP      = {:.4}   optC      = {:.4}",
        measures.opt_p, measures.opt_c
    );
    println!(
        "best-eqP  = {:.4}   best-eqC  = {:.4}",
        measures.best_eq_p, measures.best_eq_c
    );
    println!(
        "worst-eqP = {:.4}   worst-eqC = {:.4}",
        measures.worst_eq_p, measures.worst_eq_c
    );

    let ratios = measures.ratios();
    println!();
    println!("effect of Bayesian ignorance:");
    println!(
        "  optP/optC           = {:.4}  (benevolent agents)",
        ratios.opt
    );
    println!(
        "  best-eqP/best-eqC   = {:.4}  (selfish, best equilibria)",
        ratios.best_eq
    );
    println!(
        "  worst-eqP/worst-eqC = {:.4}  (selfish, worst equilibria)",
        ratios.worst_eq
    );

    // A Bayesian equilibrium, found by interim best-response dynamics
    // (guaranteed to converge: NCS games are Bayesian potential games).
    let eq = game
        .best_response_dynamics(game.shortest_path_strategy(), 100)
        .expect("potential game converges");
    println!();
    println!(
        "equilibrium social cost K(s) = {:.4}",
        game.social_cost(&eq)
    );
    Ok(())
}
