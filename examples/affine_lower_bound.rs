//! Lemma 3.2: Bayesian ignorance can cost a full factor of k.
//!
//! The affine-plane game: agents share a source and must reach points of a
//! secret line. With global views everyone piggybacks on the true line's
//! edge (total cost 1); with local views, geometry guarantees that wrong
//! guesses are *never* shared — two points determine a line — so the
//! expected cost is Θ(k) for **every** strategy profile.
//!
//! Run with `cargo run --release --example affine_lower_bound`.

use bayesian_ignorance::constructions::affine_game::AffinePlaneGame;
use bayesian_ignorance::geometry::prime::prime_powers_in;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("order m   k = m+1   vertices (Θ(k²))   optP = E[K(s)]   optC   ratio Ω(k)");
    println!("--------------------------------------------------------------------------");
    for m in prime_powers_in(2, 13) {
        let game = AffinePlaneGame::new(m)?;
        println!(
            "{m:>7} {:>9} {:>18} {:>16.4} {:>6.1} {:>11.4}",
            game.num_agents(),
            game.vertex_count(),
            game.analytic_opt_p(),
            game.analytic_opt_c(),
            game.analytic_ratio()
        );
    }

    // The striking part: the expected cost is the same for EVERY profile.
    // Sample random strategy profiles on the order-4 plane and watch the
    // measured cost refuse to move.
    let game = AffinePlaneGame::new(4)?;
    let mut rng = bayesian_ignorance::util::rng::seeded(1);
    println!();
    println!("order-4 plane, 5 random strategy profiles:");
    for trial in 0..5 {
        let strategies: Vec<Vec<usize>> = (0..game.order())
            .map(|_| {
                (0..game.plane().point_count())
                    .map(|p| {
                        let lines = game.plane().lines_through(p);
                        lines[rng.random_range(0..lines.len())]
                    })
                    .collect()
            })
            .collect();
        println!(
            "  trial {trial}: E[K(s)] = {:.6}",
            game.expected_social_cost(&strategies)?
        );
    }
    println!("(all equal to 1 + m²/(m+1) = {:.6})", game.analytic_opt_p());
    Ok(())
}
