//! "Ignorance is bliss" (Lemma 3.3 / Remark 1): a Bayesian NCS game in
//! which *every* equilibrium of ill-informed agents beats *every*
//! equilibrium of fully informed agents.
//!
//! The `G_k` graph (Fig. 1 of the paper): direct edges `x→y_i` of cost
//! `1/i` compete with a hub `z` reachable for `1+ε` and free afterwards.
//! The 1/2-probability presence of a hub-loving agent `k` — invisible to
//! the others — tips everyone into sharing the hub, which happens to be
//! the social optimum; full information instead locks agents into the
//! `H(k−1)`-cost "every man for himself" equilibrium.
//!
//! Run with `cargo run --release --example ignorance_is_bliss`.

use bayesian_ignorance::constructions::pos_game::GkGame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("k   worst-eqP   best-eqC   bliss ratio   optC");
    println!("----------------------------------------------");
    for k in [4usize, 6, 8] {
        let game = GkGame::new(k)?;
        let m = game.exact_measures()?;
        println!(
            "{k:<3} {:>9.4} {:>10.4} {:>13.4} {:>6.4}",
            m.worst_eq_p,
            m.best_eq_c,
            m.worst_eq_p / m.best_eq_c,
            m.opt_c
        );
        assert!(m.worst_eq_p < m.best_eq_c, "ignorance must be bliss in G_k");
    }
    println!();
    println!("Larger k (analytic: the exact solver would need 2^(k-1) profiles):");
    for k in [16usize, 64, 256, 1024] {
        let game = GkGame::new(k)?;
        println!(
            "  k = {k:>5}: worst-eqP = {:.4}, best-eqC ≥ {:.4}, ratio ≤ {:.4}",
            game.analytic_worst_eq_p(),
            game.analytic_best_eq_c_lower(),
            game.analytic_bliss_ratio()
        );
    }
    println!();
    println!("The worst Bayesian equilibrium achieves the expected cost of the");
    println!("globally optimal outcome (Remark 1): local views *help* society here.");
    Ok(())
}
