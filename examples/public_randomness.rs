//! Section 4: public random bits replace the common prior.
//!
//! For a Bayesian game stripped of its prior (`φ`), the paper proves that
//! a single distribution `q` over strategy profiles — computable without
//! knowing the prior — achieves the optimal ratio `R(φ)` against *every*
//! prior simultaneously. This example computes `q` exactly by solving the
//! associated zero-sum game with the in-repo simplex LP, verifies
//! Proposition 4.2 (`R = R̃`) by an independent bisection, and stress-tests
//! the Lemma 4.1 guarantee against thousands of adversarial priors.
//!
//! Run with `cargo run --release --example public_randomness`.

use bayesian_ignorance::core::bayesian::BayesianGame;
use bayesian_ignorance::core::game::MatrixFormGame;
use bayesian_ignorance::core::randomness::CostTuple;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planner (agent 0) must pre-position a resource at location A or B;
    // nature (agent 1, type unobserved) decides where demand lands.
    // Positioning wrong costs 3, right costs 1; a hedged mixed choice is
    // what public randomness buys.
    let state_game = |good: usize| {
        MatrixFormGame::from_fn(2, &[2, 1], move |i, a| {
            if i == 1 {
                0.5 // nature's bookkeeping cost, irrelevant to the planner
            } else if a[0] == good {
                1.0
            } else {
                3.0
            }
        })
    };
    let game = BayesianGame::new(
        vec![1, 2],
        vec![
            (vec![0, 0], 0.5, state_game(0)),
            (vec![0, 1], 0.5, state_game(1)),
        ],
    )?;

    let tuple = CostTuple::from_bayesian(&game)?;
    let sol = tuple.solve()?;
    let r_star = tuple.r_star(1e-9)?;

    println!("R̃(φ) (zero-sum game value)   = {:.6}", sol.r_tilde);
    println!("R(φ)  (independent bisection) = {r_star:.6}");
    println!(
        "Proposition 4.2 gap           = {:.2e}",
        (sol.r_tilde - r_star).abs()
    );
    println!();
    println!("Lemma 4.1 distribution q over strategy profiles:");
    for (s, &q) in sol.distribution.iter().enumerate() {
        if q > 1e-9 {
            println!("  profile {s}: q = {q:.4}");
        }
    }
    println!(
        "adversarial prior (nature's optimum): {:?}",
        sol.worst_prior
            .iter()
            .map(|p| (p * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );

    // Stress the guarantee: q must meet R̃ for every prior.
    let mut rng = bayesian_ignorance::util::rng::seeded(7);
    let mut worst = f64::NEG_INFINITY;
    for _ in 0..5000 {
        let a: f64 = rng.random_range(0.0..1.0);
        let prior = [a, 1.0 - a];
        worst = worst.max(tuple.guarantee(&sol.distribution, &prior));
    }
    println!();
    println!("max over 5000 random priors of the q-guarantee = {worst:.6} (≤ R̃ ✓)");
    assert!(worst <= sol.r_tilde + 1e-7);
    Ok(())
}
