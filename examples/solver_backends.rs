//! The pluggable solver backends side by side.
//!
//! One `Solver` engine computes the six ignorance measures for every
//! `BayesianModel`. This example solves the same random Bayesian NCS game
//! with each backend and shows the budget mechanism: a strategy space
//! over `Budget::max_profiles` *errors* under exhaustive enumeration but
//! *solves* (inexactly) under Monte Carlo sampling.
//!
//! Run with `cargo run --release --example solver_backends`.

use std::time::Instant;

use bayesian_ignorance::constructions::universal::random_bayesian_ncs;
use bayesian_ignorance::core::solve::{Backend, SolveError, Solver};
use bayesian_ignorance::core::BayesianModel;
use bayesian_ignorance::graph::Direction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size random game: 2 agents, 2 types each, on a 5-vertex
    // directed network (seeded — reruns are identical).
    let game = random_bayesian_ncs(Direction::Directed, 5, 0.35, 2, 2, 17)?;
    let space = game.strategy_space_size()?;
    println!("strategy space: {space} profiles\n");

    let seed = 17;
    let configs: Vec<(&str, Solver)> = vec![
        ("exhaustive (1 thread)", Solver::builder().build()),
        (
            "exhaustive (4 threads)",
            Solver::builder().threads(4).build(),
        ),
        (
            "best-response dynamics",
            Solver::builder()
                .backend(Backend::BestResponseDynamics { restarts: 16, seed })
                .build(),
        ),
        (
            "Monte Carlo (256 samples)",
            Solver::builder()
                .backend(Backend::MonteCarloSampling { samples: 256, seed })
                .build(),
        ),
    ];

    println!(
        "{:<26} {:>8} {:>9} {:>10} {:>6} {:>10} {:>9}",
        "backend", "optP", "best-eqP", "worst-eqP", "exact", "profiles", "time"
    );
    for (label, solver) in configs {
        let t0 = Instant::now();
        let report = solver.solve(&game)?;
        let m = report.measures;
        println!(
            "{:<26} {:>8.4} {:>9.4} {:>10.4} {:>6} {:>10} {:>8.1}ms",
            label,
            m.opt_p,
            m.best_eq_p,
            m.worst_eq_p,
            report.exact,
            report.profiles_evaluated,
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }

    // The budget mechanism: cap exhaustive enumeration below the space
    // size and the solver refuses rather than hangs …
    println!();
    let tight = Solver::builder().max_profiles(space - 1).build();
    match tight.solve(&game) {
        Err(SolveError::BudgetExceeded {
            required,
            max_profiles,
        }) => println!("budget {max_profiles} < {required} required → BudgetExceeded, as designed"),
        other => println!("unexpected: {other:?}"),
    }

    // … while the sampling backend ignores the profile budget entirely
    // and returns an inner approximation flagged `exact: false`.
    let sampled = Solver::builder()
        .max_profiles(space - 1)
        .backend(Backend::MonteCarloSampling { samples: 128, seed })
        .build()
        .solve(&game)?;
    println!(
        "same budget, Monte Carlo backend → optP ≤ {:.4}, exact: {}",
        sampled.measures.opt_p, sampled.exact
    );
    Ok(())
}
