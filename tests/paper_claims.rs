//! End-to-end integration tests: each test re-derives one headline claim
//! of *Bayesian ignorance* through the full stack (constructions → NCS
//! solvers → measures).

use bayesian_ignorance::constructions::affine_game::AffinePlaneGame;
use bayesian_ignorance::constructions::diamond_game::DiamondGame;
use bayesian_ignorance::constructions::gworst::{GWorstGame, GWorstVariant};
use bayesian_ignorance::constructions::pos_game::GkGame;
use bayesian_ignorance::constructions::potential_bound::potential_minimizer;
use bayesian_ignorance::constructions::universal::{lemma_3_1_check, random_bayesian_ncs};
use bayesian_ignorance::graph::Direction;
use bayesian_ignorance::util::harmonic;

#[test]
fn observation_2_2_chain_on_many_random_games() {
    for seed in 0..12 {
        for direction in [Direction::Directed, Direction::Undirected] {
            let game = random_bayesian_ncs(direction, 4, 0.35, 2, 2, seed).unwrap();
            let m = game.measures().unwrap();
            m.verify_chain()
                .unwrap_or_else(|e| panic!("{direction:?} seed {seed}: {e}"));
        }
    }
}

#[test]
fn lemma_3_1_worst_eq_p_at_most_k_opt_c() {
    for seed in 0..12 {
        let game = random_bayesian_ncs(Direction::Directed, 5, 0.3, 3, 2, seed).unwrap();
        let check = lemma_3_1_check(&game).unwrap();
        assert!(check.holds(), "seed {seed}: {check:?}");
    }
}

#[test]
fn lemma_3_2_affine_plane_ratio_is_linear_in_k() {
    let mut ks = Vec::new();
    let mut ratios = Vec::new();
    for m in [2u64, 3, 4, 5, 7, 8] {
        let game = AffinePlaneGame::new(m).unwrap();
        // The analytic value is cross-checked against exact evaluation
        // inside affine_series-style assertions.
        let measured = game
            .expected_social_cost(&game.first_line_strategies())
            .unwrap();
        assert!((measured - game.analytic_opt_p()).abs() < 1e-9);
        ks.push(game.num_agents() as f64);
        ratios.push(game.analytic_ratio());
    }
    let slope = bayesian_ignorance::util::log_log_slope(&ks, &ratios);
    assert!(
        (slope - 1.0).abs() < 0.25,
        "Ω(k) shape, got exponent {slope}"
    );
}

#[test]
fn lemma_3_3_ignorance_is_bliss_end_to_end() {
    let game = GkGame::new(7).unwrap();
    let m = game.exact_measures().unwrap();
    // Remark 1: optC = worst-eqP = O(1) while best-eqC = Ω(log k).
    assert!((m.worst_eq_p - m.opt_c).abs() < 1e-9);
    assert!(m.best_eq_c >= harmonic(6) / 2.0 - 1e-9);
    assert!(m.worst_eq_p < m.best_eq_c);
}

#[test]
fn lemma_3_4_frt_ratio_is_logarithmic_on_growing_grids() {
    use bayesian_ignorance::constructions::frt_strategy::{
        measure_shared_source, random_terminal_states, FrtRouting,
    };
    use bayesian_ignorance::graph::{generators, NodeId};
    let mut ratios = Vec::new();
    for side in [3usize, 5, 7] {
        let graph = generators::grid_graph(side, side, 1.0);
        let routing = FrtRouting::build(&graph, 8, 5).unwrap();
        let states = random_terminal_states(&graph, NodeId::new(0), 6, 4, 9);
        let m = measure_shared_source(&graph, &routing, NodeId::new(0), &states);
        assert!(m.ratio() >= 1.0 - 1e-9);
        ratios.push(m.ratio());
    }
    // n grows 9 → 49; an O(log n) ratio must stay far below linear growth.
    assert!(
        ratios[2] < ratios[0] * 3.0,
        "ratio grew too fast: {ratios:?}"
    );
}

#[test]
fn lemma_3_5_diamond_game_exact_and_online_flanks() {
    let g1 = DiamondGame::new(1);
    let m1 = g1.exact_measures().unwrap();
    assert!((m1.opt_c - 1.0).abs() < 1e-9);
    assert!(m1.opt_p > m1.opt_c + 0.2, "ignorance must cost at depth 1");
    // Online flank grows with depth.
    let c2 = DiamondGame::new(2).expected_greedy_cost(32, 1);
    let c4 = DiamondGame::new(4).expected_greedy_cost(32, 1);
    assert!(c4 > c2 + 0.3, "greedy cost must grow: {c2} vs {c4}");
}

#[test]
fn lemmas_3_6_and_3_7_gworst_both_directions() {
    let up = GWorstGame::new(8, GWorstVariant::InvK).unwrap();
    let m_up = up.exact_measures().unwrap();
    assert!(m_up.worst_eq_p / m_up.worst_eq_c > 2.0);
    let down = GWorstGame::new(8, GWorstVariant::Half).unwrap();
    let m_down = down.exact_measures().unwrap();
    assert!(m_down.worst_eq_p / m_down.worst_eq_c < 0.5);
}

#[test]
fn lemma_3_8_best_eq_p_within_harmonic_of_opt_p() {
    for seed in 0..6 {
        let game = random_bayesian_ncs(Direction::Undirected, 4, 0.4, 3, 2, 50 + seed).unwrap();
        let m = game.measures().unwrap();
        let bound = harmonic(game.num_agents()) * m.opt_p;
        assert!(
            m.best_eq_p <= bound + 1e-9,
            "seed {seed}: {} vs {bound}",
            m.best_eq_p
        );
        // And the constructive route: the potential minimizer certifies it.
        let (minimizer, pb) = potential_minimizer(&game).unwrap();
        assert!(game.is_bayesian_equilibrium(&minimizer));
        assert!(pb.holds());
    }
}

#[test]
fn section_4_on_an_ncs_tuple() {
    // Proposition 4.2 + Lemma 4.1 end-to-end through the bench driver.
    let (r_tilde, r_star, gap) = bi_bench::section4_measurements(4, 100, 5);
    assert!((r_tilde - r_star).abs() < 1e-4);
    assert!(gap <= 1e-7);
    assert!(r_tilde >= 1.0 - 1e-9);
}
