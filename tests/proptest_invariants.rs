//! Property-based tests (proptest) of the core invariants across random
//! inputs — the workspace's safety net against structural bugs.

use bayesian_ignorance::graph::paths::PathLimits;
use bayesian_ignorance::graph::{generators, Direction, NodeId};
use bayesian_ignorance::ncs::NcsGame;
use bayesian_ignorance::util::{harmonic, TotalF64};
use bayesian_ignorance::zerosum::matrix_game::MatrixGame;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra distances agree with brute-force simple-path minimization
    /// on small random graphs.
    #[test]
    fn dijkstra_matches_brute_force(seed in 0u64..500, n in 3usize..7) {
        let g = generators::gnp_connected(Direction::Undirected, n, 0.5, (0.5, 2.0), seed);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let sp = bayesian_ignorance::graph::dijkstra(&g, s, |e| g.edge(e).cost());
        let all = bayesian_ignorance::graph::paths::simple_paths(&g, s, t, PathLimits::default());
        let brute = all
            .iter()
            .map(|p| bayesian_ignorance::graph::paths::path_cost(&g, p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((sp.distance(t) - brute).abs() < 1e-9);
    }

    /// NCS payments always sum to the social cost (budget balance of fair
    /// sharing).
    #[test]
    fn ncs_payments_are_budget_balanced(seed in 0u64..500) {
        let g = generators::gnp_connected(Direction::Directed, 5, 0.4, (0.5, 2.0), seed);
        let pairs = vec![
            (NodeId::new(0), NodeId::new(4)),
            (NodeId::new(0), NodeId::new(3)),
            (NodeId::new(1), NodeId::new(4)),
        ];
        let game = match NcsGame::new(g, pairs) { Ok(g) => g, Err(_) => return Ok(()) };
        let profile = bayesian_ignorance::ncs::analysis::shortest_path_profile(&game);
        let total: f64 = (0..game.num_agents()).map(|i| game.payment(i, &profile)).sum();
        prop_assert!((total - game.social_cost(&profile)).abs() < 1e-9);
    }

    /// Better responses strictly decrease the Rosenthal potential
    /// (Rosenthal's theorem, the engine behind every equilibrium here).
    #[test]
    fn better_responses_decrease_potential(seed in 0u64..300) {
        let g = generators::gnp_connected(Direction::Undirected, 5, 0.5, (0.5, 2.0), seed);
        let pairs = vec![
            (NodeId::new(0), NodeId::new(4)),
            (NodeId::new(1), NodeId::new(3)),
        ];
        let game = match NcsGame::new(g, pairs) { Ok(g) => g, Err(_) => return Ok(()) };
        let mut profile = bayesian_ignorance::ncs::analysis::shortest_path_profile(&game);
        for _ in 0..20 {
            let phi_before = game.potential(&profile);
            let mut moved = false;
            for i in 0..game.num_agents() {
                let current = game.payment(i, &profile);
                let (path, cost) = game.best_response(i, &profile);
                if cost < current - 1e-9 {
                    let delta_cost = current - cost;
                    profile[i] = path;
                    let phi_after = game.potential(&profile);
                    prop_assert!(
                        ((phi_before - phi_after) - delta_cost).abs() < 1e-9,
                        "potential drop must equal cost drop"
                    );
                    moved = true;
                    break;
                }
            }
            if !moved { break; }
        }
        prop_assert!(game.is_nash(&profile));
    }

    /// The exact zero-sum solution is unexploitable.
    #[test]
    fn matrix_game_solutions_are_equilibria(
        rows in 2usize..5,
        cols in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = bayesian_ignorance::util::rng::seeded(seed);
        use rand::Rng;
        let payoff: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.random_range(-2.0..2.0)).collect())
            .collect();
        let game = MatrixGame::new(payoff).unwrap();
        let sol = game.solve().unwrap();
        let (r, c) = game.exploitability(&sol.row_strategy, &sol.col_strategy);
        prop_assert!(r.abs() < 1e-6 && c.abs() < 1e-6, "regrets {r}, {c}");
    }

    /// Harmonic numbers: H(a+b) ≤ H(a) + H(b) for a,b ≥ 1 and
    /// H(n) − H(n−1) = 1/n.
    #[test]
    fn harmonic_identities(n in 1usize..2000) {
        prop_assert!((harmonic(n) - harmonic(n - 1) - 1.0 / n as f64).abs() < 1e-12);
        if n >= 2 {
            let a = n / 2;
            let b = n - a;
            if a >= 1 {
                prop_assert!(harmonic(n) <= harmonic(a) + harmonic(b) + 1e-12);
            }
        }
    }

    /// TotalF64 sorting is a total order consistent with `<` on
    /// NaN-free data.
    #[test]
    fn total_f64_sorts_consistently(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut wrapped: Vec<TotalF64> = xs.iter().copied().map(TotalF64::new).collect();
        wrapped.sort();
        xs.sort_by(f64::total_cmp);
        for (w, x) in wrapped.iter().zip(&xs) {
            prop_assert_eq!(w.get(), *x);
        }
    }

    /// Simple-path enumeration yields distinct feasible paths whose count
    /// is stable under enumeration order.
    #[test]
    fn simple_paths_are_valid_and_unique(seed in 0u64..300, n in 3usize..6) {
        let g = generators::gnp_connected(Direction::Undirected, n, 0.6, (1.0, 1.0), seed);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let ps = bayesian_ignorance::graph::paths::simple_paths(&g, s, t, PathLimits::default());
        for p in &ps {
            prop_assert!(bayesian_ignorance::graph::paths::is_path(&g, s, t, p));
        }
        let mut dedup = ps.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), ps.len());
    }

    /// FRT trees always dominate their metric.
    #[test]
    fn frt_always_dominates(seed in 0u64..100, n in 4usize..10) {
        let g = generators::cycle_graph(Direction::Undirected, n, 1.0);
        let metric = bayesian_ignorance::metric::MetricSpace::from_graph(&g).unwrap();
        let tree = bayesian_ignorance::metric::frt::sample(
            &metric,
            &mut bayesian_ignorance::util::rng::seeded(seed),
        );
        prop_assert!(bayesian_ignorance::metric::stretch::is_dominating(&metric, &tree));
    }

    /// Affine planes of prime order satisfy the incidence count
    /// `(q²+q)·q = q²·(q+1)` and the line-through-two-points axiom.
    #[test]
    fn affine_incidences(q in prop::sample::select(vec![2u64, 3, 5, 7])) {
        let plane = bayesian_ignorance::geometry::AffinePlane::new(q).unwrap();
        let q = plane.order();
        let incidences: usize = (0..plane.line_count())
            .map(|l| plane.points_on_line(l).len())
            .sum();
        prop_assert_eq!(incidences, q * q * (q + 1));
    }

    /// `route_replicas` hands every key `min(r, backends)` *distinct*
    /// owners, led by exactly the backend `route` picks.
    #[test]
    fn route_replicas_owners_are_distinct_and_led_by_route(
        hash in 0u64..u64::MAX,
        backends in 1usize..8,
        vnodes in 1usize..48,
        r in 1usize..5,
    ) {
        let names: Vec<String> = (0..backends).map(|i| format!("10.0.0.{i}:4{i:03}")).collect();
        let ring = bayesian_ignorance::service::HashRing::new(&names, vnodes);
        let owners = ring.route_replicas(hash, r, |_| true);
        prop_assert_eq!(owners.len(), r.min(backends));
        let mut dedup = owners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), owners.len());
        prop_assert_eq!(owners.first().copied(), ring.route(hash, |_| true));
    }

    /// Ejecting one backend moves only its own arc: the surviving
    /// owners of any key keep their relative order (they are a prefix
    /// of the post-eject owner list), and the list refills to
    /// `min(r, backends - 1)` from further around the ring.
    #[test]
    fn ejecting_a_backend_moves_only_its_own_arc(
        hash in 0u64..u64::MAX,
        backends in 2usize..8,
        vnodes in 1usize..48,
        r in 1usize..5,
        dead_pick in 0u64..u64::MAX,
    ) {
        let names: Vec<String> = (0..backends).map(|i| format!("10.0.0.{i}:4{i:03}")).collect();
        let ring = bayesian_ignorance::service::HashRing::new(&names, vnodes);
        let before = ring.route_replicas(hash, r, |_| true);
        let dead = (dead_pick as usize) % backends;
        let after = ring.route_replicas(hash, r, |i| i != dead);
        prop_assert!(!after.contains(&dead), "the ejected backend owns nothing");
        prop_assert_eq!(after.len(), r.min(backends - 1));
        let survivors: Vec<usize> = before.iter().copied().filter(|&i| i != dead).collect();
        prop_assert_eq!(&after[..survivors.len()], survivors.as_slice());
    }
}
