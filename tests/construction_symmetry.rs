//! Satellite of the symmetry-orbit PR: every construction family's
//! exported automorphism generators actually fix its game.
//!
//! For each family, the test checks three layers against each other:
//!
//! 1. the *exported* generators (`automorphism_generators()`) are valid
//!    permutations with the documented shape;
//! 2. applying a generator to a strategy profile leaves costs and
//!    equilibrium verdicts **bit-for-bit** unchanged (NCS costs are
//!    functions of integer edge loads, affine costs of integer agent
//!    counts, so exact invariance is the contract, not a tolerance);
//! 3. the *detected* symmetry (`bi_core::symmetry::Symmetry::detect`)
//!    agrees: nontrivial exactly when generators exist, trivial when
//!    the export is empty.

use bayesian_ignorance::constructions::affine_game::AffinePlaneGame;
use bayesian_ignorance::constructions::diamond_game::DiamondGame;
use bayesian_ignorance::constructions::gworst::{GWorstGame, GWorstVariant};
use bayesian_ignorance::constructions::pos_game::GkGame;
use bayesian_ignorance::core::{BayesianModel, CompiledSpace, Symmetry};
use bayesian_ignorance::ncs::Path;

/// Checks that `perm` is a permutation of `0..n`.
fn assert_is_permutation(perm: &[usize], n: usize) {
    assert_eq!(perm.len(), n, "permutation length");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "not a permutation: {perm:?}");
        seen[p] = true;
    }
}

/// Applies an agent permutation to a per-agent strategy list:
/// `out[perm[i]] = s[i]`.
fn permute<T: Clone>(s: &[T], perm: &[usize]) -> Vec<T> {
    let mut out = s.to_vec();
    for (i, &p) in perm.iter().enumerate() {
        out[p] = s[i].clone();
    }
    out
}

#[test]
fn gworst_generators_fix_the_game_bitwise() {
    for variant in [GWorstVariant::Half, GWorstVariant::InvK] {
        let k = 4;
        let g = GWorstGame::new(k, variant).unwrap();
        let game = g.game();
        let generators = g.automorphism_generators();
        assert_eq!(generators.len(), k - 1, "adjacent transpositions on 0..k");
        for (i, perm) in generators.iter().enumerate() {
            assert_is_permutation(perm, k + 1);
            assert_eq!(perm[k], k, "the stochastic agent is fixed");
            // The exported transposition swaps exactly (i, i+1) — and the
            // model-level detection agrees those agents are interchangeable.
            assert_eq!(perm[i], i + 1);
            assert_eq!(perm[i + 1], i);
            assert!(game.agents_interchangeable(i, i + 1));
            assert!(!game.agents_interchangeable(i, k));
        }

        // Edge handles, as in the bi-constructions unit tests: u–v is the
        // expensive edge, v–w the unit edge, u–w the direct 1+ε edge.
        let graph = game.graph();
        let uv = graph.edges().find(|(_, e)| e.cost() > 2.0).unwrap().0;
        let vw = graph.edges().find(|(_, e)| e.cost() == 1.0).unwrap().0;
        let uw = graph
            .edges()
            .find(|(_, e)| e.cost() > 1.0 && e.cost() < 2.0)
            .unwrap()
            .0;

        // Sweep every pure profile: each u→w agent picks direct or detour,
        // the stochastic agent picks direct or via-w for its active type.
        for mask in 0u32..1 << (k + 1) {
            let mut s: Vec<Vec<Path>> = (0..k)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        vec![vec![uv, vw]]
                    } else {
                        vec![vec![uw]]
                    }
                })
                .collect();
            let active: Path = if mask >> k & 1 == 1 {
                vec![uv]
            } else {
                vec![uw, vw]
            };
            s.push(
                game.agent_types()[k]
                    .iter()
                    .map(|&(src, dst)| {
                        if src == dst {
                            Vec::new()
                        } else {
                            active.clone()
                        }
                    })
                    .collect(),
            );
            let cost = game.social_cost(&s);
            let eq = game.is_bayesian_equilibrium(&s);
            for perm in &generators {
                let permuted = permute(&s, perm);
                assert_eq!(
                    game.social_cost(&permuted).to_bits(),
                    cost.to_bits(),
                    "social cost must be bitwise invariant (mask {mask:#b})"
                );
                assert_eq!(
                    game.is_bayesian_equilibrium(&permuted),
                    eq,
                    "equilibrium verdict must be invariant (mask {mask:#b})"
                );
            }
        }

        // The detected symmetry matches the export: one class of k
        // interchangeable agents (group order k!) plus the fixed agent.
        let space = CompiledSpace::compile(game).unwrap();
        let sym = Symmetry::detect(game, &space);
        assert!(!sym.is_trivial());
        let factorial: u128 = (2..=k as u128).product();
        assert_eq!(sym.group_order_saturating(), factorial);
        assert!(
            sym.orbit_count().unwrap() < space.space_size().unwrap(),
            "orbit sweep must be a strict reduction"
        );
    }
}

#[test]
fn affine_generators_fix_the_expected_social_cost_bitwise() {
    let g = AffinePlaneGame::new(3).unwrap();
    let m = g.order();
    let generators = g.automorphism_generators();
    assert_eq!(generators.len(), m - 1);

    // A deliberately asymmetric profile: agent i guesses a different
    // incident line per point, staggered by i.
    let plane = g.plane();
    let strategies: Vec<Vec<usize>> = (0..m)
        .map(|i| {
            (0..plane.point_count())
                .map(|p| {
                    let lines = plane.lines_through(p);
                    lines[(i + p) % lines.len()]
                })
                .collect()
        })
        .collect();
    let cost = g.expected_social_cost(&strategies).unwrap();
    for perm in &generators {
        assert_is_permutation(perm, m);
        let permuted = permute(&strategies, perm);
        assert_eq!(
            g.expected_social_cost(&permuted).unwrap().to_bits(),
            cost.to_bits(),
            "point-agents are exactly interchangeable"
        );
    }
    // Sanity: the uniform profile is also fixed (trivially).
    let uniform = g.first_line_strategies();
    let uniform_cost = g.expected_social_cost(&uniform).unwrap();
    for perm in &generators {
        let permuted = permute(&uniform, perm);
        assert_eq!(
            g.expected_social_cost(&permuted).unwrap().to_bits(),
            uniform_cost.to_bits()
        );
    }
}

#[test]
fn gk_exports_no_generators_and_detection_agrees() {
    let g = GkGame::new(4).unwrap();
    assert!(g.automorphism_generators().is_empty());
    let game = g.game();
    let space = CompiledSpace::compile(game).unwrap();
    assert!(
        Symmetry::detect(game, &space).is_trivial(),
        "distinct spoke terminals leave no agent symmetry"
    );
    // Spot-check the model-level predicate too.
    assert!(!game.agents_interchangeable(0, 1));
}

#[test]
fn diamond_exports_no_generators_and_detection_agrees() {
    let g = DiamondGame::new(2);
    assert!(g.automorphism_generators().is_empty());
    let game = g.bayesian_game().unwrap();
    let space = CompiledSpace::compile(&game).unwrap();
    assert!(
        Symmetry::detect(&game, &space).is_trivial(),
        "sequence positions have distinct request distributions"
    );
}
