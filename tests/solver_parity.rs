//! Parity and bracketing properties of the unified solver engine.
//!
//! * [`Backend::ExhaustiveEnum`] must reproduce the legacy `measures()`
//!   algorithm **bit-for-bit** on random games, for both representations
//!   ([`BayesianGame`], [`BayesianNcsGame`]); the reference values are
//!   recomputed here by the pre-redesign enumeration loop, written against
//!   the public iteration APIs.
//! * Threaded sweeps must agree with single-threaded sweeps bit-for-bit.
//! * The sampling backends must bracket the exact measures from inside:
//!   genuine but possibly non-extremal equilibria, `optP` from above.
//! * A budget-exceeding game must *fail* under the exhaustive backend and
//!   *solve* (inexactly) under Monte Carlo sampling.

use bayesian_ignorance::constructions::universal::random_bayesian_ncs;
use bayesian_ignorance::core::bayesian::BayesianGame;
use bayesian_ignorance::core::game::ProfileIter;
use bayesian_ignorance::core::random_games::random_bayesian_potential_game;
use bayesian_ignorance::core::solve::{Backend, SolveError, Solver};
use bayesian_ignorance::core::{nash, BayesianModel, Measures};
use bayesian_ignorance::graph::paths::PathLimits;
use bayesian_ignorance::graph::Direction;
use bayesian_ignorance::ncs::{analysis, BayesianNcsGame, Path};
use proptest::prelude::*;

/// The pre-redesign `BayesianGame::measures()` loop, verbatim, over the
/// public strategy iterator and per-state Nash analysis.
fn reference_matrix_measures(game: &BayesianGame) -> Measures {
    let mut opt_p = f64::INFINITY;
    let mut best_eq_p = f64::INFINITY;
    let mut worst_eq_p = f64::NEG_INFINITY;
    let mut found_eq = false;
    for s in game.strategies().expect("small game") {
        let k = game.social_cost(&s);
        opt_p = opt_p.min(k);
        if game.is_bayesian_equilibrium(&s) {
            found_eq = true;
            best_eq_p = best_eq_p.min(k);
            worst_eq_p = worst_eq_p.max(k);
        }
    }
    assert!(found_eq, "random potential games always have equilibria");
    let mut opt_c = 0.0;
    let mut best_eq_c = 0.0;
    let mut worst_eq_c = 0.0;
    for idx in 0..game.support_len() {
        let (_, prob, state_game) = game.state(idx);
        let (opt, _) = nash::social_optimum(state_game);
        opt_c += prob * opt;
        let (best, worst) = nash::equilibrium_cost_range(state_game).expect("potential game");
        best_eq_c += prob * best;
        worst_eq_c += prob * worst;
    }
    Measures {
        opt_p,
        best_eq_p,
        worst_eq_p,
        opt_c,
        best_eq_c,
        worst_eq_c,
    }
}

/// The pre-redesign `BayesianNcsGame::measures()` loop, verbatim, over the
/// public strategy sets and per-state analysis.
fn reference_ncs_measures(game: &BayesianNcsGame) -> Measures {
    let sets = game.strategy_sets().expect("enumerable");
    let slot_sizes: Vec<usize> = sets.iter().flatten().map(Vec::len).collect();
    let mut slots = Vec::new();
    for (i, types) in game.agent_types().iter().enumerate() {
        for tau in 0..types.len() {
            slots.push((i, tau));
        }
    }
    let mut opt_p = f64::INFINITY;
    let mut best_eq_p = f64::INFINITY;
    let mut worst_eq_p = f64::NEG_INFINITY;
    let mut found_eq = false;
    for assignment in ProfileIter::new(slot_sizes) {
        let mut s: Vec<Vec<Path>> = game
            .agent_types()
            .iter()
            .map(|types| vec![Path::new(); types.len()])
            .collect();
        for (&(i, tau), &choice) in slots.iter().zip(&assignment) {
            s[i][tau] = sets[i][tau][choice].clone();
        }
        let k = game.social_cost(&s);
        opt_p = opt_p.min(k);
        if game.is_bayesian_equilibrium(&s) {
            found_eq = true;
            best_eq_p = best_eq_p.min(k);
            worst_eq_p = worst_eq_p.max(k);
        }
    }
    assert!(found_eq, "NCS games are potential games");
    let mut opt_c = 0.0;
    let mut best_eq_c = 0.0;
    let mut worst_eq_c = 0.0;
    for (idx, (_, prob)) in game.support().iter().enumerate() {
        let a = analysis::analyze(&game.underlying_game(idx), PathLimits::default())
            .expect("analyzable");
        opt_c += prob * a.opt;
        best_eq_c += prob * a.best_eq;
        worst_eq_c += prob * a.worst_eq;
    }
    Measures {
        opt_p,
        best_eq_p,
        worst_eq_p,
        opt_c,
        best_eq_c,
        worst_eq_c,
    }
}

/// Componentwise bit-level equality of two measure sets.
fn bits(m: Measures) -> [u64; 6] {
    [
        m.opt_p.to_bits(),
        m.best_eq_p.to_bits(),
        m.worst_eq_p.to_bits(),
        m.opt_c.to_bits(),
        m.best_eq_c.to_bits(),
        m.worst_eq_c.to_bits(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Solver` with `ExhaustiveEnum` (both through the wrapper and
    /// directly) reproduces the legacy matrix-form measures bit-for-bit.
    #[test]
    fn exhaustive_matches_legacy_matrix_measures(seed in 0u64..5000, support in 1usize..5) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], support, seed);
        let reference = reference_matrix_measures(&game);
        let wrapper = game.measures().expect("solvable");
        let direct = Solver::default().solve(&game).expect("solvable");
        prop_assert_eq!(bits(reference), bits(wrapper));
        prop_assert_eq!(bits(reference), bits(direct.measures));
        prop_assert!(direct.exact);
        prop_assert_eq!(
            direct.profiles_evaluated,
            game.strategy_space_size().expect("fits in u128")
        );
    }

    /// Same parity for the graph-form representation.
    #[test]
    fn exhaustive_matches_legacy_ncs_measures(seed in 0u64..2000) {
        let game = random_bayesian_ncs(Direction::Directed, 4, 0.4, 2, 2, seed)
            .expect("connected generator");
        let reference = reference_ncs_measures(&game);
        let wrapper = game.measures().expect("solvable");
        let direct = Solver::default().solve(&game).expect("solvable");
        prop_assert_eq!(bits(reference), bits(wrapper));
        prop_assert_eq!(bits(reference), bits(direct.measures));
    }

    /// Chunked multi-threaded sweeps agree with the single-threaded sweep
    /// bit-for-bit, for any thread count.
    #[test]
    fn threaded_sweep_is_deterministic(seed in 0u64..2000, threads in 2usize..7) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed);
        let single = Solver::builder().threads(1).build().solve(&game).expect("solvable");
        let multi = Solver::builder().threads(threads).build().solve(&game).expect("solvable");
        prop_assert_eq!(bits(single.measures), bits(multi.measures));
        prop_assert_eq!(single.profiles_evaluated, multi.profiles_evaluated);
    }

    /// Monte Carlo sampling brackets the exact measures from inside:
    /// every reported equilibrium is genuine, so `best-eqP` is approached
    /// from above and `worst-eqP` from below; `optP` from above.
    #[test]
    fn monte_carlo_brackets_exact_measures(seed in 0u64..1000) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, seed);
        let exact = Solver::default().solve(&game).expect("solvable").measures;
        let mc = Solver::builder()
            .backend(Backend::MonteCarloSampling { samples: 64, seed: seed ^ 0xbeef })
            .build()
            .solve(&game)
            .expect("solvable");
        prop_assert!(!mc.exact);
        let m = mc.measures;
        prop_assert!(exact.opt_p <= m.opt_p + 1e-12);
        prop_assert!(exact.best_eq_p <= m.best_eq_p + 1e-12);
        prop_assert!(m.best_eq_p <= exact.worst_eq_p + 1e-12);
        prop_assert!(exact.best_eq_p <= m.worst_eq_p + 1e-12);
        prop_assert!(m.worst_eq_p <= exact.worst_eq_p + 1e-12);
        m.verify_chain().expect("Observation 2.2 survives sampling");
    }

    /// Monte Carlo on NCS games also brackets the exact measures.
    #[test]
    fn monte_carlo_brackets_exact_ncs_measures(seed in 0u64..500) {
        let game = random_bayesian_ncs(Direction::Undirected, 4, 0.4, 2, 2, seed)
            .expect("connected generator");
        let exact = Solver::default().solve(&game).expect("solvable").measures;
        let mc = Solver::builder()
            .backend(Backend::MonteCarloSampling { samples: 32, seed })
            .build()
            .solve(&game)
            .expect("solvable");
        prop_assert!(exact.opt_p <= mc.measures.opt_p + 1e-12);
        prop_assert!(exact.best_eq_p <= mc.measures.best_eq_p + 1e-12);
        prop_assert!(mc.measures.worst_eq_p <= exact.worst_eq_p + 1e-12);
    }
}

/// The acceptance scenario: a game whose strategy space exceeds the
/// budget errors under exhaustive enumeration but solves (inexactly)
/// under Monte Carlo sampling.
#[test]
fn budget_exceeding_game_solves_with_sampling() {
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, 7);
    let space = game.strategy_space_size().unwrap();
    assert!(space > 4);

    let exhaustive = Solver::builder().max_profiles(4).build().solve(&game);
    match exhaustive {
        Err(SolveError::BudgetExceeded {
            required,
            max_profiles,
        }) => {
            assert_eq!(required, space);
            assert_eq!(max_profiles, 4);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    let report = Solver::builder()
        .max_profiles(4)
        .backend(Backend::MonteCarloSampling {
            samples: 32,
            seed: 1,
        })
        .build()
        .solve(&game)
        .expect("sampling ignores the profile budget");
    assert!(!report.exact);
    assert!(report.profiles_evaluated > 0);
    report.measures.verify_chain().unwrap();
}

/// One generic entry point serves both game representations — the core of
/// the API redesign.
#[test]
fn one_solver_entry_point_serves_both_representations() {
    fn solve_any<M: BayesianModel>(model: &M) -> Measures {
        Solver::builder()
            .threads(2)
            .build()
            .solve(model)
            .expect("solvable")
            .measures
    }

    let (matrix_game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, 3);
    let ncs_game =
        random_bayesian_ncs(Direction::Directed, 4, 0.5, 2, 2, 3).expect("connected generator");
    let a = solve_any(&matrix_game);
    let b = solve_any(&ncs_game);
    a.verify_chain().unwrap();
    b.verify_chain().unwrap();
}

/// Best-response-dynamics restarts find genuine equilibria whose costs lie
/// within the exact equilibrium range.
#[test]
fn brd_backend_reports_genuine_equilibria() {
    for seed in 0..8 {
        let game =
            random_bayesian_ncs(Direction::Directed, 4, 0.4, 2, 2, 100 + seed).expect("generator");
        let exact = Solver::default().solve(&game).expect("solvable").measures;
        let brd = Solver::builder()
            .backend(Backend::BestResponseDynamics {
                restarts: 6,
                seed: 42,
            })
            .build()
            .solve(&game)
            .expect("potential games converge");
        assert!(!brd.exact);
        assert!(
            exact.best_eq_p <= brd.measures.best_eq_p + 1e-12,
            "seed {seed}"
        );
        assert!(
            brd.measures.worst_eq_p <= exact.worst_eq_p + 1e-12,
            "seed {seed}"
        );
    }
}
