//! Wire-codec safety net: property-based round-trips over random games
//! of both representations, golden-file fixtures pinning the canonical
//! format, and malformed-input error cases.
//!
//! The invariant the solve service's content-addressed cache rests on:
//! `decode(encode(g))` is indistinguishable from `g` — same canonical
//! bytes (the cache key) and same solve results.

use bayesian_ignorance::core::random_games::random_bayesian_potential_game;
use bayesian_ignorance::core::solve::{Backend, Budget, SolverConfig};
use bayesian_ignorance::core::SymmetryMode;
use bayesian_ignorance::core::{BayesianGame, Solver};
use bayesian_ignorance::graph::{generators, Direction, NodeId};
use bayesian_ignorance::ncs::{BayesianNcsGame, Prior};
use bayesian_ignorance::util::json::Json;
use bayesian_ignorance::util::{Decode, Encode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matrix-form Bayesian games round-trip bit-for-bit: canonical
    /// bytes are preserved and the decoded game solves identically.
    #[test]
    fn bayesian_games_round_trip(seed in 0u64..400, support in 1usize..4) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 3], support, seed);
        let decoded = BayesianGame::decode(&game.encode()).unwrap();
        prop_assert_eq!(decoded.canonical_bytes(), game.canonical_bytes());
        let a = Solver::default().solve(&game).unwrap();
        let b = Solver::default().solve(&decoded).unwrap();
        prop_assert_eq!(a.measures, b.measures);
        prop_assert_eq!(a.profiles_evaluated, b.profiles_evaluated);
    }

    /// Bayesian NCS games over random connected graphs round-trip the
    /// same way (skipping seeds whose random terminals are infeasible).
    #[test]
    fn ncs_games_round_trip(seed in 0u64..400) {
        let g = generators::gnp_connected(Direction::Directed, 4, 0.5, (0.5, 2.0), seed);
        let prior = Prior::independent(vec![
            vec![((NodeId::new(0), NodeId::new(3)), 1.0)],
            vec![
                ((NodeId::new(0), NodeId::new(3)), 0.5),
                ((NodeId::new(0), NodeId::new(0)), 0.5),
            ],
        ]);
        let Ok(game) = BayesianNcsGame::new(g, prior) else { return Ok(()) };
        let decoded = BayesianNcsGame::decode(&game.encode()).unwrap();
        prop_assert_eq!(decoded.canonical_bytes(), game.canonical_bytes());
        if let (Ok(a), Ok(b)) = (game.measures(), decoded.measures()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Solver configurations of every backend round-trip exactly,
    /// including extreme seeds and budgets beyond f64 precision.
    #[test]
    fn solver_configs_round_trip(
        samples in 1u32..1000,
        seed in 0u64..u64::MAX,
        max_profiles in 0u64..u64::MAX,
        threads in 0usize..16,
        auto_symmetry in 0u8..2,
    ) {
        for backend in [
            Backend::ExhaustiveEnum,
            Backend::BestResponseDynamics { restarts: samples, seed },
            Backend::MonteCarloSampling { samples, seed },
        ] {
            let config = SolverConfig {
                backend,
                budget: Budget {
                    max_profiles: u128::from(max_profiles) << 32,
                    max_iterations: seed,
                },
                symmetry: if auto_symmetry == 1 { SymmetryMode::Auto } else { SymmetryMode::Off },
                threads,
            };
            let decoded = SolverConfig::decode(&config.encode()).unwrap();
            prop_assert_eq!(decoded, config);
        }
    }
}

/// The canonical form of a fixture file: parse + canonical reprint (the
/// committed files are already canonical; this keeps the assertion
/// independent of incidental whitespace).
fn canonical(text: &str) -> String {
    Json::parse(text)
        .expect("fixture parses")
        .canonical_string()
}

#[test]
fn golden_bayesian_game_fixture_is_stable() {
    let text = include_str!("fixtures/bayesian_game.json");
    let game = BayesianGame::decode_str(text).expect("fixture decodes");
    assert_eq!(
        game.encode().canonical_string(),
        canonical(text),
        "re-encoding the fixture must reproduce it byte-for-byte"
    );
    // A format change that breaks decoding of committed wire data (or
    // changes solve results) must show up here.
    let report = Solver::default().solve(&game).unwrap();
    assert_eq!(
        report.encode().canonical_string(),
        canonical(include_str!("fixtures/solve_report.json")),
        "the solved report of the fixture game is itself golden"
    );
}

#[test]
fn golden_ncs_game_fixture_is_stable() {
    let text = include_str!("fixtures/ncs_game.json");
    let game = BayesianNcsGame::decode_str(text).expect("fixture decodes");
    assert_eq!(game.encode().canonical_string(), canonical(text));
    let m = game.measures().unwrap();
    m.verify_chain().unwrap();
    // The diamond game of the bi-ncs test suite: sharing via the middle
    // node is optimal under both information regimes.
    assert!((m.opt_p - 2.0).abs() < 1e-9);
    assert!((m.opt_c - 2.0).abs() < 1e-9);
}

#[test]
fn non_canonical_spelling_decodes_to_the_same_content() {
    // Same game as the fixture, but pretty-printed, reordered keys, and
    // redundant number spellings — the canonical bytes must coincide.
    let pretty = r#"{
        "type_counts": [1, 2],
        "support": [
            {
                "prob": 0.50,
                "types": [0, 0],
                "game": {"costs": [[0, 2.0, 2, 0], [0, 2, 2, 0]], "action_counts": [2, 2]}
            },
            {
                "prob": 5e-1,
                "types": [0, 1],
                "game": {"costs": [[2, 0, 0, 2], [2, 0, 0, 2]], "action_counts": [2, 2]}
            }
        ]
    }"#;
    let game = BayesianGame::decode_str(pretty).unwrap();
    assert_eq!(
        game.encode().canonical_string(),
        canonical(include_str!("fixtures/bayesian_game.json"))
    );
}

#[test]
fn malformed_documents_fail_with_useful_errors() {
    // Parse-level failures.
    assert!(BayesianGame::decode_str("").is_err());
    assert!(BayesianGame::decode_str("{\"type_counts\": [1,").is_err());
    // Shape-level failures.
    let err = BayesianGame::decode_str(r#"{"support":[]}"#).unwrap_err();
    assert!(err.to_string().contains("type_counts"));
    let err = BayesianNcsGame::decode_str(r#"{"graph":{},"prior":{}}"#).unwrap_err();
    assert!(err.to_string().contains("graph"));
    // Semantic failures go through the constructors.
    let unnormalized = r#"{"type_counts":[1],"support":[
        {"types":[0],"prob":0.25,"game":{"action_counts":[1],"costs":[[0]]}}
    ]}"#;
    let err = BayesianGame::decode_str(unnormalized).unwrap_err();
    assert!(err.to_string().contains("invalid Bayesian game"));
    // NaN never crosses the wire in either direction.
    assert!(Json::parse(r#"{"x": NaN}"#).is_err());
}

#[test]
fn solve_reports_round_trip_through_the_facade() {
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, 99);
    let report = Solver::default().solve(&game).unwrap();
    let decoded = bayesian_ignorance::core::SolveReport::decode(&report.encode()).unwrap();
    assert_eq!(decoded, report);
}
