//! Tentpole parity layer of the work-stealing + symmetry-orbit PR:
//! the optimized sweep paths are **bit-for-bit** equivalent to the
//! reference paths, proven on the canonical wire encoding.
//!
//! Two equivalences, each over random games *and* construction games,
//! every backend, and thread counts 1/2/4/8:
//!
//! * **work-stealing ≡ sequential** — the full [`bayesian_ignorance::core::SolveReport`]
//!   encodes to identical canonical bytes whatever the thread count,
//!   including on spaces large enough to actually cross the
//!   work-stealing threshold ([`PARALLEL_SWEEP_MIN_PROFILES`]);
//! * **orbit-reduced ≡ unreduced** — solving with
//!   [`SymmetryMode::Auto`] yields bitwise-identical `measures` to
//!   [`SymmetryMode::Off`], with the orbit statistics accounting for
//!   exactly the full profile space.
//!
//! Sampling backends don't sweep, so for them the invariance is that
//! the knobs are inert: thread count and symmetry mode must not change
//! the report at all.

use bayesian_ignorance::constructions::gworst::{GWorstGame, GWorstVariant};
use bayesian_ignorance::core::random_games::random_bayesian_potential_game;
use bayesian_ignorance::core::solve::{Backend, PARALLEL_SWEEP_MIN_PROFILES};
use bayesian_ignorance::core::{
    BayesianGame, BayesianModel, MatrixFormGame, SolveReport, Solver, SymmetryMode,
};
use bayesian_ignorance::util::Encode;

/// The canonical wire bytes of a report — the equality notion of this
/// whole test file. Two reports with equal canonical bytes are
/// indistinguishable to every downstream consumer (cache, service,
/// bench baselines).
fn canonical(report: &SolveReport) -> String {
    report.encode().canonical_string()
}

fn solver(backend: Backend, threads: usize, symmetry: SymmetryMode) -> Solver {
    Solver::builder()
        .backend(backend)
        .threads(threads)
        .symmetry(symmetry)
        .build()
}

/// Solves `model` at every thread count and asserts all reports encode
/// to the same canonical bytes as the sequential (threads = 1) one.
fn assert_thread_parity<M: BayesianModel>(model: &M, backend: Backend, symmetry: SymmetryMode) {
    let baseline = solver(backend, 1, symmetry).solve(model).unwrap();
    let want = canonical(&baseline);
    for threads in [2usize, 4, 8] {
        let report = solver(backend, threads, symmetry).solve(model).unwrap();
        assert_eq!(
            canonical(&report),
            want,
            "threads={threads} must be bit-for-bit identical to sequential \
             (backend {backend:?}, symmetry {symmetry:?})"
        );
    }
}

/// Asserts the orbit-reduced sweep is equivalent to the unreduced one:
/// bitwise-equal measures, and orbit stats that represent the full
/// space the unreduced sweep walked.
fn assert_orbit_equivalence<M: BayesianModel>(model: &M) -> SolveReport {
    let off = solver(Backend::ExhaustiveEnum, 1, SymmetryMode::Off)
        .solve(model)
        .unwrap();
    let auto = solver(Backend::ExhaustiveEnum, 1, SymmetryMode::Auto)
        .solve(model)
        .unwrap();
    assert_eq!(
        auto.measures.encode().canonical_string(),
        off.measures.encode().canonical_string(),
        "orbit-reduced measures must be bit-for-bit identical"
    );
    assert_eq!(off.orbit, None, "symmetry off never reports orbits");
    if let Some(stats) = auto.orbit {
        assert_eq!(
            stats.profiles_represented, off.profiles_evaluated,
            "orbit stats must account for exactly the unreduced sweep"
        );
        assert_eq!(auto.profiles_evaluated, stats.orbits_evaluated);
        assert!(stats.orbits_evaluated < stats.profiles_represented);
        assert!(stats.group_order >= 2);
    } else {
        // Trivial symmetry: Auto must have degraded to the identical sweep.
        assert_eq!(canonical(&auto), canonical(&off));
    }
    auto
}

/// A fully symmetric `k`-agent game: every agent has one type and the
/// same action count, and the cost of a profile depends only on the
/// *multiset* of actions (plus a seed-mixed term), so all agents are
/// interchangeable.
fn symmetric_game(k: usize, actions: usize, seed: u64) -> BayesianGame {
    let counts = vec![actions; k];
    let matrix = MatrixFormGame::from_fn(k, &counts, move |_, a| {
        let mut sorted: Vec<u32> = a.iter().map(|&x| x as u32).collect();
        sorted.sort_unstable();
        let mut acc = 1.0;
        for (rank, &x) in sorted.iter().enumerate() {
            acc += ((u64::from(x) + 1) * (rank as u64 + 2) + seed % 7) as f64;
        }
        acc
    });
    BayesianGame::new(vec![1; k], vec![(vec![0; k], 1.0, matrix)]).unwrap()
}

/// An asymmetric exact-potential game big enough to cross the
/// work-stealing threshold: 7 agents × 4 actions = 4^7 = 16384 profiles.
/// Separable own-cost plus a common term guarantees a pure equilibrium.
fn large_asymmetric_game() -> BayesianGame {
    let k = 7;
    let matrix = MatrixFormGame::from_fn(k, &[4; 7], |i, a| {
        let own = ((i + 1) * (a[i] * a[i] + 3 * a[i] + 1)) % 13;
        let common = a
            .iter()
            .enumerate()
            .map(|(j, &x)| (x + 1) * (j + 3))
            .sum::<usize>()
            % 17;
        (own + common) as f64
    });
    BayesianGame::new(vec![1; k], vec![(vec![0; k], 1.0, matrix)]).unwrap()
}

/// A game whose *orbit domain* crosses the work-stealing threshold: two
/// interchangeable binary agents in front of seven asymmetric 4-action
/// agents. Full space 2·2·4^7 = 65536; orbits 3·4^7 = 49152 ≥ 2^14, so
/// the symmetry-reduced sweep itself runs under work-stealing.
fn large_partially_symmetric_game() -> BayesianGame {
    let mut counts = vec![2usize, 2];
    counts.extend(std::iter::repeat_n(4, 7));
    let matrix = MatrixFormGame::from_fn(9, &counts, |i, a| {
        // Symmetric in agents 0 and 1 (multiset dependence), asymmetric
        // beyond; exact-potential shape as above.
        let front = (a[0] + a[1]) * 5 + a[0] * a[1];
        let own = if i < 2 {
            front
        } else {
            ((i - 1) * (a[i] * a[i] + 3 * a[i] + 1)) % 13
        };
        let common = a
            .iter()
            .enumerate()
            .skip(2)
            .map(|(j, &x)| (x + 1) * (j + 1))
            .sum::<usize>()
            % 17;
        (own + common) as f64
    });
    BayesianGame::new(vec![1; 9], vec![(vec![0; 9], 1.0, matrix)]).unwrap()
}

#[test]
fn random_games_are_thread_invariant_on_every_backend() {
    for seed in [3u64, 17, 92] {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 3], 2, seed);
        for backend in [
            Backend::ExhaustiveEnum,
            Backend::BestResponseDynamics { restarts: 4, seed },
            Backend::MonteCarloSampling { samples: 32, seed },
        ] {
            for symmetry in [SymmetryMode::Off, SymmetryMode::Auto] {
                assert_thread_parity(&game, backend, symmetry);
            }
        }
    }
}

#[test]
fn symmetric_random_games_orbit_sweep_is_equivalent() {
    for (k, actions, seed) in [(3usize, 2usize, 5u64), (4, 3, 11), (5, 2, 23)] {
        let game = symmetric_game(k, actions, seed);
        let auto = assert_orbit_equivalence(&game);
        let stats = auto.orbit.expect("fully symmetric game has orbits");
        let factorial: u128 = (2..=k as u128).product();
        assert_eq!(stats.group_order, factorial);
        assert_eq!(stats.profiles_represented, (actions as u128).pow(k as u32));
        // Orbit-reduced sweeps are thread-invariant too.
        assert_thread_parity(&game, Backend::ExhaustiveEnum, SymmetryMode::Auto);
    }
}

#[test]
fn asymmetric_random_games_degrade_gracefully_under_auto() {
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 3], 2, 41);
    let auto = assert_orbit_equivalence(&game);
    assert_eq!(auto.orbit, None, "no symmetry to exploit");
}

#[test]
fn gworst_construction_orbit_sweep_is_equivalent() {
    for variant in [GWorstVariant::Half, GWorstVariant::InvK] {
        let g = GWorstGame::new(5, variant).unwrap();
        let auto = assert_orbit_equivalence(g.game());
        let stats = auto.orbit.expect("G_worst has k interchangeable agents");
        assert_eq!(stats.group_order, 120, "S_5 on the u→w agents");
        assert_thread_parity(g.game(), Backend::ExhaustiveEnum, SymmetryMode::Auto);
        // Sampling backends must treat both knobs as inert on the
        // construction too.
        let backend = Backend::MonteCarloSampling {
            samples: 16,
            seed: 7,
        };
        let a = solver(backend, 1, SymmetryMode::Off)
            .solve(g.game())
            .unwrap();
        let b = solver(backend, 4, SymmetryMode::Auto)
            .solve(g.game())
            .unwrap();
        assert_eq!(canonical(&a), canonical(&b));
    }
}

#[test]
fn work_stealing_crosses_the_threshold_bit_for_bit() {
    let game = large_asymmetric_game();
    let space = bayesian_ignorance::core::CompiledSpace::compile(&game).unwrap();
    assert!(
        space.space_size().unwrap() >= PARALLEL_SWEEP_MIN_PROFILES,
        "the fixture must actually exercise the parallel path"
    );
    assert_thread_parity(&game, Backend::ExhaustiveEnum, SymmetryMode::Off);
}

#[test]
fn work_stealing_over_the_orbit_domain_is_bit_for_bit() {
    let game = large_partially_symmetric_game();
    let auto = assert_orbit_equivalence(&game);
    let stats = auto.orbit.expect("agents 0 and 1 are interchangeable");
    assert_eq!(stats.group_order, 2);
    assert!(
        stats.orbits_evaluated >= PARALLEL_SWEEP_MIN_PROFILES,
        "the reduced domain itself must cross the work-stealing threshold"
    );
    assert_thread_parity(&game, Backend::ExhaustiveEnum, SymmetryMode::Auto);
}
