//! Parity of the compiled evaluation kernels (`bi_core::compiled`)
//! against the pre-compiled evaluation strategy, **bit for bit**.
//!
//! Two independent reference axes:
//!
//! * a verbatim reimplementation of the pre-change sweep (nested-profile
//!   odometer, `social_cost`/`is_equilibrium` recomputed from scratch per
//!   profile) over the public iteration APIs — the historical ground
//!   truth;
//! * an [`Uncompiled`] wrapper that forwards every model primitive but
//!   *not* the `lower` override, forcing the solver through the generic
//!   clone-based kernel — so compiled-vs-generic parity is checked on the
//!   same engine for **all three backends**, not just the sweep.
//!
//! Both representations are covered (matrix form and NCS graph form),
//! across 1/2/4 worker threads, including NCS games with restrictive
//! path-length limits (where stability checks must fall back to the
//! legacy per-slot Dijkstra instead of the candidate scan).

use bayesian_ignorance::constructions::universal::random_bayesian_ncs;
use bayesian_ignorance::core::bayesian::BayesianGame;
use bayesian_ignorance::core::game::ProfileIter;
use bayesian_ignorance::core::model::{CompleteInfo, Profile};
use bayesian_ignorance::core::random_games::random_bayesian_potential_game;
use bayesian_ignorance::core::solve::{Backend, SolveError, SolveReport, Solver};
use bayesian_ignorance::core::{BayesianModel, Measures};
use bayesian_ignorance::graph::paths::PathLimits;
use bayesian_ignorance::graph::{Direction, Graph};
use bayesian_ignorance::ncs::{BayesianNcsGame, Prior};
use proptest::prelude::*;

/// Forwards every [`BayesianModel`] primitive (including the fused
/// overrides) but *not* `lower`, so the solver uses the generic
/// clone-based kernel — the pre-compiled evaluation strategy on the
/// modern engine.
struct Uncompiled<'a, M>(&'a M);

impl<M: BayesianModel> BayesianModel for Uncompiled<'_, M> {
    type Action = M::Action;

    fn num_agents(&self) -> usize {
        self.0.num_agents()
    }

    fn type_count(&self, agent: usize) -> usize {
        self.0.type_count(agent)
    }

    fn type_weight(&self, agent: usize, tau: usize) -> f64 {
        self.0.type_weight(agent, tau)
    }

    fn candidate_actions(&self, agent: usize, tau: usize) -> Result<Vec<M::Action>, SolveError> {
        self.0.candidate_actions(agent, tau)
    }

    fn candidate_count(&self, agent: usize, tau: usize) -> Result<usize, SolveError> {
        self.0.candidate_count(agent, tau)
    }

    fn social_cost(&self, profile: &Profile<Self>) -> f64 {
        self.0.social_cost(profile)
    }

    fn interim_cost(
        &self,
        agent: usize,
        tau: usize,
        action: &M::Action,
        profile: &Profile<Self>,
    ) -> f64 {
        self.0.interim_cost(agent, tau, action, profile)
    }

    fn best_response(&self, agent: usize, tau: usize, profile: &Profile<Self>) -> (M::Action, f64) {
        self.0.best_response(agent, tau, profile)
    }

    fn slot_is_stable(&self, agent: usize, tau: usize, profile: &Profile<Self>) -> bool {
        self.0.slot_is_stable(agent, tau, profile)
    }

    fn slot_improvement(
        &self,
        agent: usize,
        tau: usize,
        profile: &Profile<Self>,
    ) -> Option<M::Action> {
        self.0.slot_improvement(agent, tau, profile)
    }

    fn complete_info(&self) -> Result<CompleteInfo, SolveError> {
        self.0.complete_info()
    }
}

/// Componentwise bit-level equality of two measure sets.
fn bits(m: Measures) -> [u64; 6] {
    [
        m.opt_p.to_bits(),
        m.best_eq_p.to_bits(),
        m.worst_eq_p.to_bits(),
        m.opt_c.to_bits(),
        m.best_eq_c.to_bits(),
        m.worst_eq_c.to_bits(),
    ]
}

fn assert_reports_identical(a: &SolveReport, b: &SolveReport, context: &str) {
    assert_eq!(bits(a.measures), bits(b.measures), "{context}: measures");
    assert_eq!(
        a.profiles_evaluated, b.profiles_evaluated,
        "{context}: profiles"
    );
    assert_eq!(a.sample_cap, b.sample_cap, "{context}: sample cap");
    assert_eq!(a.exact, b.exact, "{context}: exactness");
    assert_eq!(a.orbit, b.orbit, "{context}: orbit stats");
}

/// The pre-change exhaustive sweep, verbatim, over the generic model API:
/// candidate odometer with per-profile recomputation. Returns the three
/// partial-information extrema.
fn reference_sweep<M: BayesianModel>(model: &M) -> (f64, f64, f64, u128) {
    let mut slots = Vec::new();
    let mut sets: Vec<Vec<M::Action>> = Vec::new();
    for i in 0..model.num_agents() {
        for tau in 0..model.type_count(i) {
            slots.push((i, tau));
            sets.push(model.candidate_actions(i, tau).expect("enumerable"));
        }
    }
    let sizes: Vec<usize> = sets.iter().map(Vec::len).collect();
    let mut opt_p = f64::INFINITY;
    let mut best_eq_p = f64::INFINITY;
    let mut worst_eq_p = f64::NEG_INFINITY;
    let mut evaluated = 0u128;
    for assignment in ProfileIter::new(sizes) {
        let mut profile: Profile<M> = (0..model.num_agents()).map(|_| Vec::new()).collect();
        for (&(i, _), (set, &choice)) in slots.iter().zip(sets.iter().zip(&assignment)) {
            profile[i].push(set[choice].clone());
        }
        let k = model.social_cost(&profile);
        evaluated += 1;
        opt_p = opt_p.min(k);
        if model.is_equilibrium(&profile) {
            best_eq_p = best_eq_p.min(k);
            worst_eq_p = worst_eq_p.max(k);
        }
    }
    (opt_p, best_eq_p, worst_eq_p, evaluated)
}

fn assert_sweep_parity<M: BayesianModel>(model: &M, context: &str) {
    let (opt_p, best_eq_p, worst_eq_p, evaluated) = reference_sweep(model);
    for threads in [1usize, 2, 4] {
        let report = Solver::builder()
            .threads(threads)
            .build()
            .solve(model)
            .expect("solvable");
        assert_eq!(
            opt_p.to_bits(),
            report.measures.opt_p.to_bits(),
            "{context}: optP, {threads} threads"
        );
        assert_eq!(
            best_eq_p.to_bits(),
            report.measures.best_eq_p.to_bits(),
            "{context}: best-eqP, {threads} threads"
        );
        assert_eq!(
            worst_eq_p.to_bits(),
            report.measures.worst_eq_p.to_bits(),
            "{context}: worst-eqP, {threads} threads"
        );
        assert_eq!(evaluated, report.profiles_evaluated, "{context}: profiles");
    }
}

/// A complete undirected 5-vertex network with seeded random costs plus a
/// 2-agent × 2-type independent prior — built with explicit [`PathLimits`]
/// so the restrictive-limit tests can force the kernels off the
/// candidate-scan fast path.
fn complete_network_game(seed: u64, limits: PathLimits) -> BayesianNcsGame {
    use rand::Rng;
    let mut rng = bayesian_ignorance::util::rng::seeded(seed);
    let mut g = Graph::new(Direction::Undirected);
    let nodes: Vec<_> = (0..5).map(|_| g.add_node()).collect();
    for a in 0..nodes.len() {
        for b in (a + 1)..nodes.len() {
            let cost = rng.random_range(0.5..2.0);
            g.add_edge(nodes[a], nodes[b], cost);
        }
    }
    let mut pick_pair = || {
        let s = nodes[rng.random_range(0..nodes.len())];
        let t = nodes[rng.random_range(0..nodes.len())];
        (s, t)
    };
    let mut agent_types = Vec::new();
    for _ in 0..2 {
        let first = pick_pair();
        let mut second = pick_pair();
        while second == first {
            second = pick_pair();
        }
        agent_types.push(vec![(first, 0.5), (second, 0.5)]);
    }
    let prior = Prior::independent(agent_types);
    BayesianNcsGame::with_limits(g, prior, limits).expect("complete graph is connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled matrix kernels reproduce the pre-change sweep bit-for-bit
    /// across 1/2/4 threads.
    #[test]
    fn matrix_kernel_matches_reference_sweep(seed in 0u64..5000, support in 1usize..5) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], support, seed);
        assert_sweep_parity(&game, "matrix");
    }

    /// Compiled NCS kernels reproduce the pre-change sweep bit-for-bit
    /// across 1/2/4 threads.
    #[test]
    fn ncs_kernel_matches_reference_sweep(seed in 0u64..2000) {
        let game = random_bayesian_ncs(Direction::Directed, 4, 0.4, 2, 2, seed)
            .expect("connected generator");
        assert_sweep_parity(&game, "ncs");
    }

    /// Same parity when path enumeration is length-limited: the candidate
    /// sets no longer cover every simple path, so the kernel's stability
    /// checks must run the legacy per-slot Dijkstra — and still agree.
    #[test]
    fn length_limited_ncs_kernel_matches_reference_sweep(seed in 0u64..500) {
        let limits = PathLimits { max_paths: 100_000, max_len: 2 };
        let game = complete_network_game(seed, limits);
        assert_sweep_parity(&game, "ncs/max_len=2");
    }

    /// All three backends produce identical reports through the compiled
    /// kernels and through the generic clone-based kernel (forced via a
    /// wrapper that hides the `lower` override) — matrix form.
    #[test]
    fn matrix_backends_match_generic_kernel(seed in 0u64..2000) {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed);
        let generic = Uncompiled(&game);
        for backend in [
            Backend::ExhaustiveEnum,
            Backend::BestResponseDynamics { restarts: 4, seed },
            Backend::MonteCarloSampling { samples: 24, seed },
        ] {
            let solver = Solver::builder().backend(backend).build();
            let compiled = solver.solve(&game).expect("solvable");
            let reference = solver.solve(&generic).expect("solvable");
            assert_reports_identical(&compiled, &reference, &format!("{backend:?}"));
        }
    }

    /// All three backends produce identical reports through the compiled
    /// kernels and through the generic clone-based kernel — NCS form.
    #[test]
    fn ncs_backends_match_generic_kernel(seed in 0u64..500) {
        let game = random_bayesian_ncs(Direction::Undirected, 4, 0.4, 2, 2, seed)
            .expect("connected generator");
        let generic = Uncompiled(&game);
        for backend in [
            Backend::ExhaustiveEnum,
            Backend::BestResponseDynamics { restarts: 4, seed },
            Backend::MonteCarloSampling { samples: 16, seed },
        ] {
            let solver = Solver::builder().backend(backend).build();
            let compiled = solver.solve(&game).expect("solvable");
            let reference = solver.solve(&generic).expect("solvable");
            assert_reports_identical(&compiled, &reference, &format!("{backend:?}"));
        }
    }
}

/// The profile budget and space sizing behave identically through the
/// kernels (the lowering happens after the budget gate).
#[test]
fn budget_gate_is_unchanged_by_lowering() {
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, 5);
    let space = game.strategy_space_size().unwrap();
    let err = Solver::builder()
        .max_profiles(space - 1)
        .build()
        .solve(&game)
        .unwrap_err();
    assert!(matches!(err, SolveError::BudgetExceeded { required, .. } if required == space));
}

/// An exact-potential matrix game with 4^7 = 16384 profiles — exactly at
/// [`PARALLEL_SWEEP_MIN_PROFILES`], so threads > 1 take the work-stealing
/// path rather than the small-space sequential fallback.
fn threshold_sized_game() -> BayesianGame {
    use bayesian_ignorance::core::game::MatrixFormGame;
    let matrix = MatrixFormGame::from_fn(7, &[4; 7], |i, a| {
        let own = ((i + 1) * (a[i] * a[i] + 3 * a[i] + 1)) % 13;
        let common = a
            .iter()
            .enumerate()
            .map(|(j, &x)| (x + 1) * (j + 3))
            .sum::<usize>()
            % 17;
        (own + common) as f64
    });
    BayesianGame::new(vec![1; 7], vec![(vec![0; 7], 1.0, matrix)]).unwrap()
}

/// The work-stealing scheduler produces **byte-identical** canonical
/// report encodings across 1/2/4/8 threads — the wire form, not just the
/// in-memory measures, is thread-invariant.
#[test]
fn work_stealing_reports_encode_identically_across_thread_counts() {
    use bayesian_ignorance::core::solve::PARALLEL_SWEEP_MIN_PROFILES;
    use bayesian_ignorance::util::Encode;
    let game = threshold_sized_game();
    assert!(game.strategy_space_size().unwrap() >= PARALLEL_SWEEP_MIN_PROFILES);
    let baseline = Solver::builder().threads(1).build().solve(&game).unwrap();
    let want = baseline.encode().canonical_string();
    for threads in [2usize, 4, 8] {
        let report = Solver::builder()
            .threads(threads)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(
            report.encode().canonical_string(),
            want,
            "{threads} threads: canonical report bytes"
        );
    }
}

/// Budget exhaustion under work-stealing is deterministic and identical
/// to the sequential engine: the gate fires before any sweeping, with
/// the same `required` count at every thread count, and at exactly the
/// required budget the sweep succeeds byte-identically.
#[test]
fn budget_exhaustion_is_identical_under_work_stealing() {
    use bayesian_ignorance::util::Encode;
    let game = threshold_sized_game();
    let space = game.strategy_space_size().unwrap();
    let want = Solver::builder()
        .threads(1)
        .max_profiles(space)
        .build()
        .solve(&game)
        .unwrap()
        .encode()
        .canonical_string();
    for threads in [1usize, 2, 4, 8] {
        let err = Solver::builder()
            .threads(threads)
            .max_profiles(space - 1)
            .build()
            .solve(&game)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::BudgetExceeded { required, max_profiles }
                    if required == space && max_profiles == space - 1
            ),
            "{threads} threads: {err:?}"
        );
        let report = Solver::builder()
            .threads(threads)
            .max_profiles(space)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(report.profiles_evaluated, space, "{threads} threads");
        assert_eq!(
            report.encode().canonical_string(),
            want,
            "{threads} threads"
        );
    }
}

/// Zero-weight (pinned) slots stay pinned through the compiled sweep.
#[test]
fn pinned_types_stay_pinned_through_kernels() {
    use bayesian_ignorance::core::game::MatrixFormGame;
    let g = MatrixFormGame::from_fn(1, &[3], |_, a| a[0] as f64);
    // Type space of size 2 but only type 0 in the support.
    let game = BayesianGame::new(vec![2], vec![(vec![0], 1.0, g)]).unwrap();
    let report = Solver::default().solve(&game).unwrap();
    assert_eq!(report.profiles_evaluated, 3);
    assert_eq!(report.measures.opt_p, 0.0);
    report.measures.verify_chain().unwrap();
}
