//! Cross-crate consistency tests: the same quantity computed through two
//! independent code paths must agree.

use bayesian_ignorance::core::bayesian::BayesianGame;
use bayesian_ignorance::core::game::MatrixFormGame;
use bayesian_ignorance::graph::paths::PathLimits;
use bayesian_ignorance::graph::{Direction, Graph};
use bayesian_ignorance::ncs::{BayesianNcsGame, NcsGame, Prior};

/// Builds the two-route diamond used across the tests.
fn diamond() -> (
    Graph,
    bayesian_ignorance::graph::NodeId,
    bayesian_ignorance::graph::NodeId,
) {
    let mut g = Graph::new(Direction::Directed);
    let s = g.add_node();
    let m = g.add_node();
    let t = g.add_node();
    g.add_edge(s, m, 1.0);
    g.add_edge(m, t, 1.0);
    g.add_edge(s, t, 3.0);
    (g, s, t)
}

/// The NCS-native solver and a hand-rolled matrix-form encoding of the
/// same game must produce identical measures.
#[test]
fn ncs_measures_agree_with_matrix_form_encoding() {
    let (g, s, t) = diamond();
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), 0.5), ((s, s), 0.5)],
    ]);
    let ncs = BayesianNcsGame::new(g.clone(), prior).unwrap();
    let ncs_measures = ncs.measures().unwrap();

    // Matrix-form encoding: agent actions = {via, direct}; agent 1 also
    // in her absent state plays a "null" action — encode her absent state
    // as a separate underlying game where her action costs nothing and
    // adds nothing.
    let game_active = MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
        // action 0 = via (edges 0,1), action 1 = direct (edge 2)
        let load_via = a.iter().filter(|&&x| x == 0).count() as f64;
        let load_direct = a.iter().filter(|&&x| x == 1).count() as f64;
        if a[i] == 0 {
            2.0 / load_via
        } else {
            3.0 / load_direct
        }
    });
    let game_absent = MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
        if i == 1 {
            0.0
        } else if a[0] == 0 {
            2.0
        } else {
            3.0
        }
    });
    let core_game = BayesianGame::new(
        vec![1, 2],
        vec![
            (vec![0, 0], 0.5, game_active),
            (vec![0, 1], 0.5, game_absent),
        ],
    )
    .unwrap();
    let core_measures = core_game.measures().unwrap();

    for (label, a, b) in [
        ("optP", ncs_measures.opt_p, core_measures.opt_p),
        ("best-eqP", ncs_measures.best_eq_p, core_measures.best_eq_p),
        (
            "worst-eqP",
            ncs_measures.worst_eq_p,
            core_measures.worst_eq_p,
        ),
        ("optC", ncs_measures.opt_c, core_measures.opt_c),
        ("best-eqC", ncs_measures.best_eq_c, core_measures.best_eq_c),
        (
            "worst-eqC",
            ncs_measures.worst_eq_c,
            core_measures.worst_eq_c,
        ),
    ] {
        assert!((a - b).abs() < 1e-9, "{label}: NCS {a} vs matrix-form {b}");
    }
}

/// Per-state analysis through `bi_ncs::analysis` must agree with the
/// Steiner arborescence optimum for shared-source games.
#[test]
fn social_optimum_agrees_with_steiner_arborescence() {
    let g = bayesian_ignorance::graph::generators::gnp_connected(
        Direction::Directed,
        8,
        0.3,
        (0.5, 2.0),
        3,
    );
    let root = bayesian_ignorance::graph::NodeId::new(0);
    let terminals: Vec<_> = (1..4).map(bayesian_ignorance::graph::NodeId::new).collect();
    let pairs: Vec<_> = terminals.iter().map(|&t| (root, t)).collect();
    let game = NcsGame::new(g.clone(), pairs).unwrap();
    let analysis =
        bayesian_ignorance::ncs::analysis::analyze(&game, PathLimits::default()).unwrap();
    let steiner =
        bayesian_ignorance::graph::steiner::steiner_arborescence(&g, root, &terminals).unwrap();
    assert!(
        (analysis.opt - steiner.cost).abs() < 1e-9,
        "path-profile optimum {} vs Steiner DP {}",
        analysis.opt,
        steiner.cost
    );
}

/// The Bayesian potential of `bi_ncs` must match Observation 2.1's
/// expected Rosenthal potential computed per state by `bi_ncs::NcsGame`.
#[test]
fn bayesian_potential_matches_expected_state_potentials() {
    let (g, s, t) = diamond();
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), 0.25), ((s, s), 0.75)],
    ]);
    let game = BayesianNcsGame::new(g, prior).unwrap();
    let strategy = game.shortest_path_strategy();
    let q = game.bayesian_potential(&strategy);
    let mut expected = 0.0;
    for (idx, (types, prob)) in game.support().iter().enumerate() {
        let underlying = game.underlying_game(idx);
        let profile: Vec<_> = types
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let tau = game.agent_types()[i].iter().position(|u| u == ty).unwrap();
                strategy[i][tau].clone()
            })
            .collect();
        expected += prob * underlying.potential(&profile);
    }
    assert!((q - expected).abs() < 1e-12);
}

/// Equilibria found by interim best-response dynamics must pass the
/// exhaustive equilibrium check, and their cost must lie within the
/// [best-eqP, worst-eqP] band from `measures`.
#[test]
fn dynamics_equilibria_lie_in_the_measured_band() {
    for seed in 0..6 {
        let game = bayesian_ignorance::constructions::universal::random_bayesian_ncs(
            Direction::Undirected,
            4,
            0.4,
            2,
            2,
            seed,
        )
        .unwrap();
        let eq = game
            .best_response_dynamics(game.shortest_path_strategy(), 200)
            .expect("potential game converges");
        assert!(game.is_bayesian_equilibrium(&eq));
        let m = game.measures().unwrap();
        let k = game.social_cost(&eq);
        assert!(
            k >= m.best_eq_p - 1e-9 && k <= m.worst_eq_p + 1e-9,
            "seed {seed}: {k} outside [{}, {}]",
            m.best_eq_p,
            m.worst_eq_p
        );
    }
}

/// FRT routes loaded into an actual NCS game must be feasible actions:
/// the bought edge set contains a source→destination path.
#[test]
fn frt_routes_are_feasible_ncs_actions() {
    use bayesian_ignorance::constructions::frt_strategy::FrtRouting;
    let graph = bayesian_ignorance::graph::generators::grid_graph(4, 4, 1.0);
    let routing = FrtRouting::build(&graph, 4, 8).unwrap();
    for x in 0..8usize {
        let from = bayesian_ignorance::graph::NodeId::new(x);
        let to = bayesian_ignorance::graph::NodeId::new(15 - x);
        let edges = routing.route(from, to);
        let mut sub = Graph::with_nodes(Direction::Undirected, graph.node_count());
        for &e in &edges {
            let edge = graph.edge(e);
            sub.add_edge(edge.source(), edge.target(), edge.cost());
        }
        assert!(bayesian_ignorance::graph::shortest_path(&sub, from, to).is_some());
    }
}

/// The generic `Solver` applied to the NCS representation and to the
/// hand-rolled matrix-form encoding of the same game (the two
/// [`bayesian_ignorance::core::BayesianModel`] implementations) must
/// agree — and match what the legacy wrappers report.
#[test]
fn generic_solver_agrees_across_representations() {
    use bayesian_ignorance::core::solve::Solver;

    let (g, s, t) = diamond();
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), 0.5), ((s, s), 0.5)],
    ]);
    let ncs = BayesianNcsGame::new(g, prior).unwrap();
    let solver = Solver::builder().threads(2).build();
    let via_solver = solver.solve(&ncs).unwrap();
    let via_wrapper = ncs.measures().unwrap();
    assert!(via_solver.exact);
    assert_eq!(via_solver.measures, via_wrapper);
    assert_eq!(
        via_solver.profiles_evaluated,
        bayesian_ignorance::core::BayesianModel::strategy_space_size(&ncs).unwrap()
    );
}
