//! Experiment drivers shared by the `table1` binary and the Criterion
//! benches.
//!
//! Each function regenerates the measured analogue of one Table 1 cell
//! (or Section 4 / Observation claim) of *Bayesian ignorance* and returns
//! the series of `(size, value)` points so callers can print or fit them.
//! `EXPERIMENTS.md` records the outputs against the paper's bounds.

use bi_constructions::affine_game::AffinePlaneGame;
use bi_constructions::diamond_game::DiamondGame;
use bi_constructions::frt_strategy::{self, FrtRouting};
use bi_constructions::gworst::{GWorstGame, GWorstVariant};
use bi_constructions::pos_game::GkGame;
use bi_constructions::universal::{lemma_3_1_check, random_bayesian_ncs};
use bi_core::randomness::CostTuple;
use bi_core::solve::{Backend, SolveReport, Solver};
use bi_graph::{Direction, NodeId};

/// One measured point of an experiment series.
#[derive(Clone, Debug)]
pub struct Point {
    /// The instance-size parameter (k, n, or depth as documented per
    /// experiment).
    pub size: f64,
    /// The measured ratio/value.
    pub value: f64,
}

/// E2/E4 — Lemma 3.2 (directed `Ω(k)` existential): the affine-plane game
/// ratio `optP/worst-eqC` per prime-power order. For small orders the
/// strategy-invariance is verified exactly; the series reports the exact
/// analytic ratio (which equals the measured one for every profile).
///
/// # Panics
///
/// Panics if an order is not a supported prime power.
#[must_use]
pub fn affine_series(orders: &[u64]) -> Vec<Point> {
    orders
        .iter()
        .map(|&m| {
            let game = AffinePlaneGame::new(m).expect("prime-power order");
            // Cross-check the analytic value on a concrete profile.
            let measured = game
                .expected_social_cost(&game.first_line_strategies())
                .expect("valid strategies");
            assert!((measured - game.analytic_opt_p()).abs() < 1e-9);
            Point {
                size: game.num_agents() as f64,
                value: game.analytic_ratio(),
            }
        })
        .collect()
}

/// E5/E13 — Lemma 3.3 / Remark 1 (directed `O(1/log k)` existential):
/// the `G_k` bliss ratio `worst-eqP/best-eqC`, exact for `k ≤ exact_max`,
/// analytic beyond.
#[must_use]
pub fn gk_series(ks: &[usize], exact_max: usize) -> Vec<Point> {
    ks.iter()
        .map(|&k| {
            let game = GkGame::new(k).expect("valid k");
            let value = if k <= exact_max {
                let m = game.exact_measures().expect("small instance");
                m.worst_eq_p / m.best_eq_c
            } else {
                game.analytic_bliss_ratio()
            };
            Point {
                size: k as f64,
                value,
            }
        })
        .collect()
}

/// E6/E11/E12 — Lemmas 3.6/3.7 (undirected `Ω(k)` / `O(1/k)` existential
/// on `O(1)` vertices): the `G_worst` ratio `worst-eqP/worst-eqC`, exact
/// for `k ≤ exact_max`, analytic beyond.
#[must_use]
pub fn gworst_series(ks: &[usize], variant: GWorstVariant, exact_max: usize) -> Vec<Point> {
    ks.iter()
        .map(|&k| {
            let game = GWorstGame::new(k, variant).expect("valid k");
            let value = if k <= exact_max {
                let m = game.exact_measures().expect("small instance");
                m.worst_eq_p / m.worst_eq_c
            } else {
                game.analytic_ratio()
            };
            Point {
                size: k as f64,
                value,
            }
        })
        .collect()
}

/// E7 — Lemma 3.4 (undirected `O(log n)` universal): FRT strategy cost
/// over `optC` on `side×side` grids with random shared-source priors.
#[must_use]
pub fn frt_series(sides: &[usize], seed: u64) -> Vec<Point> {
    sides
        .iter()
        .map(|&side| {
            let graph = bi_graph::generators::grid_graph(side, side, 1.0);
            let routing = FrtRouting::build(&graph, 8, seed).expect("grid metric");
            let root = NodeId::new(0);
            let states = frt_strategy::random_terminal_states(&graph, root, 6, 4, seed + 1);
            let m = frt_strategy::measure_shared_source(&graph, &routing, root, &states);
            Point {
                size: (side * side) as f64,
                value: m.ratio(),
            }
        })
        .collect()
}

/// E8/E10 — Lemma 3.5 (undirected `Ω(log n)` existential): the diamond
/// game. Depth-wise series of `E[greedy]/optC` (the online benchmark) and,
/// where enumerable, the locally-optimal path-system cost (an upper bound
/// on `optP` exhibiting the same growth). Sizes are vertex counts.
#[must_use]
pub fn diamond_series(depths: &[u32], samples: u32, seed: u64) -> Vec<Point> {
    depths
        .iter()
        .map(|&j| {
            let game = DiamondGame::new(j);
            let n = game.diamond().graph().node_count() as f64;
            let greedy = game.expected_greedy_cost(samples, seed);
            Point {
                size: n,
                value: greedy / game.analytic_opt_c(),
            }
        })
        .collect()
}

/// E8 (exact flank): exact `optP/optC` for depth 1 and a certified
/// path-system upper bound for depth 2, confirming growth beyond the
/// depth-1 exact value.
#[must_use]
pub fn diamond_exact_points() -> Vec<Point> {
    let g1 = DiamondGame::new(1);
    let m1 = g1.exact_measures().expect("depth-1 enumerable");
    let g2 = DiamondGame::new(2);
    let (c2, _) = g2.optimize_path_system(3, 7);
    vec![
        Point {
            size: g1.diamond().graph().node_count() as f64,
            value: m1.opt_p / m1.opt_c,
        },
        Point {
            size: g2.diamond().graph().node_count() as f64,
            value: c2 / g2.analytic_opt_c(),
        },
    ]
}

/// E1/E3 — universal bounds on random games: returns the maximum observed
/// `worst-eqP/(k·optC)` over a seeded sweep (must be ≤ 1 by Lemma 3.1)
/// and the maximum `optP/optC` normalized slack.
#[must_use]
pub fn universal_sweep(direction: Direction, trials: u64) -> (f64, f64) {
    let mut max_lemma31 = 0.0f64;
    let mut max_chain_violation = 0.0f64;
    for seed in 0..trials {
        let game = random_bayesian_ncs(direction, 5, 0.3, 2, 2, seed).expect("valid game");
        let check = lemma_3_1_check(&game).expect("solvable");
        max_lemma31 = max_lemma31.max(check.worst_eq_p / check.bound);
        let m = game.measures().expect("solvable");
        max_chain_violation = max_chain_violation.max(m.opt_c - m.opt_p);
    }
    (max_lemma31, max_chain_violation)
}

/// E17 — the unified solver's backends on one seeded random Bayesian NCS
/// game (2 agents × 2 types on a 5-vertex directed network): exact
/// exhaustive sweeps (single- and multi-threaded), best-response-dynamics
/// restarts, and Monte Carlo sampling. Returns
/// `(label, report, wall-clock seconds)` rows; the exact rows must agree
/// bit-for-bit and the sampled rows must bracket them (recorded in
/// `EXPERIMENTS.md`).
///
/// # Panics
///
/// Panics if the seeded instance is unsolvable (it is not).
#[must_use]
pub fn backend_comparison(seed: u64) -> Vec<(String, SolveReport, f64)> {
    let game = random_bayesian_ncs(Direction::Directed, 5, 0.35, 2, 2, seed).expect("valid game");
    let configs: Vec<(&str, Solver)> = vec![
        ("exhaustive/1-thread", Solver::builder().build()),
        ("exhaustive/4-threads", Solver::builder().threads(4).build()),
        (
            "best-response/16-restarts",
            Solver::builder()
                .backend(Backend::BestResponseDynamics { restarts: 16, seed })
                .build(),
        ),
        (
            "monte-carlo/256-samples",
            Solver::builder()
                .backend(Backend::MonteCarloSampling { samples: 256, seed })
                .build(),
        ),
    ];
    configs
        .into_iter()
        .map(|(label, solver)| {
            let t0 = std::time::Instant::now();
            let report = solver.solve(&game).expect("solvable");
            (label.to_string(), report, t0.elapsed().as_secs_f64())
        })
        .collect()
}

/// E16 — Section 4: builds the `G_k` cost tuple, solves for `R̃(φ)` and
/// the public-randomness distribution `q`, computes `R(φ)` independently
/// by bisection, and returns `(r_tilde, r_star, worst_guarantee_gap)`
/// where the gap is `max over sampled priors of (lhs − R̃)` (must be
/// ≤ 0 up to tolerance).
///
/// # Panics
///
/// Panics if the instance is too large to tabulate.
#[must_use]
pub fn section4_measurements(k: usize, prior_samples: u32, seed: u64) -> (f64, f64, f64) {
    use rand::Rng;
    let gk = GkGame::new(k).expect("valid k");
    // Convert the NCS game into the enumerable core representation via its
    // cost tuple: tabulate over strategy profiles and support states.
    let tuple = cost_tuple_of_gk(&gk);
    let sol = tuple.solve().expect("LP solvable");
    let r_star = tuple.r_star(1e-7).expect("bisection converges");
    let mut rng = bi_util::rng::seeded(seed);
    let mut worst_gap = f64::NEG_INFINITY;
    for _ in 0..prior_samples {
        let raw: Vec<f64> = (0..tuple.num_states())
            .map(|_| rng.random_range(0.01..1.0))
            .collect();
        let total: f64 = raw.iter().sum();
        let prior: Vec<f64> = raw.into_iter().map(|p| p / total).collect();
        let lhs = tuple.guarantee(&sol.distribution, &prior);
        worst_gap = worst_gap.max(lhs - sol.r_tilde);
    }
    (sol.r_tilde, r_star, worst_gap)
}

/// Tabulates the `G_k` game's Section 4 cost tuple by enumerating its
/// strategy profiles against its support states.
fn cost_tuple_of_gk(gk: &GkGame) -> CostTuple {
    // Reuse the generic core machinery by building a matrix directly: the
    // CostTuple API accepts a BayesianGame; construct an equivalent one.
    // G_k strategy sets are tiny: each deterministic agent picks direct or
    // hub; agent k is forced. Tabulate social costs per (profile, state).
    let game = gk.game();
    let sets = game.strategy_sets().expect("small sets");
    let slot_sizes: Vec<usize> = sets.iter().flatten().map(Vec::len).collect();
    let mut slots = Vec::new();
    for (i, types) in game.agent_types().iter().enumerate() {
        for tau in 0..types.len() {
            slots.push((i, tau));
        }
    }
    let mut k_matrix: Vec<Vec<f64>> = Vec::new();
    for assignment in bi_core::game::ProfileIter::new(slot_sizes) {
        let mut s: Vec<Vec<bi_ncs::Path>> = game
            .agent_types()
            .iter()
            .map(|types| vec![bi_ncs::Path::new(); types.len()])
            .collect();
        for (&(i, tau), &choice) in slots.iter().zip(&assignment) {
            s[i][tau] = sets[i][tau][choice].clone();
        }
        let row: Vec<f64> = (0..game.support().len())
            .map(|idx| {
                let underlying = game.underlying_game(idx);
                let profile: Vec<bi_ncs::Path> = game.support()[idx]
                    .0
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let tau = game.agent_types()[i]
                            .iter()
                            .position(|u| u == t)
                            .expect("type in support");
                        s[i][tau].clone()
                    })
                    .collect();
                underlying.social_cost(&profile).max(1e-6)
            })
            .collect();
        k_matrix.push(row);
    }
    CostTuple::from_matrix(k_matrix).expect("positive costs")
}

/// Fits the growth exponent of a series on a log–log scale.
///
/// # Panics
///
/// Panics if the series has fewer than two points or non-positive values.
#[must_use]
pub fn growth_exponent(series: &[Point]) -> f64 {
    let xs: Vec<f64> = series.iter().map(|p| p.size).collect();
    let ys: Vec<f64> = series.iter().map(|p| p.value).collect();
    bi_util::log_log_slope(&xs, &ys)
}

/// Fits a `value ≈ a + b·ln(size)` model and returns `b` (positive for
/// logarithmic growth).
///
/// # Panics
///
/// Panics if the series has fewer than two points.
#[must_use]
pub fn log_fit_slope(series: &[Point]) -> f64 {
    let xs: Vec<f64> = series.iter().map(|p| p.size.ln()).collect();
    let ys: Vec<f64> = series.iter().map(|p| p.value).collect();
    bi_util::linear_fit(&xs, &ys).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_series_grows_linearly() {
        let series = affine_series(&[2, 3, 4, 5]);
        let alpha = growth_exponent(&series);
        assert!((alpha - 1.0).abs() < 0.3, "alpha {alpha}");
    }

    #[test]
    fn gk_series_decays() {
        // Within each regime the ratio is decreasing; across the
        // exact→analytic switch it may tick up because the analytic
        // denominator H(k−1)/2 is only a lower bound on best-eqC.
        let analytic = gk_series(&[4, 6, 8, 12, 24], 0);
        assert!(analytic.windows(2).all(|w| w[1].value < w[0].value));
        let exact = gk_series(&[4, 6, 8], 8);
        assert!(exact.windows(2).all(|w| w[1].value < w[0].value));
    }

    #[test]
    fn gworst_series_shapes() {
        let up = gworst_series(&[4, 6, 8], GWorstVariant::InvK, 6);
        assert!(growth_exponent(&up) > 0.5);
        let down = gworst_series(&[4, 6, 8], GWorstVariant::Half, 6);
        assert!(growth_exponent(&down) < -0.5);
    }

    #[test]
    fn universal_sweep_respects_lemma_3_1() {
        let (max31, chain) = universal_sweep(Direction::Directed, 4);
        assert!(max31 <= 1.0 + 1e-9);
        assert!(chain <= 1e-9);
    }

    #[test]
    fn section4_prop_4_2_and_lemma_4_1() {
        let (r_tilde, r_star, gap) = section4_measurements(4, 50, 3);
        assert!((r_tilde - r_star).abs() < 1e-4, "{r_tilde} vs {r_star}");
        assert!(gap <= 1e-7, "guarantee violated by {gap}");
        assert!(r_tilde >= 1.0 - 1e-9);
    }

    #[test]
    fn diamond_exact_points_grow() {
        let pts = diamond_exact_points();
        assert!(pts[1].value > pts[0].value);
    }

    #[test]
    fn backend_comparison_rows_are_consistent() {
        let rows = backend_comparison(11);
        assert_eq!(rows.len(), 4);
        let exact = rows[0].1.measures;
        // The two exhaustive rows agree bit-for-bit; sampled rows bracket.
        assert_eq!(exact, rows[1].1.measures);
        for (label, report, _) in &rows[2..] {
            assert!(!report.exact, "{label}");
            assert!(exact.opt_p <= report.measures.opt_p + 1e-12, "{label}");
            assert!(
                report.measures.worst_eq_p <= exact.worst_eq_p + 1e-12,
                "{label}"
            );
        }
    }
}
