//! Regenerates the measured analogue of **Table 1** of *Bayesian
//! ignorance* (Alon, Emek, Feldman, Tennenholtz): asymptotic bounds on the
//! three ignorance ratios for Bayesian NCS games, directed and undirected.
//!
//! Run with `cargo run --release -p bi-bench --bin table1`. Output is
//! recorded in `EXPERIMENTS.md`.

use bi_bench::{
    affine_series, backend_comparison, diamond_exact_points, diamond_series, frt_series, gk_series,
    growth_exponent, gworst_series, log_fit_slope, section4_measurements, universal_sweep, Point,
};
use bi_constructions::gworst::GWorstVariant;
use bi_graph::Direction;
use bi_util::table::{fmt_f64, TextTable};

fn print_series(title: &str, size_label: &str, series: &[Point]) {
    println!("\n### {title}");
    let mut t = TextTable::new(vec![size_label, "ratio"]);
    for p in series {
        t.add_row(vec![fmt_f64(p.size), fmt_f64(p.value)]);
    }
    println!("{t}");
}

fn main() {
    println!("Table 1 of 'Bayesian ignorance' — measured reproduction");
    println!("========================================================");

    // ── Universal bounds ────────────────────────────────────────────────
    println!("\n[E1] universal: worst-eqP ≤ k·optC (Lemma 3.1), optC ≤ optP (Obs 2.2)");
    let (max31_dir, chain_dir) = universal_sweep(Direction::Directed, 12);
    let (max31_und, chain_und) = universal_sweep(Direction::Undirected, 12);
    println!(
        "  directed:   max worst-eqP/(k·optC) = {} (must be ≤ 1); max optC−optP = {}",
        fmt_f64(max31_dir),
        fmt_f64(chain_dir)
    );
    println!(
        "  undirected: max worst-eqP/(k·optC) = {} (must be ≤ 1); max optC−optP = {}",
        fmt_f64(max31_und),
        fmt_f64(chain_und)
    );

    let affine = affine_series(&[2, 3, 4, 5, 7, 8, 9, 11, 13]);
    print_series(
        "[E2/E4] directed existential Ω(k): affine-plane game, optP/worst-eqC (n = Θ(k²))",
        "k",
        &affine,
    );
    println!(
        "  log-log growth exponent: {} (paper: 1 — linear in k)",
        fmt_f64(growth_exponent(&affine))
    );

    let gk = gk_series(&[4, 6, 8, 12, 16, 24, 32, 48, 64], 9);
    print_series(
        "[E5/E13] directed existential O(1/log k): G_k game, worst-eqP/best-eqC ('ignorance is bliss')",
        "k",
        &gk,
    );
    let normalized: Vec<Point> = gk
        .iter()
        .map(|p| Point {
            size: p.size,
            value: p.value * bi_util::harmonic(p.size as usize - 1),
        })
        .collect();
    println!(
        "  ratio × H(k−1) stays Θ(1): min {} / max {}",
        fmt_f64(
            normalized
                .iter()
                .map(|p| p.value)
                .fold(f64::INFINITY, f64::min)
        ),
        fmt_f64(normalized.iter().map(|p| p.value).fold(0.0, f64::max))
    );

    // ── Worst-equilibrium row (directed and undirected) ─────────────────
    let up = gworst_series(&[4, 6, 8, 12, 16, 24], GWorstVariant::InvK, 9);
    print_series(
        "[E6/E11] existential Ω(k) on O(1) vertices: G_worst (p = 1/k), worst-eqP/worst-eqC",
        "k",
        &up,
    );
    println!(
        "  growth exponent: {} (paper: 1)",
        fmt_f64(growth_exponent(&up))
    );

    let down = gworst_series(&[4, 6, 8, 12, 16, 24], GWorstVariant::Half, 9);
    print_series(
        "[E6/E12] existential O(1/k) on O(1) vertices: G_worst (p = 1/2), worst-eqP/worst-eqC",
        "k",
        &down,
    );
    println!(
        "  growth exponent: {} (paper: −1)",
        fmt_f64(growth_exponent(&down))
    );

    // ── Undirected optP/optC row ────────────────────────────────────────
    let frt = frt_series(&[3, 4, 5, 6], 42);
    print_series(
        "[E7] undirected universal O(log n): FRT strategy, K(s)/optC on grids",
        "n",
        &frt,
    );
    println!(
        "  growth exponent: {} (≪ 1: sublinear, logarithmic in theory); per-ln(n) slope {}",
        fmt_f64(growth_exponent(&frt)),
        fmt_f64(log_fit_slope(&frt))
    );

    let diamond = diamond_series(&[1, 2, 3, 4, 5], 48, 7);
    print_series(
        "[E8/E10] undirected existential Ω(log n): diamond game, E[greedy]/optC (k = Θ(n))",
        "n",
        &diamond,
    );
    println!(
        "  per-ln(n) slope: {} (positive and stable → logarithmic growth)",
        fmt_f64(log_fit_slope(&diamond))
    );
    let exact = diamond_exact_points();
    println!(
        "  exact flank: optP/optC = {} at n = {}; certified path-system bound {} at n = {}",
        fmt_f64(exact[0].value),
        fmt_f64(exact[0].size),
        fmt_f64(exact[1].value),
        fmt_f64(exact[1].size)
    );

    // ── Section 4 ───────────────────────────────────────────────────────
    let (r_tilde, r_star, gap) = section4_measurements(5, 200, 11);
    println!("\n[E16] Section 4 (public random bits replace the prior) on the G_5 tuple:");
    println!(
        "  R̃(φ) = {} (zero-sum value), R(φ) = {} (independent bisection): Proposition 4.2 gap {}",
        fmt_f64(r_tilde),
        fmt_f64(r_star),
        fmt_f64((r_tilde - r_star).abs())
    );
    println!(
        "  Lemma 4.1: max over 200 random priors of (guarantee − R̃) = {} (must be ≤ 0)",
        fmt_f64(gap)
    );

    // ── Solver backends ─────────────────────────────────────────────────
    println!("\n[E17] unified solver backends on one random Bayesian NCS game (seed 11):");
    let mut t = TextTable::new(vec![
        "backend",
        "optP",
        "best-eqP",
        "worst-eqP",
        "exact",
        "profiles",
    ]);
    for (label, report, secs) in backend_comparison(11) {
        let m = report.measures;
        // Wall-clock goes to stderr: stdout must be identical run-to-run.
        eprintln!("  [E17] {label}: {:.4} ms", secs * 1e3);
        t.add_row(vec![
            label,
            fmt_f64(m.opt_p),
            fmt_f64(m.best_eq_p),
            fmt_f64(m.worst_eq_p),
            report.exact.to_string(),
            report.profiles_evaluated.to_string(),
        ]);
    }
    println!("{t}");
    println!("  exact rows agree bit-for-bit; sampled rows bracket them from inside.");

    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured record.");
}
