//! `bench_solver_sweep` — throughput of the solver's exhaustive sweep and
//! sampling backends, per representation, against the pre-compiled
//! baseline, written to `BENCH_solver.json`.
//!
//! The baseline is a verbatim reimplementation of the pre-compiled-kernel
//! sweep loop (clone-based odometer over nested `Vec<Vec<Action>>`
//! profiles, full `social_cost` / `is_equilibrium` recomputation per
//! profile), timed **in the same run** as the compiled-kernel engine so
//! the speedup column is an apples-to-apples measurement on the same
//! machine and instance. The bench also asserts the two sweeps agree
//! bit-for-bit before reporting.
//!
//! `--quick` shrinks instances and repeats for CI smoke runs; the
//! committed `BENCH_solver.json` comes from a full run.

use std::io::Write;
use std::process::exit;
use std::time::Instant;

use bi_constructions::universal::random_bayesian_ncs;
use bi_core::model::{BayesianModel, Profile};
use bi_core::random_games::random_bayesian_potential_game;
use bi_core::solve::{Backend, SolveReport, Solver};
use bi_graph::Direction;
use bi_util::Json;

const USAGE: &str = "\
bench_solver_sweep — solver sweep throughput vs the pre-compiled baseline

USAGE: bench_solver_sweep [OPTIONS]

OPTIONS:
  --quick       small instances / fewer repeats (CI smoke mode)
  --seed N      instance seed (default 11)
  --out FILE    report path (default BENCH_solver.json)
  --help        print this help
";

struct Args {
    quick: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        seed: 11,
        out: "BENCH_solver.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--quick" => parsed.quick = true,
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                parsed.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--out" => parsed.out = args.next().ok_or("--out needs a value")?,
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    Ok(parsed)
}

/// Extrema of one baseline sweep (mirrors the solver's internal stats).
struct BaselineStats {
    opt_p: f64,
    best_eq_p: f64,
    worst_eq_p: f64,
    evaluated: u128,
}

/// The pre-compiled exhaustive sweep, verbatim: nested-profile odometer
/// with one action clone per tick, `social_cost` and `is_equilibrium`
/// recomputed from scratch on every profile.
fn baseline_sweep<M: BayesianModel>(model: &M) -> BaselineStats {
    let mut slots = Vec::new();
    let mut sets: Vec<Vec<M::Action>> = Vec::new();
    for i in 0..model.num_agents() {
        for tau in 0..model.type_count(i) {
            slots.push((i, tau));
            sets.push(model.candidate_actions(i, tau).expect("enumerable"));
        }
    }
    let sizes: Vec<usize> = sets.iter().map(Vec::len).collect();
    let size: u128 = sizes.iter().map(|&s| s as u128).product();
    let mut profile: Profile<M> = (0..model.num_agents()).map(|_| Vec::new()).collect();
    for (&(i, _), set) in slots.iter().zip(&sets) {
        profile[i].push(set[0].clone());
    }
    let mut digits = vec![0usize; sizes.len()];
    let mut stats = BaselineStats {
        opt_p: f64::INFINITY,
        best_eq_p: f64::INFINITY,
        worst_eq_p: f64::NEG_INFINITY,
        evaluated: 0,
    };
    loop {
        let k = model.social_cost(&profile);
        stats.evaluated += 1;
        stats.opt_p = stats.opt_p.min(k);
        if model.is_equilibrium(&profile) {
            stats.best_eq_p = stats.best_eq_p.min(k);
            stats.worst_eq_p = stats.worst_eq_p.max(k);
        }
        if stats.evaluated == size {
            return stats;
        }
        let mut j = digits.len();
        loop {
            assert!(j > 0, "odometer overflow");
            j -= 1;
            let (i, tau) = slots[j];
            digits[j] += 1;
            if digits[j] < sizes[j] {
                profile[i][tau] = sets[j][digits[j]].clone();
                break;
            }
            digits[j] = 0;
            profile[i][tau] = sets[j][0].clone();
        }
    }
}

/// Wall-clock of the best of `repeats` runs of `f` (min filters scheduler
/// noise), together with the last result.
fn time_best<T>(repeats: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one repeat"), best)
}

struct Row {
    backend: String,
    profiles: u128,
    seconds: f64,
}

impl Row {
    fn profiles_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.profiles as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("backend".into(), Json::str(&self.backend)),
            ("profiles".into(), Json::num(self.profiles as f64)),
            ("seconds".into(), Json::num(self.seconds)),
            (
                "profiles_per_sec".into(),
                Json::num(self.profiles_per_sec()),
            ),
        ])
    }
}

/// Benches one model: baseline sweep, compiled sweeps at 1 and 4 threads,
/// and the two sampling backends. Asserts bit-for-bit agreement between
/// the baseline and the compiled exhaustive sweep.
fn bench_model<M: BayesianModel>(model: &M, seed: u64, repeats: u32) -> (Vec<Row>, f64) {
    let (base, base_secs) = time_best(repeats, || baseline_sweep(model));
    let exhaustive = |threads: usize| Solver::builder().threads(threads).build();
    let (report1, secs1) = time_best(repeats, || {
        exhaustive(1).solve(model).expect("solvable instance")
    });
    assert_eq!(
        (
            base.opt_p.to_bits(),
            base.best_eq_p.to_bits(),
            base.worst_eq_p.to_bits()
        ),
        (
            report1.measures.opt_p.to_bits(),
            report1.measures.best_eq_p.to_bits(),
            report1.measures.worst_eq_p.to_bits()
        ),
        "compiled sweep must agree with the baseline bit-for-bit"
    );
    assert_eq!(base.evaluated, report1.profiles_evaluated);
    let (report4, secs4) = time_best(repeats, || {
        exhaustive(4).solve(model).expect("solvable instance")
    });
    let brd = Solver::builder()
        .backend(Backend::BestResponseDynamics { restarts: 32, seed })
        .build();
    let (brd_report, brd_secs) = time_best(repeats, || brd.solve(model).expect("solvable"));
    let mc = Solver::builder()
        .backend(Backend::MonteCarloSampling { samples: 256, seed })
        .build();
    let (mc_report, mc_secs) = time_best(repeats, || mc.solve(model).expect("solvable"));
    let row = |backend: &str, report: &SolveReport, seconds: f64| Row {
        backend: backend.into(),
        profiles: report.profiles_evaluated,
        seconds,
    };
    let rows = vec![
        Row {
            backend: "baseline-exhaustive/1t".into(),
            profiles: base.evaluated,
            seconds: base_secs,
        },
        row("compiled-exhaustive/1t", &report1, secs1),
        row("compiled-exhaustive/4t", &report4, secs4),
        row("best-response-dynamics/32-restarts", &brd_report, brd_secs),
        row("monte-carlo/256-samples", &mc_report, mc_secs),
    ];
    let speedup = rows[1].profiles_per_sec() / rows[0].profiles_per_sec();
    (rows, speedup)
}

fn suite_json(representation: &str, instance: &str, rows: &[Row], speedup: f64) -> Json {
    Json::Obj(vec![
        ("representation".into(), Json::str(representation)),
        ("instance".into(), Json::str(instance)),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(Row::to_json).collect()),
        ),
        ("compiled_over_baseline_1t".into(), Json::num(speedup)),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_solver_sweep: {msg}");
            exit(2);
        }
    };
    let repeats = if args.quick { 2 } else { 5 };

    // Matrix form: 3 agents × 2 types, so the sweep space (4^6 = 4096)
    // dwarfs each state's joint table (4^3 = 64).
    let (matrix_types, matrix_actions, matrix_support) = if args.quick {
        (vec![2usize, 2], vec![3usize, 3], 3usize)
    } else {
        (vec![2usize, 2, 2], vec![4usize, 4, 4], 4usize)
    };
    let (matrix_game, _) =
        random_bayesian_potential_game(&matrix_types, &matrix_actions, matrix_support, args.seed);
    let matrix_desc = format!(
        "random potential game, types {matrix_types:?}, actions {matrix_actions:?}, support {matrix_support}"
    );
    eprintln!("bench_solver_sweep: matrix — {matrix_desc}");
    let (matrix_rows, matrix_speedup) = bench_model(&matrix_game, args.seed, repeats);
    for r in &matrix_rows {
        eprintln!(
            "  {:<36} {:>10} profiles  {:>9.0} profiles/s",
            r.backend,
            r.profiles,
            r.profiles_per_sec()
        );
    }

    // NCS form: a random directed network, 2 agents × 2 types.
    let (ncs_nodes, ncs_p) = if args.quick { (5, 0.35) } else { (6, 0.4) };
    let ncs_game = random_bayesian_ncs(Direction::Directed, ncs_nodes, ncs_p, 2, 2, args.seed)
        .expect("connected generator");
    let ncs_desc = format!(
        "random Bayesian NCS, {ncs_nodes} nodes, edge prob {ncs_p}, 2 agents x 2 types, space {}",
        ncs_game.strategy_space_size().expect("sized")
    );
    eprintln!("bench_solver_sweep: ncs — {ncs_desc}");
    let (ncs_rows, ncs_speedup) = bench_model(&ncs_game, args.seed, repeats);
    for r in &ncs_rows {
        eprintln!(
            "  {:<36} {:>10} profiles  {:>9.0} profiles/s",
            r.backend,
            r.profiles,
            r.profiles_per_sec()
        );
    }

    let report = Json::Obj(vec![
        (
            "mode".into(),
            Json::str(if args.quick { "quick" } else { "full" }),
        ),
        ("seed".into(), Json::from_u64(args.seed)),
        (
            "suites".into(),
            Json::Arr(vec![
                suite_json("matrix", &matrix_desc, &matrix_rows, matrix_speedup),
                suite_json("ncs", &ncs_desc, &ncs_rows, ncs_speedup),
            ]),
        ),
    ]);
    let mut file = match std::fs::File::create(&args.out) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("bench_solver_sweep: cannot write {}: {e}", args.out);
            exit(1);
        }
    };
    file.write_all(report.to_string().as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .expect("report write");
    println!(
        "bench_solver_sweep: matrix {matrix_speedup:.1}x | ncs {ncs_speedup:.1}x vs baseline -> {}",
        args.out
    );
}
