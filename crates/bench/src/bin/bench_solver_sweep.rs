//! `bench_solver_sweep` — throughput of the solver's exhaustive sweep and
//! sampling backends, per representation, against the pre-compiled
//! baseline, written to `BENCH_solver.json`.
//!
//! The baseline is a verbatim reimplementation of the pre-compiled-kernel
//! sweep loop (clone-based odometer over nested `Vec<Vec<Action>>`
//! profiles, full `social_cost` / `is_equilibrium` recomputation per
//! profile), timed **in the same run** as the compiled-kernel engine so
//! the speedup column is an apples-to-apples measurement on the same
//! machine and instance. The bench also asserts the two sweeps agree
//! bit-for-bit before reporting.
//!
//! Beyond the per-representation suites, the bench covers the two sweep
//! optimizations of the solver engine:
//!
//! * **thread scaling** (`--threads 1,2,4`): the compiled exhaustive
//!   sweep is timed at each requested worker count on a large suite that
//!   crosses the work-stealing threshold, with bit-for-bit agreement
//!   asserted at every count; `--check-scaling` turns a 4t-slower-than-1t
//!   result into a nonzero exit (only on hosts with ≥ 4 cores — the
//!   report records `host_parallelism` so consumers can tell);
//! * **symmetry-orbit reduction** (`--orbits`): construction families
//!   with interchangeable agents (`G_worst`) and fully symmetric matrix
//!   games are solved with `SymmetryMode::Off` vs `Auto`, reporting the
//!   profile-evaluation reduction factor.
//!
//! `--quick` shrinks instances and repeats for CI smoke runs; the
//! committed `BENCH_solver.json` comes from a full run.

use std::io::Write;
use std::process::exit;
use std::time::Instant;

use bi_constructions::gworst::{GWorstGame, GWorstVariant};
use bi_constructions::universal::random_bayesian_ncs;
use bi_core::game::MatrixFormGame;
use bi_core::model::{BayesianModel, Profile};
use bi_core::random_games::random_bayesian_potential_game;
use bi_core::solve::{Backend, SolveReport, Solver};
use bi_core::{BayesianGame, SymmetryMode};
use bi_graph::Direction;
use bi_util::Json;

const USAGE: &str = "\
bench_solver_sweep — solver sweep throughput vs the pre-compiled baseline

USAGE: bench_solver_sweep [OPTIONS]

OPTIONS:
  --quick           small instances / fewer repeats (CI smoke mode)
  --seed N          instance seed (default 11)
  --out FILE        report path (default BENCH_solver.json)
  --threads LIST    comma-separated thread counts for the compiled sweep
                    (default 1,4)
  --orbits          also bench symmetry-orbit reduction suites
  --check-scaling   exit nonzero if the large suite's 4-thread sweep is
                    slower than 1-thread (only enforced when the host has
                    >= 4 cores and 1 and 4 are both in --threads)
  --help            print this help
";

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    threads: Vec<usize>,
    orbits: bool,
    check_scaling: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        seed: 11,
        out: "BENCH_solver.json".into(),
        threads: vec![1, 4],
        orbits: false,
        check_scaling: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--quick" => parsed.quick = true,
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                parsed.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--out" => parsed.out = args.next().ok_or("--out needs a value")?,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                parsed.threads = value
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .ok_or_else(|| format!("bad thread count `{t}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if parsed.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--orbits" => parsed.orbits = true,
            "--check-scaling" => parsed.check_scaling = true,
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    Ok(parsed)
}

/// Extrema of one baseline sweep (mirrors the solver's internal stats).
struct BaselineStats {
    opt_p: f64,
    best_eq_p: f64,
    worst_eq_p: f64,
    evaluated: u128,
}

/// The pre-compiled exhaustive sweep, verbatim: nested-profile odometer
/// with one action clone per tick, `social_cost` and `is_equilibrium`
/// recomputed from scratch on every profile.
fn baseline_sweep<M: BayesianModel>(model: &M) -> BaselineStats {
    let mut slots = Vec::new();
    let mut sets: Vec<Vec<M::Action>> = Vec::new();
    for i in 0..model.num_agents() {
        for tau in 0..model.type_count(i) {
            slots.push((i, tau));
            sets.push(model.candidate_actions(i, tau).expect("enumerable"));
        }
    }
    let sizes: Vec<usize> = sets.iter().map(Vec::len).collect();
    let size: u128 = sizes.iter().map(|&s| s as u128).product();
    let mut profile: Profile<M> = (0..model.num_agents()).map(|_| Vec::new()).collect();
    for (&(i, _), set) in slots.iter().zip(&sets) {
        profile[i].push(set[0].clone());
    }
    let mut digits = vec![0usize; sizes.len()];
    let mut stats = BaselineStats {
        opt_p: f64::INFINITY,
        best_eq_p: f64::INFINITY,
        worst_eq_p: f64::NEG_INFINITY,
        evaluated: 0,
    };
    loop {
        let k = model.social_cost(&profile);
        stats.evaluated += 1;
        stats.opt_p = stats.opt_p.min(k);
        if model.is_equilibrium(&profile) {
            stats.best_eq_p = stats.best_eq_p.min(k);
            stats.worst_eq_p = stats.worst_eq_p.max(k);
        }
        if stats.evaluated == size {
            return stats;
        }
        let mut j = digits.len();
        loop {
            assert!(j > 0, "odometer overflow");
            j -= 1;
            let (i, tau) = slots[j];
            digits[j] += 1;
            if digits[j] < sizes[j] {
                profile[i][tau] = sets[j][digits[j]].clone();
                break;
            }
            digits[j] = 0;
            profile[i][tau] = sets[j][0].clone();
        }
    }
}

/// Wall-clock of the best of `repeats` runs of `f` (min filters scheduler
/// noise), together with the last result.
fn time_best<T>(repeats: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("at least one repeat"), best)
}

struct Row {
    backend: String,
    profiles: u128,
    seconds: f64,
}

impl Row {
    fn profiles_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.profiles as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("backend".into(), Json::str(&self.backend)),
            ("profiles".into(), Json::num(self.profiles as f64)),
            ("seconds".into(), Json::num(self.seconds)),
            (
                "profiles_per_sec".into(),
                Json::num(self.profiles_per_sec()),
            ),
        ])
    }
}

/// Benches one model: baseline sweep, compiled sweeps at every requested
/// thread count, and the two sampling backends. Asserts bit-for-bit
/// agreement between the baseline and every compiled exhaustive sweep
/// (the work-stealing scheduler is deterministic by construction).
fn bench_model<M: BayesianModel>(
    model: &M,
    seed: u64,
    repeats: u32,
    threads: &[usize],
) -> (Vec<Row>, f64) {
    let (base, base_secs) = time_best(repeats, || baseline_sweep(model));
    let row = |backend: &str, report: &SolveReport, seconds: f64| Row {
        backend: backend.into(),
        profiles: report.profiles_evaluated,
        seconds,
    };
    let mut rows = vec![Row {
        backend: "baseline-exhaustive/1t".into(),
        profiles: base.evaluated,
        seconds: base_secs,
    }];
    for &t in threads {
        let solver = Solver::builder().threads(t).build();
        let (report, secs) = time_best(repeats, || solver.solve(model).expect("solvable"));
        assert_eq!(
            (
                base.opt_p.to_bits(),
                base.best_eq_p.to_bits(),
                base.worst_eq_p.to_bits()
            ),
            (
                report.measures.opt_p.to_bits(),
                report.measures.best_eq_p.to_bits(),
                report.measures.worst_eq_p.to_bits()
            ),
            "compiled sweep ({t}t) must agree with the baseline bit-for-bit"
        );
        assert_eq!(base.evaluated, report.profiles_evaluated);
        rows.push(row(&format!("compiled-exhaustive/{t}t"), &report, secs));
    }
    let brd = Solver::builder()
        .backend(Backend::BestResponseDynamics { restarts: 32, seed })
        .build();
    let (brd_report, brd_secs) = time_best(repeats, || brd.solve(model).expect("solvable"));
    let mc = Solver::builder()
        .backend(Backend::MonteCarloSampling { samples: 256, seed })
        .build();
    let (mc_report, mc_secs) = time_best(repeats, || mc.solve(model).expect("solvable"));
    rows.push(row(
        "best-response-dynamics/32-restarts",
        &brd_report,
        brd_secs,
    ));
    rows.push(row("monte-carlo/256-samples", &mc_report, mc_secs));
    let speedup = rows[1].profiles_per_sec() / rows[0].profiles_per_sec();
    (rows, speedup)
}

/// The large scaling instance: an asymmetric exact-potential matrix game
/// with 4^7 = 16384 profiles — at the solver's work-stealing threshold,
/// so every `threads > 1` row actually exercises the parallel scheduler.
fn large_scaling_game() -> BayesianGame {
    let matrix = MatrixFormGame::from_fn(7, &[4; 7], |i, a| {
        let own = ((i + 1) * (a[i] * a[i] + 3 * a[i] + 1)) % 13;
        let common = a
            .iter()
            .enumerate()
            .map(|(j, &x)| (x + 1) * (j + 3))
            .sum::<usize>()
            % 17;
        (own + common) as f64
    });
    BayesianGame::new(vec![1; 7], vec![(vec![0; 7], 1.0, matrix)]).expect("valid game")
}

/// A fully symmetric matrix game (`k` binary agents, multiset costs):
/// the orbit sweep collapses `2^k` profiles to `k+1` orbits.
fn symmetric_matrix_game(k: usize) -> BayesianGame {
    let matrix = MatrixFormGame::from_fn(k, &vec![2; k], |_, a| {
        let ones = a.iter().sum::<usize>() as f64;
        ones * ones + 3.0 * (k as f64 - ones)
    });
    BayesianGame::new(vec![1; k], vec![(vec![0; k], 1.0, matrix)]).expect("valid game")
}

/// Benches symmetry-orbit reduction on one model: full sweep vs
/// orbit-reduced sweep, asserting bitwise-identical measures, and
/// reporting the profile-evaluation reduction factor.
fn bench_orbit<M: BayesianModel>(model: &M, family: &str, repeats: u32) -> Json {
    let full = Solver::builder().symmetry(SymmetryMode::Off).build();
    let auto = Solver::builder().symmetry(SymmetryMode::Auto).build();
    let (full_report, full_secs) = time_best(repeats, || full.solve(model).expect("solvable"));
    let (auto_report, auto_secs) = time_best(repeats, || auto.solve(model).expect("solvable"));
    assert_eq!(
        (
            full_report.measures.opt_p.to_bits(),
            full_report.measures.best_eq_p.to_bits(),
            full_report.measures.worst_eq_p.to_bits()
        ),
        (
            auto_report.measures.opt_p.to_bits(),
            auto_report.measures.best_eq_p.to_bits(),
            auto_report.measures.worst_eq_p.to_bits()
        ),
        "{family}: orbit-reduced sweep must agree bit-for-bit"
    );
    let speedup = if auto_secs > 0.0 {
        full_secs / auto_secs
    } else {
        0.0
    };
    // `Auto` may decline the reduction when the up-front detection
    // checks cost more than the unreduced sweep (the k=14 matrix
    // family used to clock an 0.13x "speedup" before that gate). A
    // fallback run still pins the bitwise-agreement contract above;
    // the report records it so the JSON distinguishes "reduced" from
    // "judged not worth reducing".
    match auto_report.orbit {
        Some(stats) => {
            let reduction = stats.profiles_represented as f64 / stats.orbits_evaluated as f64;
            eprintln!(
                "  {family:<28} {:>8} profiles -> {:>6} orbits  ({reduction:.1}x fewer, {speedup:.1}x faster)",
                stats.profiles_represented, stats.orbits_evaluated
            );
            Json::Obj(vec![
                ("family".into(), Json::str(family)),
                ("fell_back".into(), Json::Bool(false)),
                (
                    "full_profiles".into(),
                    Json::from_u128(stats.profiles_represented),
                ),
                ("orbits".into(), Json::from_u128(stats.orbits_evaluated)),
                ("group_order".into(), Json::from_u128(stats.group_order)),
                ("reduction".into(), Json::num(reduction)),
                ("seconds_full".into(), Json::num(full_secs)),
                ("seconds_orbit".into(), Json::num(auto_secs)),
                ("orbit_speedup".into(), Json::num(speedup)),
            ])
        }
        None => {
            let profiles = full_report.profiles_evaluated;
            eprintln!(
                "  {family:<28} {profiles:>8} profiles -> full sweep (detection judged too \
                 expensive, {speedup:.1}x vs Off)"
            );
            Json::Obj(vec![
                ("family".into(), Json::str(family)),
                ("fell_back".into(), Json::Bool(true)),
                ("full_profiles".into(), Json::from_u128(profiles)),
                ("orbits".into(), Json::from_u128(profiles)),
                ("reduction".into(), Json::num(1.0)),
                ("seconds_full".into(), Json::num(full_secs)),
                ("seconds_orbit".into(), Json::num(auto_secs)),
                ("orbit_speedup".into(), Json::num(speedup)),
            ])
        }
    }
}

fn suite_json(representation: &str, instance: &str, rows: &[Row], speedup: f64) -> Json {
    Json::Obj(vec![
        ("representation".into(), Json::str(representation)),
        ("instance".into(), Json::str(instance)),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(Row::to_json).collect()),
        ),
        ("compiled_over_baseline_1t".into(), Json::num(speedup)),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_solver_sweep: {msg}");
            exit(2);
        }
    };
    let repeats = if args.quick { 2 } else { 5 };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let print_rows = |rows: &[Row]| {
        for r in rows {
            eprintln!(
                "  {:<36} {:>10} profiles  {:>9.0} profiles/s",
                r.backend,
                r.profiles,
                r.profiles_per_sec()
            );
        }
    };

    // Matrix form: 3 agents × 2 types, so the sweep space (4^6 = 4096)
    // dwarfs each state's joint table (4^3 = 64).
    let (matrix_types, matrix_actions, matrix_support) = if args.quick {
        (vec![2usize, 2], vec![3usize, 3], 3usize)
    } else {
        (vec![2usize, 2, 2], vec![4usize, 4, 4], 4usize)
    };
    let (matrix_game, _) =
        random_bayesian_potential_game(&matrix_types, &matrix_actions, matrix_support, args.seed);
    let matrix_desc = format!(
        "random potential game, types {matrix_types:?}, actions {matrix_actions:?}, support {matrix_support}"
    );
    eprintln!("bench_solver_sweep: matrix — {matrix_desc}");
    let (matrix_rows, matrix_speedup) =
        bench_model(&matrix_game, args.seed, repeats, &args.threads);
    print_rows(&matrix_rows);

    // NCS form: a random directed network, 2 agents × 2 types.
    let (ncs_nodes, ncs_p) = if args.quick { (5, 0.35) } else { (6, 0.4) };
    let ncs_game = random_bayesian_ncs(Direction::Directed, ncs_nodes, ncs_p, 2, 2, args.seed)
        .expect("connected generator");
    let ncs_desc = format!(
        "random Bayesian NCS, {ncs_nodes} nodes, edge prob {ncs_p}, 2 agents x 2 types, space {}",
        ncs_game.strategy_space_size().expect("sized")
    );
    eprintln!("bench_solver_sweep: ncs — {ncs_desc}");
    let (ncs_rows, ncs_speedup) = bench_model(&ncs_game, args.seed, repeats, &args.threads);
    print_rows(&ncs_rows);

    // The large suite: 4^7 = 16384 profiles, at the work-stealing
    // threshold — the instance thread-scaling claims are judged on.
    let large_game = large_scaling_game();
    let large_desc = "asymmetric exact-potential matrix game, 7 agents x 4 actions, 16384 profiles";
    eprintln!("bench_solver_sweep: matrix-large — {large_desc}");
    let (large_rows, large_speedup) = bench_model(&large_game, args.seed, repeats, &args.threads);
    print_rows(&large_rows);

    let suites = vec![
        suite_json("matrix", &matrix_desc, &matrix_rows, matrix_speedup),
        suite_json("ncs", &ncs_desc, &ncs_rows, ncs_speedup),
        suite_json("matrix-large", large_desc, &large_rows, large_speedup),
    ];

    let orbit_suites = if args.orbits {
        eprintln!("bench_solver_sweep: symmetry-orbit reduction");
        let k = if args.quick { 8 } else { 12 };
        let gworst_invk = GWorstGame::new(k, GWorstVariant::InvK).expect("valid k");
        let gworst_half = GWorstGame::new(k, GWorstVariant::Half).expect("valid k");
        let sym_k = if args.quick { 10 } else { 14 };
        let symmetric = symmetric_matrix_game(sym_k);
        Json::Arr(vec![
            bench_orbit(gworst_invk.game(), &format!("gworst-invk/k={k}"), repeats),
            bench_orbit(gworst_half.game(), &format!("gworst-half/k={k}"), repeats),
            bench_orbit(&symmetric, &format!("symmetric-matrix/k={sym_k}"), repeats),
        ])
    } else {
        Json::Arr(Vec::new())
    };

    let report = Json::Obj(vec![
        (
            "mode".into(),
            Json::str(if args.quick { "quick" } else { "full" }),
        ),
        ("seed".into(), Json::from_u64(args.seed)),
        (
            "host_parallelism".into(),
            Json::from_u64(host_parallelism as u64),
        ),
        (
            "thread_counts".into(),
            Json::Arr(
                args.threads
                    .iter()
                    .map(|&t| Json::from_u64(t as u64))
                    .collect(),
            ),
        ),
        ("suites".into(), Json::Arr(suites)),
        ("orbit_suites".into(), orbit_suites),
    ]);
    let mut file = match std::fs::File::create(&args.out) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("bench_solver_sweep: cannot write {}: {e}", args.out);
            exit(1);
        }
    };
    file.write_all(report.to_string().as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .expect("report write");
    println!(
        "bench_solver_sweep: matrix {matrix_speedup:.1}x | ncs {ncs_speedup:.1}x | large {large_speedup:.1}x vs baseline -> {}",
        args.out
    );

    if args.check_scaling {
        let pps = |rows: &[Row], name: &str| {
            rows.iter()
                .find(|r| r.backend == name)
                .map(Row::profiles_per_sec)
        };
        match (
            pps(&large_rows, "compiled-exhaustive/1t"),
            pps(&large_rows, "compiled-exhaustive/4t"),
        ) {
            (Some(one), Some(four)) if host_parallelism >= 4 => {
                if four < one {
                    eprintln!(
                        "bench_solver_sweep: SCALING REGRESSION — large suite 4t \
                         ({four:.0} profiles/s) is slower than 1t ({one:.0} profiles/s) \
                         on a {host_parallelism}-core host"
                    );
                    exit(1);
                }
                eprintln!(
                    "bench_solver_sweep: scaling check passed (4t {four:.0} >= 1t {one:.0} profiles/s)"
                );
            }
            _ => eprintln!(
                "bench_solver_sweep: scaling check skipped \
                 (host_parallelism={host_parallelism}, needs >= 4 cores and threads 1 and 4)"
            ),
        }
    }
}
