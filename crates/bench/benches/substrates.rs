//! Performance benches for the substrates: shortest paths, Steiner trees,
//! affine planes, FRT embeddings, the simplex solver, and online Steiner.

use bi_geometry::AffinePlane;
use bi_metric::{frt, MetricSpace};
use bi_online::steiner::OnlineSteiner;
use bi_zerosum::matrix_game::MatrixGame;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    for n in [50usize, 200] {
        let g = bi_graph::generators::gnp_connected(
            bi_graph::Direction::Undirected,
            n,
            0.1,
            (0.5, 2.0),
            1,
        );
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| {
                bi_graph::dijkstra(&g, bi_graph::NodeId::new(0), |e| g.edge(e).cost())
                    .distance(bi_graph::NodeId::new(n - 1))
            });
        });
    }

    group.bench_function("steiner_exact_8_terminals", |b| {
        let g = bi_graph::generators::gnp_connected(
            bi_graph::Direction::Undirected,
            30,
            0.15,
            (0.5, 2.0),
            2,
        );
        let terms: Vec<_> = (0..8).map(|i| bi_graph::NodeId::new(i * 3)).collect();
        b.iter(|| bi_graph::steiner::steiner_tree(&g, &terms).expect("connected"));
    });

    group.bench_function("affine_plane_order_9", |b| {
        b.iter(|| AffinePlane::new(9).expect("prime power"));
    });

    group.bench_function("frt_sample_grid_6x6", |b| {
        let g = bi_graph::generators::grid_graph(6, 6, 1.0);
        let metric = MetricSpace::from_graph(&g).expect("connected");
        let mut rng = bi_util::rng::seeded(3);
        b.iter(|| frt::sample(&metric, &mut rng));
    });

    group.bench_function("simplex_20x20_game", |b| {
        let mut rng = bi_util::rng::seeded(4);
        let payoff: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..20).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let game = MatrixGame::new(payoff).expect("finite");
        b.iter(|| game.solve().expect("LP"));
    });

    group.bench_function("online_greedy_diamond_4", |b| {
        let d = bi_online::diamond::DiamondGraph::new(4);
        let adv = bi_online::adversary::DiamondAdversary::new(&d);
        let seq = adv.sample(&mut bi_util::rng::seeded(5));
        b.iter(|| OnlineSteiner::greedy(d.graph(), d.source(), &seq.requests));
    });

    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
