//! E3/E9/E15 — Lemma 3.8: `best-eqP ≤ H(k)·optP`, and the universal
//! best-equilibrium row it implies (`best-eqP/best-eqC ≥ Ω(1/log k)`).

use bi_constructions::potential_bound::potential_minimizer;
use bi_constructions::universal::random_bayesian_ncs;
use bi_graph::Direction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    // Measured slack of the Lemma 3.8 bound over random games.
    let mut worst_slack = 0.0f64;
    for seed in 0..10 {
        let game = random_bayesian_ncs(Direction::Undirected, 5, 0.3, 2, 2, seed).expect("game");
        let (_, bound) = potential_minimizer(&game).expect("enumerable");
        assert!(bound.holds(), "Lemma 3.8 must hold");
        worst_slack = worst_slack.max(bound.minimizer_cost / bound.bound);
    }
    eprintln!(
        "[potential_bound] max over 10 random games of best-eq-upper/(H(k)·optP) = {worst_slack:.4} (must be ≤ 1)"
    );

    let mut group = c.benchmark_group("potential_bound");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("potential_minimizer", n), &n, |b, &n| {
            let game =
                random_bayesian_ncs(Direction::Directed, n, 0.3, 2, 2, n as u64).expect("game");
            b.iter(|| potential_minimizer(&game).expect("enumerable"));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
