//! E5/E13 — Lemma 3.3 / Remark 1: the `G_k` game (directed existential
//! `O(1/log k)`; "ignorance is bliss").
//!
//! Prints the measured `worst-eqP/best-eqC` series and times the exact
//! measure computation.

use bi_bench::{gk_series, Point};
use bi_constructions::pos_game::GkGame;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let series = gk_series(&[4, 6, 8, 12, 16, 24, 32, 48, 64], 9);
    eprintln!("[ignorance_bliss] worst-eqP/best-eqC by k (exact ≤ 9, analytic beyond):");
    for Point { size, value } in &series {
        eprintln!("  k = {size:>3}: {value:.4}");
    }
    let normalized: Vec<f64> = series
        .iter()
        .map(|p| p.value * bi_util::harmonic(p.size as usize - 1))
        .collect();
    eprintln!(
        "[ignorance_bliss] ratio × H(k−1) range: [{:.3}, {:.3}] (flat → 1/log k shape)",
        normalized.iter().copied().fold(f64::INFINITY, f64::min),
        normalized.iter().copied().fold(0.0, f64::max)
    );

    let mut group = c.benchmark_group("ignorance_bliss");
    group.sample_size(10);
    for k in [5usize, 7, 9] {
        group.bench_with_input(BenchmarkId::new("exact_measures", k), &k, |b, &k| {
            let game = GkGame::new(k).expect("valid k");
            b.iter(|| game.exact_measures().expect("solvable"));
        });
    }
    group.bench_function("hub_equilibrium_check_k32", |b| {
        let game = GkGame::new(32).expect("valid k");
        let hub = game.hub_strategy();
        b.iter(|| game.game().is_bayesian_equilibrium(&hub));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
