//! E2/E4 — Lemma 3.2: the affine-plane game (directed existential Ω(k)).
//!
//! Prints the measured `optP/worst-eqC` series and times the construction
//! plus the exact expected-cost evaluation.

use bi_bench::{affine_series, growth_exponent};
use bi_constructions::affine_game::AffinePlaneGame;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let series = affine_series(&[2, 3, 4, 5, 7, 8, 9, 11, 13]);
    eprintln!("[affine_plane] optP/worst-eqC by k:");
    for p in &series {
        eprintln!("  k = {:>3}: {:.4}", p.size, p.value);
    }
    eprintln!(
        "[affine_plane] growth exponent {:.3} (paper: 1)",
        growth_exponent(&series)
    );

    let mut group = c.benchmark_group("affine_plane");
    for m in [3u64, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::new("construct", m), &m, |b, &m| {
            b.iter(|| AffinePlaneGame::new(m).expect("prime power"));
        });
        let game = AffinePlaneGame::new(m).expect("prime power");
        let strategies = game.first_line_strategies();
        group.bench_with_input(BenchmarkId::new("expected_cost", m), &m, |b, _| {
            b.iter(|| game.expected_social_cost(&strategies).expect("valid"));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
