//! E7 — Lemma 3.4: the FRT strategy (undirected universal O(log n) on
//! `optP/optC`).

use bi_bench::{frt_series, growth_exponent, log_fit_slope};
use bi_constructions::frt_strategy::FrtRouting;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let series = frt_series(&[3, 4, 5, 6], 42);
    eprintln!("[frt_upper] FRT strategy cost / optC on side×side grids:");
    for p in &series {
        eprintln!("  n = {:>3}: {:.4}", p.size, p.value);
    }
    eprintln!(
        "[frt_upper] growth exponent {:.3} (sublinear); per-ln(n) slope {:.3}",
        growth_exponent(&series),
        log_fit_slope(&series)
    );

    let mut group = c.benchmark_group("frt_upper");
    group.sample_size(10);
    for side in [4usize, 6, 8] {
        group.bench_with_input(
            BenchmarkId::new("build_routing", side),
            &side,
            |b, &side| {
                let graph = bi_graph::generators::grid_graph(side, side, 1.0);
                b.iter(|| FrtRouting::build(&graph, 3, 7).expect("grid metric"));
            },
        );
    }
    group.bench_function("route_query_6x6", |b| {
        let graph = bi_graph::generators::grid_graph(6, 6, 1.0);
        let routing = FrtRouting::build(&graph, 3, 7).expect("grid metric");
        b.iter(|| routing.route(bi_graph::NodeId::new(0), bi_graph::NodeId::new(35)));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
