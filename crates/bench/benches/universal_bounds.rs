//! E1 — the universal bounds: Lemma 3.1 (`worst-eqP ≤ k·optC`) and
//! Observation 2.2 (`optC ≤ optP ≤ best-eqP ≤ worst-eqP`), swept over
//! random Bayesian NCS games in both graph classes.

use bi_bench::universal_sweep;
use bi_constructions::universal::random_bayesian_ncs;
use bi_graph::Direction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (dir31, dir_chain) = universal_sweep(Direction::Directed, 10);
    let (und31, und_chain) = universal_sweep(Direction::Undirected, 10);
    eprintln!(
        "[universal_bounds] directed:   max worst-eqP/(k·optC) = {dir31:.4}, max optC−optP = {dir_chain:.2e}"
    );
    eprintln!(
        "[universal_bounds] undirected: max worst-eqP/(k·optC) = {und31:.4}, max optC−optP = {und_chain:.2e}"
    );
    assert!(dir31 <= 1.0 + 1e-9 && und31 <= 1.0 + 1e-9);

    let mut group = c.benchmark_group("universal_bounds");
    group.sample_size(10);
    for (label, direction) in [
        ("directed", Direction::Directed),
        ("undirected", Direction::Undirected),
    ] {
        group.bench_with_input(
            BenchmarkId::new("measures_random_game", label),
            &direction,
            |b, &direction| {
                let game = random_bayesian_ncs(direction, 5, 0.3, 2, 2, 3).expect("game");
                b.iter(|| game.measures().expect("solvable"));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
