//! E16 — Section 4: `R(φ) = R̃(φ)` (Proposition 4.2) and the Lemma 4.1
//! public-randomness distribution, computed by exact zero-sum solving.

use bi_bench::section4_measurements;
use bi_core::random_games::random_bayesian_potential_game;
use bi_core::randomness::CostTuple;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (r_tilde, r_star, gap) = section4_measurements(5, 200, 11);
    eprintln!(
        "[public_randomness] G_5 tuple: R̃ = {r_tilde:.6}, R (bisection) = {r_star:.6}, \
         Prop 4.2 gap = {:.2e}, Lemma 4.1 worst guarantee slack = {gap:.2e}",
        (r_tilde - r_star).abs()
    );

    let mut group = c.benchmark_group("public_randomness");
    group.sample_size(10);
    for states in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("solve_r_tilde", states),
            &states,
            |b, &s| {
                let (game, _) = random_bayesian_potential_game(&[1, s], &[2, 2], s, 7);
                let tuple = CostTuple::from_bayesian(&game).expect("small game");
                b.iter(|| tuple.solve().expect("LP"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("r_star_bisection", states),
            &states,
            |b, &s| {
                let (game, _) = random_bayesian_potential_game(&[1, s], &[2, 2], s, 7);
                let tuple = CostTuple::from_bayesian(&game).expect("small game");
                b.iter(|| tuple.r_star(1e-6).expect("bisection"));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
