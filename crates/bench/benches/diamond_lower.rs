//! E8/E10 — Lemma 3.5: the diamond game (undirected existential Ω(log n)
//! on `optP/optC`, with `k = Θ(n)`).

use bi_bench::{diamond_exact_points, diamond_series, log_fit_slope};
use bi_constructions::diamond_game::DiamondGame;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let series = diamond_series(&[1, 2, 3, 4, 5], 48, 7);
    eprintln!("[diamond_lower] E[greedy]/optC by diamond size (optC = 1):");
    for p in &series {
        eprintln!("  n = {:>5}: {:.4}", p.size, p.value);
    }
    eprintln!(
        "[diamond_lower] per-ln(n) slope {:.3} (positive → Ω(log n))",
        log_fit_slope(&series)
    );
    let exact = diamond_exact_points();
    eprintln!(
        "[diamond_lower] exact optP/optC = {:.4} (n = {}); path-system bound {:.4} (n = {})",
        exact[0].value, exact[0].size, exact[1].value, exact[1].size
    );

    let mut group = c.benchmark_group("diamond_lower");
    group.sample_size(10);
    for j in [2u32, 3, 4] {
        group.bench_with_input(BenchmarkId::new("expected_greedy", j), &j, |b, &j| {
            let game = DiamondGame::new(j);
            b.iter(|| game.expected_greedy_cost(16, 3));
        });
    }
    group.bench_function("exact_measures_depth1", |b| {
        let game = DiamondGame::new(1);
        b.iter(|| game.exact_measures().expect("enumerable"));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
