//! E14 — the general Bayesian-game framework: Observation 2.1 (expected
//! potentials) and 2.2 (the measure chain) on random matrix-form games.

use bi_core::potential::{expected_potential, potential_minimizer, verify_exact_potential};
use bi_core::random_games::random_bayesian_potential_game;
use bi_core::solve::{Backend, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    // Observation 2.1/2.2 sweep.
    let mut eq_minimizers = 0usize;
    for seed in 0..10 {
        let (game, potentials) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed);
        for (idx, potential) in potentials.iter().enumerate() {
            let (_, _, state_game) = game.state(idx);
            verify_exact_potential(state_game, potential).expect("potential");
        }
        let (s, _) = potential_minimizer(&game, &potentials).expect("enumerable");
        if game.is_bayesian_equilibrium(&s) {
            eq_minimizers += 1;
        }
        game.measures()
            .expect("solvable")
            .verify_chain()
            .expect("Obs 2.2");
        let _ = expected_potential(&game, &potentials, &s);
    }
    eprintln!(
        "[framework] potential minimizers that are Bayesian equilibria: {eq_minimizers}/10 (Obs 2.1 demands 10)"
    );
    assert_eq!(eq_minimizers, 10);

    let mut group = c.benchmark_group("framework");
    group.sample_size(10);
    for support in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("bayesian_measures", support),
            &support,
            |b, &s| {
                let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], s, 5);
                b.iter(|| game.measures().expect("solvable"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("potential_minimizer", support),
            &support,
            |b, &s| {
                let (game, potentials) = random_bayesian_potential_game(&[2, 2], &[2, 2], s, 5);
                b.iter(|| potential_minimizer(&game, &potentials).expect("enumerable"));
            },
        );
    }
    group.finish();

    // The unified engine: backend and thread-count cost profile on one
    // mid-size random Bayesian potential game.
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 4, 5);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("exhaustive_threads", threads),
            &threads,
            |b, &threads| {
                let solver = Solver::builder().threads(threads).build();
                b.iter(|| solver.solve(&game).expect("solvable"));
            },
        );
    }
    group.bench_function("monte_carlo_256", |b| {
        let solver = Solver::builder()
            .backend(Backend::MonteCarloSampling {
                samples: 256,
                seed: 5,
            })
            .build();
        b.iter(|| solver.solve(&game).expect("solvable"));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
