//! E6/E11/E12 — Lemmas 3.6/3.7: the `G_worst` games (worst-equilibrium
//! row of Table 1: existential Ω(k) and O(1/k) on O(1) vertices).

use bi_bench::{growth_exponent, gworst_series};
use bi_constructions::gworst::{GWorstGame, GWorstVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let up = gworst_series(&[4, 6, 8, 12, 16, 24], GWorstVariant::InvK, 9);
    eprintln!("[gworst] worst-eqP/worst-eqC, p = 1/k (Ω(k) direction):");
    for p in &up {
        eprintln!("  k = {:>3}: {:.4}", p.size, p.value);
    }
    eprintln!(
        "[gworst] growth exponent {:.3} (paper: 1)",
        growth_exponent(&up)
    );

    let down = gworst_series(&[4, 6, 8, 12, 16, 24], GWorstVariant::Half, 9);
    eprintln!("[gworst] worst-eqP/worst-eqC, p = 1/2 (O(1/k) direction):");
    for p in &down {
        eprintln!("  k = {:>3}: {:.4}", p.size, p.value);
    }
    eprintln!(
        "[gworst] growth exponent {:.3} (paper: −1)",
        growth_exponent(&down)
    );

    let mut group = c.benchmark_group("gworst");
    group.sample_size(10);
    for k in [6usize, 9] {
        group.bench_with_input(BenchmarkId::new("exact_measures_invk", k), &k, |b, &k| {
            let game = GWorstGame::new(k, GWorstVariant::InvK).expect("valid k");
            b.iter(|| game.exact_measures().expect("solvable"));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
