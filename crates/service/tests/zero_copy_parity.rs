//! The zero-copy acceptance parity suite: for every game in the codec
//! fixture corpus (plus a seeded workload sweep), the raw-byte fast path
//! and the parse→canonicalize path must produce **byte-identical**
//! responses — and both must match the in-process engine exactly.
//!
//! This is what makes the hot path safe: `canon_check` accuracy is an
//! efficiency concern only, because the raw index is keyed by exact body
//! bytes. These tests pin the end-to-end consequence.

use bi_core::solve::{Solver, SolverConfig};
use bi_core::BayesianGame;
use bi_ncs::BayesianNcsGame;
use bi_obs::TraceCtx;
use bi_service::cache::CacheConfig;
use bi_service::workload::mixed_workload;
use bi_service::{FastOutcome, GameSpec, SolveRequest, SolveService};
use bi_util::{Decode, Encode, Json};

/// Every game the codec fixture corpus contains, decoded.
fn fixture_games() -> Vec<GameSpec> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    let read = |name: &str| std::fs::read_to_string(dir.join(name)).expect("fixture readable");
    vec![
        GameSpec::Matrix(
            BayesianGame::decode_str(&read("bayesian_game.json")).expect("matrix fixture decodes"),
        ),
        GameSpec::Ncs(
            BayesianNcsGame::decode_str(&read("ncs_game.json")).expect("ncs fixture decodes"),
        ),
    ]
}

/// The corpus: both fixtures plus a seeded mix of generated games.
fn corpus() -> Vec<GameSpec> {
    let mut games = fixture_games();
    games.extend(mixed_workload(90, 6));
    games
}

/// Non-canonical spellings of `body` that decode to the same request.
fn respellings(body: &[u8]) -> Vec<Vec<u8>> {
    let text = std::str::from_utf8(body).expect("canonical JSON is UTF-8");
    vec![
        // Leading whitespace defeats the canonical scanner outright.
        format!(" {text}").into_bytes(),
        format!("{text}\n").into_bytes(),
        // Whitespace after the first `{` keeps the body valid JSON but
        // non-canonical.
        text.replacen('{', "{ ", 1).into_bytes(),
    ]
}

fn served_bytes(service: &SolveService, body: &[u8]) -> (Vec<u8>, bool) {
    match service
        .try_serve_fast(body, TraceCtx::NONE)
        .expect("body decodes")
    {
        FastOutcome::Hit(served) => (served.body.to_vec(), served.zero_copy),
        FastOutcome::Miss(prepared) => (
            service
                .complete_solve(*prepared)
                .expect("solvable corpus game")
                .body
                .to_vec(),
            false,
        ),
    }
}

#[test]
fn zero_copy_and_parsed_paths_answer_byte_identically() {
    let service = SolveService::new(CacheConfig::default());
    for (i, game) in corpus().iter().enumerate() {
        let request = SolveRequest {
            game: game.clone(),
            config: SolverConfig::default(),
        };
        let body = request.canonical_bytes();
        // Cold: decode path, engine runs.
        let (cold, cold_zero) = served_bytes(&service, &body);
        assert!(!cold_zero, "game {i}: first sighting cannot be zero-copy");
        // Warm, byte-identical body: the zero-copy path.
        let (zero_copy, was_zero) = served_bytes(&service, &body);
        assert!(was_zero, "game {i}: resubmission must ride the raw index");
        // Warm, every non-canonical respelling: the parse path.
        for (j, respelled) in respellings(&body).iter().enumerate() {
            let (parsed, parsed_zero) = served_bytes(&service, respelled);
            assert!(
                !parsed_zero,
                "game {i} respelling {j}: non-canonical bodies must be parsed"
            );
            assert_eq!(
                parsed, zero_copy,
                "game {i} respelling {j}: parsed and zero-copy responses must be byte-identical"
            );
        }
        assert_eq!(
            cold, zero_copy,
            "game {i}: cold and hot responses must be byte-identical"
        );
        // And all of it equals the in-process engine, byte for byte.
        let direct = match game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        assert_eq!(
            zero_copy,
            direct.canonical_bytes(),
            "game {i}: service bytes must match the engine"
        );
    }
}

#[test]
fn canonical_bodies_pass_the_scanner_and_respellings_fail_it() {
    // The corpus-wide sanity check on the scanner itself: every
    // canonical printing is accepted, every respelling rejected — so the
    // fast path actually engages on real traffic shapes.
    for game in corpus() {
        let body = SolveRequest {
            game,
            config: SolverConfig::default(),
        }
        .canonical_bytes();
        assert!(
            bi_util::json::canon_check(&body),
            "canonical printing must pass the scanner"
        );
        for respelled in respellings(&body) {
            assert!(
                !bi_util::json::canon_check(&respelled),
                "respelling must fail the scanner"
            );
        }
    }
}

#[test]
fn near_aliases_never_collide_in_the_raw_index() {
    // Two requests that differ only in the thread count share a primary
    // cache entry but have different raw bytes — the raw index must keep
    // them distinct while both answer with the same report bytes.
    let service = SolveService::new(CacheConfig::default());
    let game = mixed_workload(91, 1).remove(0);
    let one = SolveRequest {
        game: game.clone(),
        config: SolverConfig {
            threads: 1,
            ..SolverConfig::default()
        },
    };
    let four = SolveRequest {
        game,
        config: SolverConfig {
            threads: 4,
            ..SolverConfig::default()
        },
    };
    let body_one = one.canonical_bytes();
    let body_four = four.canonical_bytes();
    assert_ne!(body_one, body_four);
    let (cold, _) = served_bytes(&service, &body_one);
    // The threads=4 spelling decodes to the same content address: a
    // parsed-path hit with identical bytes, never a raw-index collision.
    let (other, zero) = served_bytes(&service, &body_four);
    assert!(!zero, "different raw bytes must not alias in the raw index");
    assert_eq!(cold, other);
    // Resubmitting each spelling is now zero-copy for both.
    assert!(served_bytes(&service, &body_one).1);
    assert!(served_bytes(&service, &body_four).1);
    // And what came back is a well-formed report document.
    assert!(Json::parse(std::str::from_utf8(&cold).unwrap()).is_ok());
}
