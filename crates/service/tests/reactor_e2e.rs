//! Socket-level edge-case tests for the reactor: partial I/O in every
//! direction against a live ephemeral-port server.
//!
//! The blocking server never saw these shapes — a `BufReader` hid them.
//! The reactor's per-connection state machine has to handle each one
//! explicitly: heads arriving a byte at a time (slow loris), bodies
//! split across reads, several pipelined requests in one segment,
//! clients vanishing mid-solve, and oversized declared bodies.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bi_core::solve::SolverConfig;
use bi_service::http::{read_response, write_request};
use bi_service::workload::matrix_game;
use bi_service::{Server, ServerConfig, ServerHandle, SolveRequest};
use bi_util::Encode;

fn start_server() -> ServerHandle {
    let server = Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    server.start().expect("start server")
}

fn solve_wire(seed: u64) -> Vec<u8> {
    let body = SolveRequest {
        game: matrix_game(seed),
        config: SolverConfig::default(),
    }
    .canonical_bytes();
    let mut wire = Vec::new();
    write_request(&mut wire, "POST", "/solve", &body, true).expect("serialize");
    wire
}

#[test]
fn slow_loris_heads_are_parsed_across_reads() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let wire = b"GET /healthz HTTP/1.1\r\nHost: bi-serve\r\nContent-Length: 0\r\n\r\n";
    // One byte per segment: the head completes on the final byte only.
    for byte in wire.iter() {
        writer.write_all(std::slice::from_ref(byte)).expect("write");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let response = read_response(&mut reader).expect("read");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, br#"{"status":"ok"}"#);
    handle.stop();
}

#[test]
fn split_bodies_are_reassembled() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let wire = solve_wire(71);
    // Deliver the request in three far-apart slices straddling the
    // head/body boundary.
    let cuts = [wire.len() / 3, 2 * wire.len() / 3, wire.len()];
    let mut sent = 0;
    for cut in cuts {
        writer.write_all(&wire[sent..cut]).expect("write");
        writer.flush().expect("flush");
        sent = cut;
        std::thread::sleep(Duration::from_millis(20));
    }
    let response = read_response(&mut reader).expect("read");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-cache"), Some("miss"));
    handle.stop();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // Three requests in a single segment: a cold solve, its resubmission,
    // and a healthz — answers must come back in exactly this order.
    let mut wire = solve_wire(72);
    wire.extend_from_slice(&solve_wire(72));
    write_request(&mut wire, "GET", "/healthz", b"", true).expect("serialize");
    writer.write_all(&wire).expect("write");
    writer.flush().expect("flush");
    let first = read_response(&mut reader).expect("first");
    let second = read_response(&mut reader).expect("second");
    let third = read_response(&mut reader).expect("third");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(second.status, 200);
    assert_eq!(
        second.header("x-cache"),
        Some("hit"),
        "the pipelined resubmission must hit the cache"
    );
    assert_eq!(second.body, first.body);
    assert_eq!(third.body, br#"{"status":"ok"}"#);
    handle.stop();
}

#[test]
fn disconnecting_mid_solve_does_not_poison_the_server() {
    let handle = start_server();
    // Fire a cold solve and hang up before the response exists; the
    // completion for the dead connection must be discarded.
    {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(&solve_wire(73))
            .expect("write the doomed request");
        writer.flush().expect("flush");
        // Both halves drop here: RST/FIN races the solve.
    }
    // The server keeps serving, and the orphaned solve eventually lands
    // in the cache — a fresh request for the same game is a hit.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer.write_all(&solve_wire(73)).expect("write");
        writer.flush().expect("flush");
        let response = read_response(&mut reader).expect("read");
        assert_eq!(response.status, 200);
        if response.header("x-cache") == Some("hit") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the orphaned solve never reached the cache"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.stop();
}

#[test]
fn oversized_declared_bodies_are_rejected_without_buffering() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // 128 MiB declared: over MAX_BODY. The head alone must trigger the
    // rejection — no body bytes are ever sent.
    let head = format!(
        "POST /solve HTTP/1.1\r\nHost: bi-serve\r\nContent-Length: {}\r\n\r\n",
        128 * 1024 * 1024
    );
    writer.write_all(head.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let response = read_response(&mut reader).expect("read");
    assert_eq!(response.status, 413);
    assert_eq!(response.header("connection"), Some("close"));
    // The server closes after the protocol error.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty());
    handle.stop();
}

#[test]
fn unterminated_header_floods_are_capped_with_431() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Flood: ")
        .expect("write");
    // Stream header bytes far past the 64 KiB cap, never terminating.
    let filler = vec![b'a'; 8 * 1024];
    for _ in 0..12 {
        if writer.write_all(&filler).is_err() {
            break; // the server already hung up on us — also acceptable
        }
    }
    let _ = writer.flush();
    let response = read_response(&mut reader).expect("read");
    assert_eq!(response.status, 431);
    handle.stop();
}

#[test]
fn idle_connections_are_swept_after_the_timeout() {
    let server = Server::bind(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.start().expect("start");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, "GET", "/healthz", b"", true).expect("write");
    assert_eq!(read_response(&mut reader).expect("read").status, 200);
    // Go quiet past the timeout: the server must close the connection.
    let mut rest = Vec::new();
    reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    reader.read_to_end(&mut rest).expect("server-side close");
    assert!(rest.is_empty());
    handle.stop();
}

#[test]
fn reactor_metrics_observe_connections_and_fast_paths() {
    let handle = start_server();
    let addr = handle.addr();
    let wire = solve_wire(74);
    for _ in 0..3 {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer.write_all(&wire).expect("write");
        writer.flush().expect("flush");
        assert_eq!(read_response(&mut reader).expect("read").status, 200);
    }
    let doc = handle.service().metrics_json();
    let reactor = doc.get("reactor").expect("reactor section");
    // Cold, then two byte-identical resubmissions off the raw index.
    assert_eq!(reactor.get("zero_copy_hits").unwrap().as_u64(), Some(2));
    assert!(reactor.get("wakeups").unwrap().as_u64().unwrap() > 0);
    assert_eq!(doc.get("connections_total").unwrap().as_u64(), Some(3));
    // All three connections closed again: the gauge is back to zero (the
    // reactor may still be tearing the last one down — allow a beat).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let open = handle
            .service()
            .metrics_json()
            .get("reactor")
            .unwrap()
            .get("open_connections")
            .unwrap()
            .as_u64();
        if open == Some(0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "open_connections gauge stuck at {open:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
}
