//! End-to-end tests: a real [`Server`] on an ephemeral port, driven over
//! TCP with the crate's own HTTP client helpers.
//!
//! These pin the ISSUE-4 acceptance behaviors: `POST /solve` answers
//! with `SolveReport` JSON byte-identical to the in-process engine for
//! both game representations, resubmission is a cache hit visible in
//! `GET /metrics`, and batches work — plus the reactor-era contracts:
//! the bounded pending-solve queue answers `429` + `Retry-After` under
//! overflow, the connection cap answers `503`, and cache hits are served
//! on the reactor thread even while every solver is busy.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bi_core::solve::{Solver, SolverConfig};
use bi_service::http::{read_response, write_request, write_request_with, ClientResponse};
use bi_service::workload::{matrix_game, mixed_workload, ncs_game};
use bi_service::{
    BatchRequest, GameSpec, Server, ServerConfig, ServerHandle, SolveRequest, SpanEvent, Stage,
};
use bi_util::{Encode, Json};

fn start_server() -> ServerHandle {
    let server = Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    server.start().expect("start server")
}

/// One request over a fresh connection.
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, method, path, body, false).expect("write request");
    read_response(&mut reader).expect("read response")
}

fn solve_body(game: &GameSpec) -> Vec<u8> {
    SolveRequest {
        game: game.clone(),
        config: SolverConfig::default(),
    }
    .canonical_bytes()
}

#[test]
fn solve_answers_match_the_in_process_engine_for_both_representations() {
    let handle = start_server();
    for game in [matrix_game(11), ncs_game(12)] {
        let response = call(handle.addr(), "POST", "/solve", &solve_body(&game));
        assert_eq!(response.status, 200);
        assert_eq!(response.header("x-cache"), Some("miss"));
        let direct = match &game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        assert_eq!(
            response.body,
            direct.canonical_bytes(),
            "wire report must be byte-identical to the in-process report"
        );
    }
    handle.stop();
}

#[test]
fn resubmission_is_a_cache_hit_visible_in_metrics() {
    let handle = start_server();
    let body = solve_body(&matrix_game(21));
    let cold = call(handle.addr(), "POST", "/solve", &body);
    let warm = call(handle.addr(), "POST", "/solve", &body);
    assert_eq!(cold.status, 200);
    assert_eq!(warm.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body);

    let metrics = call(handle.addr(), "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    // The resubmitted body is canonical and byte-identical, so the warm
    // request is answered off the raw-byte index: it never touches the
    // primary cache, whose stats show only the cold miss.
    let cache = doc.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
    let reactor = doc.get("reactor").expect("reactor section");
    assert_eq!(reactor.get("zero_copy_hits").unwrap().as_u64(), Some(1));
    assert_eq!(reactor.get("parsed_hits").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("solve_requests").unwrap().as_u64(), Some(2));
    handle.stop();
}

#[test]
fn healthz_and_unknown_endpoints() {
    let handle = start_server();
    let health = call(handle.addr(), "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, br#"{"status":"ok"}"#);
    assert_eq!(call(handle.addr(), "GET", "/nope", b"").status, 404);
    assert_eq!(call(handle.addr(), "DELETE", "/solve", b"").status, 405);
    handle.stop();
}

#[test]
fn batches_share_the_cache_with_single_solves() {
    let handle = start_server();
    let games = mixed_workload(31, 4);
    // Warm one game through /solve.
    let warm = call(handle.addr(), "POST", "/solve", &solve_body(&games[0]));
    assert_eq!(warm.status, 200);
    let batch = BatchRequest {
        games: games.clone(),
        config: SolverConfig::default(),
    };
    let response = call(
        handle.addr(),
        "POST",
        "/solve_batch",
        &batch.canonical_bytes(),
    );
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-cache-hits"), Some("1"));
    assert_eq!(response.header("x-cache-misses"), Some("3"));
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    let reports = doc.get("reports").unwrap().as_arr().unwrap();
    assert_eq!(reports.len(), 4);
    for (game, entry) in games.iter().zip(reports) {
        let direct = match game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        let report = entry.get("report").expect("successful report");
        assert_eq!(
            report.canonical_string(),
            direct.encode().canonical_string()
        );
    }
    handle.stop();
}

#[test]
fn malformed_and_unsolvable_requests_map_to_4xx() {
    let handle = start_server();
    assert_eq!(call(handle.addr(), "POST", "/solve", b"{oops").status, 400);
    assert_eq!(
        call(
            handle.addr(),
            "POST",
            "/solve",
            br#"{"game":{"kind":"cubic"}}"#
        )
        .status,
        400
    );
    // Well-formed but over budget: a semantic 422.
    let game = matrix_game(41);
    let request = SolveRequest {
        game,
        config: SolverConfig {
            budget: bi_core::solve::Budget {
                max_profiles: 1,
                max_iterations: 8,
            },
            ..SolverConfig::default()
        },
    };
    let response = call(handle.addr(), "POST", "/solve", &request.canonical_bytes());
    assert_eq!(response.status, 422);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert!(doc
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("budget"));
    handle.stop();
}

/// A cold solve heavy enough (~100k strategy profiles) that a burst of
/// them keeps a single solver busy for many milliseconds even in release
/// builds — the window the backpressure tests rely on.
fn heavy_body(seed: u64) -> Vec<u8> {
    let (game, _) =
        bi_core::random_games::random_bayesian_potential_game(&[2, 2], &[18, 18], 3, seed);
    solve_body(&GameSpec::Matrix(game))
}

#[test]
fn overflowing_the_solver_queue_answers_429() {
    // One solver, a pending queue of one: a burst of distinct cold
    // solves can park at most two (one solving, one queued) before the
    // reactor starts answering 429 + Retry-After. No timing assumptions:
    // the burst is written before the first heavy solve can finish.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();
    const BURST: u64 = 6;
    let mut conns = Vec::new();
    for seed in 0..BURST {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        write_request(&mut writer, "POST", "/solve", &heavy_body(seed), false).expect("write");
        conns.push((reader, writer));
    }
    let (mut solved, mut rejected) = (0u64, 0u64);
    for (mut reader, _writer) in conns {
        let response = read_response(&mut reader).expect("read");
        match response.status {
            200 => solved += 1,
            429 => {
                rejected += 1;
                assert_eq!(
                    response.header("retry-after"),
                    Some("1"),
                    "backpressure must tell the client when to come back"
                );
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(solved >= 1, "the pool must still solve what it accepted");
    assert!(
        rejected >= 1,
        "a 6-deep burst into worker=1/queue=1 must overflow"
    );
    assert_eq!(solved + rejected, BURST);
    let metrics = handle.service().metrics_json();
    let reactor = metrics.get("reactor").expect("reactor section");
    assert_eq!(
        reactor.get("backpressure_429").unwrap().as_u64(),
        Some(rejected)
    );
    handle.stop();
}

#[test]
fn cache_hits_are_served_while_the_solver_pool_is_busy() {
    // The hot-path tail-latency fix: with the single solver occupied by
    // a cold solve, a cache hit must be answered by the reactor thread
    // immediately instead of queueing behind the solve.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();
    let light = solve_body(&matrix_game(61));
    assert_eq!(call(addr, "POST", "/solve", &light).status, 200); // warm
                                                                  // Occupy the solver with a heavy cold request (response not read yet).
    let heavy_stream = TcpStream::connect(addr).expect("connect");
    let mut heavy_reader = BufReader::new(heavy_stream.try_clone().expect("clone"));
    let mut heavy_writer = heavy_stream;
    let started = Instant::now();
    write_request(&mut heavy_writer, "POST", "/solve", &heavy_body(100), false).expect("write");
    // The warmed request must come back before the heavy solve does.
    let hit = call(addr, "POST", "/solve", &light);
    let hit_latency = started.elapsed();
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-cache"), Some("hit"));
    let heavy = read_response(&mut heavy_reader).expect("read heavy");
    let heavy_latency = started.elapsed();
    assert_eq!(heavy.status, 200);
    assert!(
        hit_latency < heavy_latency,
        "the hit ({hit_latency:?}) must not wait for the cold solve ({heavy_latency:?})"
    );
    handle.stop();
}

#[test]
fn connections_beyond_the_cap_answer_503() {
    let server = Server::bind(ServerConfig {
        max_connections: 2,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();
    // Two registered keep-alive connections (a served request proves
    // each is registered, not just sitting in the accept backlog).
    let mut held = Vec::new();
    for _ in 0..2 {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        write_request(&mut writer, "GET", "/healthz", b"", true).expect("write");
        assert_eq!(read_response(&mut reader).expect("read").status, 200);
        held.push((reader, writer));
    }
    let rejected = call(addr, "GET", "/healthz", b"");
    assert_eq!(rejected.status, 503, "third connection must be rejected");
    let doc = Json::parse(std::str::from_utf8(&rejected.body).unwrap()).unwrap();
    assert!(doc
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("connection limit"));
    drop(held);
    handle.stop();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let body = solve_body(&matrix_game(51));
    for i in 0..3 {
        write_request(&mut writer, "POST", "/solve", &body, true).expect("write");
        let response = read_response(&mut reader).expect("read");
        assert_eq!(response.status, 200);
        let expected = if i == 0 { "miss" } else { "hit" };
        assert_eq!(response.header("x-cache"), Some(expected), "request {i}");
    }
    drop(writer);
    handle.stop();
}

#[test]
fn debug_trace_adopts_the_injected_id_and_nests_stages_under_the_root() {
    let handle = start_server();
    let body = solve_body(&matrix_game(61));
    let trace_id = 0xabad_1dea_c0ff_ee00u64;
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request_with(
        &mut writer,
        "POST",
        "/solve",
        &body,
        false,
        &[("X-Bi-Trace", trace_id.to_string())],
    )
    .expect("write");
    let response = read_response(&mut reader).expect("read");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-cache"), Some("miss"));

    let dump = call(handle.addr(), "GET", "/debug/trace", b"");
    assert_eq!(dump.status, 200);
    let doc = Json::parse(std::str::from_utf8(&dump.body).unwrap()).unwrap();
    let spans: Vec<SpanEvent> = doc
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans array")
        .iter()
        .filter_map(SpanEvent::from_json)
        .filter(|span| span.trace_id == trace_id)
        .collect();
    let root = spans
        .iter()
        .find(|span| span.stage == Stage::Request)
        .expect("request root span for the injected id");
    assert_eq!(root.parent, 0, "no X-Bi-Parent was sent");
    for stage in [
        Stage::Parse,
        Stage::Cache,
        Stage::Solve,
        Stage::Encode,
        Stage::Write,
    ] {
        let span = spans
            .iter()
            .find(|span| span.stage == stage)
            .unwrap_or_else(|| panic!("missing {} span", stage.name()));
        assert_eq!(
            span.parent,
            root.span_id,
            "{} must nest under the request root",
            stage.name()
        );
        assert!(span.t_end_ns >= span.t_start_ns);
    }
    handle.stop();
}

#[test]
fn metrics_stage_histograms_move_with_traffic() {
    let handle = start_server();
    let body = solve_body(&matrix_game(62));
    assert_eq!(call(handle.addr(), "POST", "/solve", &body).status, 200);
    assert_eq!(call(handle.addr(), "POST", "/solve", &body).status, 200);
    let metrics = call(handle.addr(), "GET", "/metrics", b"");
    let doc = Json::parse(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    let stages = doc.get("stages").expect("stages section");
    for stage in Stage::ALL {
        let hist = stages
            .get(stage.name())
            .unwrap_or_else(|| panic!("stage {} missing from /metrics", stage.name()));
        assert!(
            hist.get("count").is_some() && hist.get("p50").is_some(),
            "stage {} must expose a histogram snapshot",
            stage.name()
        );
    }
    let count = |name: &str| {
        stages
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stage {name} count"))
    };
    // Two solves hit the request/cache/write stages; only the cold one
    // crossed the solver. The parse count includes the `/metrics`
    // request itself: its head is parsed (and recorded) before the
    // document is built, while its request/write stages close only
    // after the response flushes.
    assert_eq!(count("request"), 2);
    assert_eq!(count("parse"), 3);
    assert_eq!(count("cache"), 2);
    assert_eq!(count("write"), 2);
    assert_eq!(count("solve"), 1);
    assert!(count("route") == 0 && count("upstream") == 0);
    handle.stop();
}
