//! End-to-end tests: a real [`Server`] on an ephemeral port, driven over
//! TCP with the crate's own HTTP client helpers.
//!
//! These pin the ISSUE-4 acceptance behaviors: `POST /solve` answers
//! with `SolveReport` JSON byte-identical to the in-process engine for
//! both game representations, resubmission is a cache hit visible in
//! `GET /metrics`, batches work, and the bounded queue answers `503`
//! under overflow.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use bi_core::solve::{Solver, SolverConfig};
use bi_service::http::{read_response, write_request, ClientResponse};
use bi_service::workload::{matrix_game, mixed_workload, ncs_game};
use bi_service::{BatchRequest, GameSpec, Server, ServerConfig, ServerHandle, SolveRequest};
use bi_util::{Encode, Json};

fn start_server() -> ServerHandle {
    let server = Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    server.start().expect("start server")
}

/// One request over a fresh connection.
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, method, path, body, false).expect("write request");
    read_response(&mut reader).expect("read response")
}

fn solve_body(game: &GameSpec) -> Vec<u8> {
    SolveRequest {
        game: game.clone(),
        config: SolverConfig::default(),
    }
    .canonical_bytes()
}

#[test]
fn solve_answers_match_the_in_process_engine_for_both_representations() {
    let handle = start_server();
    for game in [matrix_game(11), ncs_game(12)] {
        let response = call(handle.addr(), "POST", "/solve", &solve_body(&game));
        assert_eq!(response.status, 200);
        assert_eq!(response.header("x-cache"), Some("miss"));
        let direct = match &game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        assert_eq!(
            response.body,
            direct.canonical_bytes(),
            "wire report must be byte-identical to the in-process report"
        );
    }
    handle.stop();
}

#[test]
fn resubmission_is_a_cache_hit_visible_in_metrics() {
    let handle = start_server();
    let body = solve_body(&matrix_game(21));
    let cold = call(handle.addr(), "POST", "/solve", &body);
    let warm = call(handle.addr(), "POST", "/solve", &body);
    assert_eq!(cold.status, 200);
    assert_eq!(warm.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body);

    let metrics = call(handle.addr(), "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    let cache = doc.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("solve_requests").unwrap().as_u64(), Some(2));
    handle.stop();
}

#[test]
fn healthz_and_unknown_endpoints() {
    let handle = start_server();
    let health = call(handle.addr(), "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, br#"{"status":"ok"}"#);
    assert_eq!(call(handle.addr(), "GET", "/nope", b"").status, 404);
    assert_eq!(call(handle.addr(), "DELETE", "/solve", b"").status, 405);
    handle.stop();
}

#[test]
fn batches_share_the_cache_with_single_solves() {
    let handle = start_server();
    let games = mixed_workload(31, 4);
    // Warm one game through /solve.
    let warm = call(handle.addr(), "POST", "/solve", &solve_body(&games[0]));
    assert_eq!(warm.status, 200);
    let batch = BatchRequest {
        games: games.clone(),
        config: SolverConfig::default(),
    };
    let response = call(
        handle.addr(),
        "POST",
        "/solve_batch",
        &batch.canonical_bytes(),
    );
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-cache-hits"), Some("1"));
    assert_eq!(response.header("x-cache-misses"), Some("3"));
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    let reports = doc.get("reports").unwrap().as_arr().unwrap();
    assert_eq!(reports.len(), 4);
    for (game, entry) in games.iter().zip(reports) {
        let direct = match game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        let report = entry.get("report").expect("successful report");
        assert_eq!(
            report.canonical_string(),
            direct.encode().canonical_string()
        );
    }
    handle.stop();
}

#[test]
fn malformed_and_unsolvable_requests_map_to_4xx() {
    let handle = start_server();
    assert_eq!(call(handle.addr(), "POST", "/solve", b"{oops").status, 400);
    assert_eq!(
        call(
            handle.addr(),
            "POST",
            "/solve",
            br#"{"game":{"kind":"cubic"}}"#
        )
        .status,
        400
    );
    // Well-formed but over budget: a semantic 422.
    let game = matrix_game(41);
    let request = SolveRequest {
        game,
        config: SolverConfig {
            budget: bi_core::solve::Budget {
                max_profiles: 1,
                max_iterations: 8,
            },
            ..SolverConfig::default()
        },
    };
    let response = call(handle.addr(), "POST", "/solve", &request.canonical_bytes());
    assert_eq!(response.status, 422);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert!(doc
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("budget"));
    handle.stop();
}

#[test]
fn overflowing_the_bounded_queue_answers_503() {
    // One worker, queue of one: occupy the worker with an idle
    // connection, fill the queue with a second, and the third must be
    // rejected with 503 by the accept loop.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();
    let _busy = TcpStream::connect(addr).expect("worker-occupying connection");
    std::thread::sleep(Duration::from_millis(300)); // worker picks it up
    let _queued = TcpStream::connect(addr).expect("queued connection");
    std::thread::sleep(Duration::from_millis(300)); // it settles in the queue
    let rejected = call(addr, "GET", "/healthz", b"");
    assert_eq!(rejected.status, 503, "third connection must be rejected");
    let doc = Json::parse(std::str::from_utf8(&rejected.body).unwrap()).unwrap();
    assert!(doc
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("queue"));
    // Close the parked connections before stopping so the worker joins
    // immediately instead of waiting out its read timeout.
    drop(_busy);
    drop(_queued);
    handle.stop();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let body = solve_body(&matrix_game(51));
    for i in 0..3 {
        write_request(&mut writer, "POST", "/solve", &body, true).expect("write");
        let response = read_response(&mut reader).expect("read");
        assert_eq!(response.status, 200);
        let expected = if i == 0 { "miss" } else { "hit" };
        assert_eq!(response.header("x-cache"), Some(expected), "request {i}");
    }
    drop(writer);
    handle.stop();
}
