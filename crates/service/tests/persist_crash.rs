//! Crash-safety sweep for the disk cache tier: a torn final frame —
//! cut at *every* possible byte offset — must never cost more than the
//! torn record itself.
//!
//! The log format is append-only CRC-framed records, so the only crash
//! the tier has to survive is a partial final write. This test builds a
//! known-good log, then simulates that crash exhaustively: for each cut
//! point inside the last frame it truncates the file there, boots a
//! fresh [`DiskTier`] on it, and asserts every complete record is
//! recovered byte-identical, the torn record is gone, and the log is
//! usable for new appends afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

use bi_service::persist::{frame_record, DiskTier, DiskTierConfig};

/// A unique temp path per call so parallel tests never collide.
fn temp_log(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bi-crash-{}-{tag}-{n}.log", std::process::id()))
}

/// The fixture: three complete records plus one final frame that the
/// sweep tears. Varied key/value lengths so the cut points cross every
/// region of a frame — each length header, the CRC, the key, the value.
fn records() -> Vec<(Vec<u8>, Vec<u8>)> {
    vec![
        (b"alpha".to_vec(), b"the first value".to_vec()),
        (b"b".to_vec(), vec![0xAB; 64]),
        (b"gamma-key".to_vec(), Vec::new()),
        (
            b"the-final-key".to_vec(),
            b"payload of the torn frame".to_vec(),
        ),
    ]
}

#[test]
fn every_torn_tail_offset_recovers_all_complete_records() {
    let all = records();
    let (complete, torn) = all.split_at(all.len() - 1);
    let mut base = Vec::new();
    for (key, value) in complete {
        base.extend_from_slice(&frame_record(key, value));
    }
    let last = frame_record(&torn[0].0, &torn[0].1);

    let path = temp_log("sweep");
    // Cut at every offset that leaves the last frame incomplete: from
    // zero extra bytes up to one byte short of the full frame.
    for cut in 0..last.len() {
        let mut bytes = base.clone();
        bytes.extend_from_slice(&last[..cut]);
        std::fs::write(&path, &bytes).expect("write fixture");

        let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot on torn log");
        let stats = tier.stats();
        assert_eq!(
            stats.recovered_records,
            complete.len() as u64,
            "cut at +{cut}: every complete record must be recovered"
        );
        assert_eq!(
            stats.truncated_bytes, cut as u64,
            "cut at +{cut}: exactly the torn bytes must be discarded"
        );
        for (key, value) in complete {
            assert_eq!(
                tier.get(key).as_deref(),
                Some(value.as_slice()),
                "cut at +{cut}: recovered value must be byte-identical"
            );
        }
        assert_eq!(
            tier.get(&torn[0].0),
            None,
            "cut at +{cut}: the torn record must not resurface"
        );
        drop(tier);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_torn_log_accepts_new_appends_and_replays_them_after_reboot() {
    let all = records();
    let (complete, torn) = all.split_at(all.len() - 1);
    let mut bytes = Vec::new();
    for (key, value) in complete {
        bytes.extend_from_slice(&frame_record(key, value));
    }
    // Tear the final frame mid-CRC (inside the 12-byte header).
    let last = frame_record(&torn[0].0, &torn[0].1);
    bytes.extend_from_slice(&last[..9]);

    let path = temp_log("resume");
    std::fs::write(&path, &bytes).expect("write fixture");

    {
        let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot on torn log");
        assert_eq!(tier.stats().recovered_records, complete.len() as u64);
        // Re-append the record the crash destroyed, plus a fresh one.
        tier.append(&torn[0].0, &torn[0].1);
        tier.append(b"post-crash", b"written after recovery");
        tier.sync();
    }

    let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("reboot");
    let stats = tier.stats();
    assert_eq!(
        stats.recovered_records,
        all.len() as u64 + 1,
        "the truncated tail must not shadow post-recovery appends"
    );
    assert_eq!(stats.truncated_bytes, 0, "the reopened log is clean");
    for (key, value) in &all {
        assert_eq!(tier.get(key).as_deref(), Some(value.as_slice()));
    }
    assert_eq!(
        tier.get(b"post-crash").as_deref(),
        Some(b"written after recovery".as_slice())
    );
    drop(tier);
    std::fs::remove_file(&path).ok();
}
