//! Crash-safety sweep for the disk cache tier: a torn final frame —
//! cut at *every* possible byte offset — must never cost more than the
//! torn record itself.
//!
//! The log format is append-only CRC-framed records, so the only crash
//! the tier has to survive is a partial final write. This test builds a
//! known-good log, then simulates that crash exhaustively: for each cut
//! point inside the last frame it truncates the file there, boots a
//! fresh [`DiskTier`] on it, and asserts every complete record is
//! recovered byte-identical, the torn record is gone, and the log is
//! usable for new appends afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

use bi_service::persist::{compact_path, frame_record, DiskTier, DiskTierConfig};

/// A unique temp path per call so parallel tests never collide.
fn temp_log(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bi-crash-{}-{tag}-{n}.log", std::process::id()))
}

/// The fixture: three complete records plus one final frame that the
/// sweep tears. Varied key/value lengths so the cut points cross every
/// region of a frame — each length header, the CRC, the key, the value.
fn records() -> Vec<(Vec<u8>, Vec<u8>)> {
    vec![
        (b"alpha".to_vec(), b"the first value".to_vec()),
        (b"b".to_vec(), vec![0xAB; 64]),
        (b"gamma-key".to_vec(), Vec::new()),
        (
            b"the-final-key".to_vec(),
            b"payload of the torn frame".to_vec(),
        ),
    ]
}

#[test]
fn every_torn_tail_offset_recovers_all_complete_records() {
    let all = records();
    let (complete, torn) = all.split_at(all.len() - 1);
    let mut base = Vec::new();
    for (key, value) in complete {
        base.extend_from_slice(&frame_record(key, value));
    }
    let last = frame_record(&torn[0].0, &torn[0].1);

    let path = temp_log("sweep");
    // Cut at every offset that leaves the last frame incomplete: from
    // zero extra bytes up to one byte short of the full frame.
    for cut in 0..last.len() {
        let mut bytes = base.clone();
        bytes.extend_from_slice(&last[..cut]);
        std::fs::write(&path, &bytes).expect("write fixture");

        let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot on torn log");
        let stats = tier.stats();
        assert_eq!(
            stats.recovered_records,
            complete.len() as u64,
            "cut at +{cut}: every complete record must be recovered"
        );
        assert_eq!(
            stats.truncated_bytes, cut as u64,
            "cut at +{cut}: exactly the torn bytes must be discarded"
        );
        for (key, value) in complete {
            assert_eq!(
                tier.get(key).as_deref(),
                Some(value.as_slice()),
                "cut at +{cut}: recovered value must be byte-identical"
            );
        }
        assert_eq!(
            tier.get(&torn[0].0),
            None,
            "cut at +{cut}: the torn record must not resurface"
        );
        drop(tier);
    }
    std::fs::remove_file(&path).ok();
}

/// The newest version of each key — what compaction must preserve.
type LiveSet = Vec<(Vec<u8>, Vec<u8>)>;

/// A log whose history overwrote two of its three keys, plus the
/// compacted image a finished rewrite would leave: the raw material for
/// the compaction crash sweeps below.
fn overwritten_log() -> (Vec<u8>, LiveSet, Vec<u8>) {
    let history: Vec<(&[u8], Vec<u8>)> = vec![
        (b"alpha", b"first alpha".to_vec()),
        (b"beta", vec![0x5A; 48]),
        (b"alpha", b"second alpha".to_vec()),
        (b"gamma", b"only gamma".to_vec()),
        (b"beta", b"final beta".to_vec()),
        (b"alpha", b"final alpha, the longest of the three".to_vec()),
    ];
    let mut log = Vec::new();
    for (key, value) in &history {
        log.extend_from_slice(&frame_record(key, value));
    }
    let live: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (
            b"alpha".to_vec(),
            b"final alpha, the longest of the three".to_vec(),
        ),
        (b"beta".to_vec(), b"final beta".to_vec()),
        (b"gamma".to_vec(), b"only gamma".to_vec()),
    ];
    let mut compacted = Vec::new();
    for (key, value) in &live {
        compacted.extend_from_slice(&frame_record(key, value));
    }
    (log, live, compacted)
}

#[test]
fn a_compaction_crash_at_every_tmp_offset_leaves_the_old_log_authoritative() {
    let (log, live, compacted) = overwritten_log();
    let path = temp_log("compact-crash");
    let tmp = compact_path(&path);
    // A compaction that dies before its rename leaves the main log
    // complete and a partial `.compact` sibling — cut at every offset,
    // including the full fsynced-but-unrenamed image.
    for cut in 0..=compacted.len() {
        std::fs::write(&path, &log).expect("write main log");
        std::fs::write(&tmp, &compacted[..cut]).expect("write torn compact file");

        let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot after crash");
        let stats = tier.stats();
        assert_eq!(
            stats.recovered_records, 6,
            "cut at +{cut}: the whole pre-compaction history must be scanned"
        );
        assert_eq!(
            stats.truncated_bytes, 0,
            "cut at +{cut}: the old log is clean"
        );
        for (key, value) in &live {
            assert_eq!(
                tier.get(key).as_deref(),
                Some(value.as_slice()),
                "cut at +{cut}: the last version of every key must survive"
            );
        }
        drop(tier);
        assert!(
            !tmp.exists(),
            "cut at +{cut}: boot must discard the half-written rewrite"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_compaction_that_reached_its_rename_boots_on_the_live_set() {
    let (_, live, compacted) = overwritten_log();
    // Past the commit point the compacted image *is* the main log and no
    // sibling remains — exactly what the atomic rename leaves behind.
    let path = temp_log("compact-done");
    std::fs::write(&path, &compacted).expect("write compacted log");

    let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot on compacted log");
    let stats = tier.stats();
    assert_eq!(stats.recovered_records, live.len() as u64);
    assert_eq!(stats.truncated_bytes, 0);
    assert_eq!(
        stats.log_bytes, stats.live_bytes,
        "a freshly compacted log carries no dead weight"
    );
    for (key, value) in &live {
        assert_eq!(tier.get(key).as_deref(), Some(value.as_slice()));
    }
    drop(tier);
    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_bounds_the_log_to_twice_its_live_bytes() {
    let path = temp_log("compact-bound");
    let config = DiskTierConfig {
        compact_ratio: 2,
        compact_min_bytes: 1024,
        ..DiskTierConfig::default()
    };
    let keys = 32usize;
    let versions = 40u32;
    {
        let tier = DiskTier::open(&path, config).expect("open");
        // Overwrite a small key set many times: almost all appended
        // bytes are dead weight, so the ratio trigger must fire.
        for version in 0..versions {
            for key in 0..keys {
                let value = format!("key {key} at version {version}, padded {}", "x".repeat(64));
                tier.append(format!("key-{key}").as_bytes(), value.as_bytes());
            }
            tier.sync();
        }
        let stats = tier.stats();
        assert!(stats.compactions >= 1, "the rewrite trigger must fire");
        assert!(
            stats.log_bytes <= 2 * stats.live_bytes,
            "log ({}) must stay within 2x live bytes ({})",
            stats.log_bytes,
            stats.live_bytes,
        );
        for key in 0..keys {
            let expect = format!(
                "key {key} at version {}, padded {}",
                versions - 1,
                "x".repeat(64)
            );
            assert_eq!(
                tier.get(format!("key-{key}").as_bytes()).as_deref(),
                Some(expect.as_bytes()),
                "compaction must keep exactly the newest version"
            );
        }
    }
    // Reboot: the boot scan sees the compacted log plus whatever landed
    // after the last rewrite, and still resolves every key to its
    // newest version.
    let tier = DiskTier::open(&path, config).expect("reboot");
    let stats = tier.stats();
    assert_eq!(stats.truncated_bytes, 0);
    assert!(stats.log_bytes <= 2 * stats.live_bytes);
    for key in 0..keys {
        let expect = format!(
            "key {key} at version {}, padded {}",
            versions - 1,
            "x".repeat(64)
        );
        assert_eq!(
            tier.get(format!("key-{key}").as_bytes()).as_deref(),
            Some(expect.as_bytes())
        );
    }
    drop(tier);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_torn_log_accepts_new_appends_and_replays_them_after_reboot() {
    let all = records();
    let (complete, torn) = all.split_at(all.len() - 1);
    let mut bytes = Vec::new();
    for (key, value) in complete {
        bytes.extend_from_slice(&frame_record(key, value));
    }
    // Tear the final frame mid-CRC (inside the 12-byte header).
    let last = frame_record(&torn[0].0, &torn[0].1);
    bytes.extend_from_slice(&last[..9]);

    let path = temp_log("resume");
    std::fs::write(&path, &bytes).expect("write fixture");

    {
        let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("boot on torn log");
        assert_eq!(tier.stats().recovered_records, complete.len() as u64);
        // Re-append the record the crash destroyed, plus a fresh one.
        tier.append(&torn[0].0, &torn[0].1);
        tier.append(b"post-crash", b"written after recovery");
        tier.sync();
    }

    let tier = DiskTier::open(&path, DiskTierConfig::default()).expect("reboot");
    let stats = tier.stats();
    assert_eq!(
        stats.recovered_records,
        all.len() as u64 + 1,
        "the truncated tail must not shadow post-recovery appends"
    );
    assert_eq!(stats.truncated_bytes, 0, "the reopened log is clean");
    for (key, value) in &all {
        assert_eq!(tier.get(key).as_deref(), Some(value.as_slice()));
    }
    assert_eq!(
        tier.get(b"post-crash").as_deref(),
        Some(b"written after recovery".as_slice())
    );
    drop(tier);
    std::fs::remove_file(&path).ok();
}
