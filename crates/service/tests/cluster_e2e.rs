//! Cluster end-to-end tests: a real [`Router`] in front of real
//! [`Server`] backends, all on ephemeral ports, driven over TCP.
//!
//! These pin the bi-cluster acceptance behaviors: routing is
//! deterministic (same body → same backend, visible in `X-Backend`),
//! responses through the router are byte-identical to direct solves,
//! batches split per backend and re-merge in request order, a killed
//! backend is ejected by its own failing traffic and its keys fail
//! over without a 5xx, a disk-backed server reboots warm — the
//! whole pool replayed as byte-identical cache hits — and one injected
//! `X-Bi-Trace` id stitches router and backend `/debug/trace` dumps
//! into a single parent/child span tree.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bi_core::solve::{Solver, SolverConfig};
use bi_service::http::{read_response, write_request, write_request_with, ClientResponse};
use bi_service::workload::{light_workload, mixed_workload};
use bi_service::{
    BatchRequest, GameSpec, Router, RouterConfig, RouterHandle, Server, ServerConfig, ServerHandle,
    SolveRequest, SpanEvent, Stage,
};
use bi_util::{Encode, Json};

fn start_backend() -> ServerHandle {
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 64,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    server.start().expect("start backend")
}

/// Spins up `n` backends and a router over them.
fn start_cluster(n: usize, config: RouterConfig) -> (Vec<ServerHandle>, RouterHandle) {
    let backends: Vec<ServerHandle> = (0..n).map(|_| start_backend()).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::bind(RouterConfig {
        backends: addrs,
        ..config
    })
    .expect("bind router");
    let handle = router.start().expect("start router");
    (backends, handle)
}

/// One request over a fresh connection.
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, method, path, body, false).expect("write request");
    read_response(&mut reader).expect("read response")
}

fn solve_body(game: &GameSpec) -> Vec<u8> {
    SolveRequest {
        game: game.clone(),
        config: SolverConfig::default(),
    }
    .canonical_bytes()
}

/// One `/solve` over a fresh connection carrying an `X-Bi-Trace` id.
fn call_traced(addr: std::net::SocketAddr, body: &[u8], trace_id: u64) -> ClientResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request_with(
        &mut writer,
        "POST",
        "/solve",
        body,
        false,
        &[("X-Bi-Trace", trace_id.to_string())],
    )
    .expect("write request");
    read_response(&mut reader).expect("read response")
}

/// Scrapes `GET /debug/trace` and returns the spans of `trace_id`.
fn trace_spans_of(addr: std::net::SocketAddr, trace_id: u64) -> Vec<SpanEvent> {
    let response = call(addr, "GET", "/debug/trace", b"");
    assert_eq!(response.status, 200);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    doc.get("spans")
        .and_then(Json::as_arr)
        .expect("spans array")
        .iter()
        .filter_map(SpanEvent::from_json)
        .filter(|span| span.trace_id == trace_id)
        .collect()
}

#[test]
fn one_trace_id_stitches_router_and_backend_span_trees() {
    let (backends, router) = start_cluster(2, RouterConfig::default());
    let game = &mixed_workload(111, 1)[0];
    let body = solve_body(game);
    let trace_id = 0xfeed_f00d_0dd5_beefu64;
    let response = call_traced(router.addr(), &body, trace_id);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-cache"), Some("miss"));

    let router_spans = trace_spans_of(router.addr(), trace_id);
    let backend_spans: Vec<SpanEvent> = backends
        .iter()
        .flat_map(|backend| trace_spans_of(backend.addr(), trace_id))
        .collect();
    let span_of = |spans: &[SpanEvent], stage: Stage| -> SpanEvent {
        let matches: Vec<&SpanEvent> = spans.iter().filter(|s| s.stage == stage).collect();
        assert_eq!(
            matches.len(),
            1,
            "expected exactly one {} span for the trace",
            stage.name()
        );
        matches[0].clone()
    };

    // Router tree: `route` is the root (no inbound parent), with
    // `ring_lookup` and the forwarding `upstream` hop nested under it.
    let route = span_of(&router_spans, Stage::Route);
    assert_eq!(route.parent, 0, "no X-Bi-Parent was sent");
    let ring = span_of(&router_spans, Stage::RingLookup);
    let upstream = span_of(&router_spans, Stage::Upstream);
    assert_eq!(ring.parent, route.span_id);
    assert_eq!(upstream.parent, route.span_id);

    // Backend tree: its `request` root adopted the forwarded upstream
    // span as parent, and every serving stage nests under the root. A
    // cold solve covers parse → cache (miss) → solve → encode → write.
    let request = span_of(&backend_spans, Stage::Request);
    assert_eq!(
        request.parent, upstream.span_id,
        "the backend root must nest under the router's upstream hop"
    );
    for stage in [
        Stage::Parse,
        Stage::Cache,
        Stage::Solve,
        Stage::Encode,
        Stage::Write,
    ] {
        let span = span_of(&backend_spans, stage);
        assert_eq!(
            span.parent,
            request.span_id,
            "{} must nest under the backend request root",
            stage.name()
        );
    }

    // The acceptance bar: one id, at least five named stages, spread
    // over the two dumps.
    let mut stages: Vec<&str> = router_spans
        .iter()
        .chain(&backend_spans)
        .map(|s| s.stage.name())
        .collect();
    stages.sort_unstable();
    stages.dedup();
    assert!(
        stages.len() >= 5,
        "expected >= 5 distinct stages for the trace, got {stages:?}"
    );
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn routing_is_deterministic_and_byte_identical_to_direct_solves() {
    let (backends, router) = start_cluster(3, RouterConfig::default());
    let games = mixed_workload(71, 9);
    let mut owners = std::collections::BTreeSet::new();
    for game in &games {
        let body = solve_body(game);
        let cold = call(router.addr(), "POST", "/solve", &body);
        assert_eq!(cold.status, 200);
        assert_eq!(cold.header("x-cache"), Some("miss"));
        let owner = cold.header("x-backend").expect("owner header").to_string();
        let warm = call(router.addr(), "POST", "/solve", &body);
        assert_eq!(warm.status, 200);
        assert_eq!(
            warm.header("x-cache"),
            Some("hit"),
            "the rerouted key must land on the cache it warmed"
        );
        assert_eq!(
            warm.header("x-backend"),
            Some(owner.as_str()),
            "same body must route to the same backend"
        );
        let direct = match game {
            GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
            GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
        };
        assert_eq!(cold.body, direct.canonical_bytes());
        assert_eq!(warm.body, cold.body);
        owners.insert(owner);
    }
    assert!(
        owners.len() > 1,
        "nine keys across three backends must spread: got {owners:?}"
    );
    let metrics = router.metrics_json();
    let total_forwarded: u64 = metrics
        .get("backends")
        .and_then(Json::as_arr)
        .expect("backends section")
        .iter()
        .map(|b| b.get("forwarded").and_then(|v| v.as_u64()).unwrap_or(0))
        .sum();
    assert_eq!(total_forwarded, 18, "every request was forwarded upstream");
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn batches_split_per_backend_and_remerge_in_request_order() {
    let (backends, router) = start_cluster(3, RouterConfig::default());
    let games = mixed_workload(81, 6);
    let body = BatchRequest {
        games: games.clone(),
        config: SolverConfig::default(),
    }
    .canonical_bytes();
    let routed = call(router.addr(), "POST", "/solve_batch", &body);
    assert_eq!(routed.status, 200);

    // The same batch against one standalone server is the oracle: the
    // split/re-merge must reproduce its response byte for byte.
    let standalone = start_backend();
    let direct = call(standalone.addr(), "POST", "/solve_batch", &body);
    assert_eq!(direct.status, 200);
    assert_eq!(
        routed.body, direct.body,
        "split-and-remerge must be invisible in the response bytes"
    );
    let doc = Json::parse(std::str::from_utf8(&routed.body).unwrap()).unwrap();
    assert_eq!(doc.get("reports").unwrap().as_arr().unwrap().len(), 6);
    standalone.stop();
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

#[test]
fn a_killed_backend_is_ejected_and_only_its_keys_move() {
    let (mut backends, router) = start_cluster(
        3,
        RouterConfig {
            fail_threshold: 1,
            probe_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    let games = mixed_workload(91, 9);
    let bodies: Vec<Vec<u8>> = games.iter().map(solve_body).collect();
    let owners: Vec<String> = bodies
        .iter()
        .map(|body| {
            let response = call(router.addr(), "POST", "/solve", body);
            assert_eq!(response.status, 200);
            response.header("x-backend").expect("owner").to_string()
        })
        .collect();

    // Kill the backend that owns the first key.
    let victim = owners[0].clone();
    let index = backends
        .iter()
        .position(|b| b.addr().to_string() == victim)
        .expect("victim is a cluster backend");
    backends.remove(index).stop();

    // Every key must still answer 200 — the victim's keys fail over to
    // a live backend (re-solved there: a miss is fine), everyone else's
    // stay put on the cache they warmed.
    for (body, owner) in bodies.iter().zip(&owners) {
        let response = call(router.addr(), "POST", "/solve", body);
        assert_eq!(
            response.status, 200,
            "no request may surface a 5xx while the ring heals"
        );
        let now = response.header("x-backend").expect("owner");
        if owner == &victim {
            assert_ne!(now, victim, "the dead backend must not be routed to");
        } else {
            assert_eq!(
                now,
                owner.as_str(),
                "ejection must move only the ejected backend's arc"
            );
            assert_eq!(response.header("x-cache"), Some("hit"));
        }
    }
    let metrics = router.metrics_json();
    let rows = metrics.get("backends").and_then(Json::as_arr).unwrap();
    let victim_row = rows
        .iter()
        .find(|row| row.get("addr").and_then(|v| v.as_str()) == Some(victim.as_str()))
        .expect("victim row");
    assert_eq!(victim_row.get("alive"), Some(&Json::Bool(false)));
    assert_eq!(victim_row.get("ejects").and_then(|v| v.as_u64()), Some(1));
    router.stop();
    for backend in backends {
        backend.stop();
    }
}

/// Polls `check` every 25 ms until it passes or `timeout` elapses.
fn poll_until(timeout: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if check() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn replication_two_survives_a_kill_and_read_repairs_the_returning_backend() {
    let (mut backends, router) = start_cluster(
        3,
        RouterConfig {
            replication: 2,
            fail_threshold: 1,
            probe_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    let games = light_workload(131, 40);
    let bodies: Vec<Vec<u8>> = games.iter().map(solve_body).collect();

    // The aggregated health document must carry the replication factor.
    let health = call(router.addr(), "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    let health = Json::parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
    assert_eq!(health.get("replication").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        health.get("live_backends").and_then(|v| v.as_u64()),
        Some(3)
    );

    // Cold pass: every key solved once on its primary; the write-through
    // ships each result to the key's second owner.
    let owners: Vec<String> = bodies
        .iter()
        .map(|body| {
            let response = call(router.addr(), "POST", "/solve", body);
            assert_eq!(response.status, 200);
            response.header("x-backend").expect("owner").to_string()
        })
        .collect();
    let replication_metrics = |key: &str| -> u64 {
        router
            .metrics_json()
            .get("replication")
            .and_then(|section| section.get(key).and_then(|v| v.as_u64()))
            .unwrap_or(0)
    };
    assert!(
        poll_until(Duration::from_secs(10), || {
            replication_metrics("writes") > 0 && replication_metrics("repair_queue_depth") == 0
        }),
        "replica write-through must drain: writes {}, queue {}",
        replication_metrics("writes"),
        replication_metrics("repair_queue_depth"),
    );

    // Kill the primary of the first key.
    let victim = owners[0].clone();
    let index = backends
        .iter()
        .position(|b| b.addr().to_string() == victim)
        .expect("victim is a cluster backend");
    backends.remove(index).stop();

    // Hot pass with one owner down: zero client-visible 5xx, and the
    // victim's keys are *hits* on their surviving replica — the cached
    // work was not lost.
    let mut hits = 0usize;
    for body in &bodies {
        let response = call(router.addr(), "POST", "/solve", body);
        assert_eq!(
            response.status, 200,
            "no request may surface a 5xx while one replica is down"
        );
        assert_ne!(response.header("x-backend"), Some(victim.as_str()));
        if response.header("x-cache") == Some("hit") {
            hits += 1;
        }
    }
    let hit_rate = hits as f64 / bodies.len() as f64;
    assert!(
        hit_rate >= 0.99,
        "failover must serve from the replica caches: hit rate {hit_rate}"
    );

    // Restart the victim on its old address (retrying while the OS
    // releases the port). It comes back cold; the router's prober
    // readmits it and the queued read-repairs repopulate it.
    let restarted = {
        let config = ServerConfig {
            addr: victim.clone(),
            workers: 1,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let mut bound = None;
        for _ in 0..100 {
            match Server::bind(config.clone()) {
                Ok(server) => {
                    bound = Some(server.start().expect("restart victim"));
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        bound.expect("rebind the victim's address")
    };

    assert!(
        poll_until(Duration::from_secs(10), || {
            replication_metrics("read_repairs") > 0
                && replication_metrics("repair_queue_depth") == 0
        }),
        "read-repairs must deliver once the backend is readmitted: repairs {}, queue {}",
        replication_metrics("read_repairs"),
        replication_metrics("repair_queue_depth"),
    );
    let backend_metrics = call(restarted.addr(), "GET", "/metrics", b"");
    let doc = Json::parse(std::str::from_utf8(&backend_metrics.body).unwrap()).unwrap();
    assert!(
        doc.get("cache_puts").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "the restarted backend must be repopulated by read-repair"
    );

    // The repaired keys serve as hits from their rightful primary again.
    let repaired = bodies
        .iter()
        .zip(&owners)
        .find(|(_, owner)| *owner == &victim)
        .map(|(body, _)| body)
        .expect("the victim owned at least the first key");
    assert!(
        poll_until(Duration::from_secs(10), || {
            let response = call(router.addr(), "POST", "/solve", repaired);
            response.status == 200
                && response.header("x-backend") == Some(victim.as_str())
                && response.header("x-cache") == Some("hit")
        }),
        "a repaired key must come back as a hit on its readmitted primary"
    );

    router.stop();
    restarted.stop();
    for backend in backends {
        backend.stop();
    }
}

/// A unique temp path per call so parallel tests never collide.
fn temp_log(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bi-cluster-{}-{tag}-{n}.log", std::process::id()))
}

#[test]
fn a_disk_backed_server_reboots_warm_and_byte_identical() {
    let path = temp_log("warm");
    let disk_config = ServerConfig {
        workers: 1,
        read_timeout: Duration::from_secs(5),
        disk_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let games = light_workload(101, 50);
    let bodies: Vec<Vec<u8>> = games.iter().map(solve_body).collect();

    // First life: solve the whole pool cold over the socket.
    let first_run: Vec<Vec<u8>> = {
        let handle = Server::bind(disk_config.clone())
            .expect("bind disk-backed server")
            .start()
            .expect("start");
        let responses: Vec<Vec<u8>> = bodies
            .iter()
            .map(|body| {
                let response = call(handle.addr(), "POST", "/solve", body);
                assert_eq!(response.status, 200);
                response.body
            })
            .collect();
        handle.service().sync_disk();
        handle.stop();
        responses
    };

    // Second life: same log, every replay must be a warm hit with the
    // exact bytes of the first life.
    let handle = Server::bind(disk_config)
        .expect("rebind on the same log")
        .start()
        .expect("restart");
    let mut hits = 0usize;
    for (body, expected) in bodies.iter().zip(&first_run) {
        let response = call(handle.addr(), "POST", "/solve", body);
        assert_eq!(response.status, 200);
        if response.header("x-cache") == Some("hit") {
            hits += 1;
        }
        assert_eq!(
            &response.body, expected,
            "a disk-recovered report must be byte-identical"
        );
    }
    let hit_rate = hits as f64 / bodies.len() as f64;
    assert!(
        hit_rate >= 0.99,
        "warm restart must serve from the recovered log: hit rate {hit_rate}"
    );
    let metrics = call(handle.addr(), "GET", "/metrics", b"");
    let doc = Json::parse(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    let disk = doc.get("disk").expect("disk section in metrics");
    assert_eq!(
        disk.get("recovered_records").and_then(|v| v.as_u64()),
        Some(bodies.len() as u64)
    );
    handle.stop();
    std::fs::remove_file(&path).ok();
}
