//! The content-addressed solve cache: a sharded, capacity-bounded LRU
//! keyed by canonical wire bytes.
//!
//! The paper's measures are pure functions of a game description, which
//! makes solve results perfectly cacheable: the cache key is the
//! canonical JSON of the request (game + backend + budget — thread count
//! excluded, it never changes results), addressed by 64-bit FNV-1a
//! ([`bi_util::fnv1a`]). The hash is computed **once** per operation: it
//! picks the shard, then indexes the shard's bucket map. Each shard is an
//! independent `Mutex`-guarded LRU, so concurrent workers rarely contend
//! on the same lock. Within a bucket, every candidate slot is compared
//! against the **full** key bytes, so a 64-bit collision can never
//! return (or displace) the wrong entry — the hash only routes, the
//! bytes decide. The collision seam is testable: a test-only constructor
//! overrides the hash function, forcing distinct keys onto one hash and
//! one shard.
//!
//! Eviction is exact LRU per shard via an intrusive doubly-linked list
//! over a slab: `get`, `insert`, and evict are all O(1) (plus the length
//! of the — almost always singleton — collision bucket). Hit, miss,
//! insertion, and eviction counts are kept in atomics and surface in the
//! server's `GET /metrics`.
//!
//! # Examples
//!
//! ```
//! use bi_service::cache::{CacheConfig, ShardedLru};
//!
//! let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
//!     capacity: 2,
//!     shards: 1,
//! });
//! cache.insert(b"a", 1);
//! cache.insert(b"b", 2);
//! assert_eq!(cache.get(b"a"), Some(1));
//! cache.insert(b"c", 3); // evicts "b", the least recently used
//! assert_eq!(cache.get(b"b"), None);
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bi_util::{fnv1a, FnvBuildHasher};

/// No-link sentinel of the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Sizing of a [`ShardedLru`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry capacity across all shards (`0` disables caching).
    pub capacity: usize,
    /// Number of independently locked shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    /// 4096 entries across 16 shards.
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 16,
        }
    }
}

/// A point-in-time snapshot of cache effectiveness, reported by
/// `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries inserted (updates of an existing key count too).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

/// One LRU slab entry: the key (for exact comparison), its routing hash
/// (to find the collision bucket again on evict), the value, and the
/// intrusive recency links.
struct Entry<V> {
    key: Arc<[u8]>,
    hash: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an exact LRU over a slab, indexed by routing hash into
/// collision buckets of slots. Buckets are almost always singletons; the
/// full key bytes decide within one.
struct Shard<V> {
    /// Routing hash → slab slots carrying that hash.
    index: HashMap<u64, Vec<usize>, FnvBuildHasher>,
    slots: Vec<Entry<V>>,
    free: Vec<usize>,
    /// Most recently used slot (`NIL` when empty).
    head: usize,
    /// Least recently used slot (`NIL` when empty).
    tail: usize,
    /// Live entries (buckets can hold several, so `index.len()` is not it).
    len: usize,
    capacity: usize,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize) -> Self {
        Shard {
            index: HashMap::with_hasher(FnvBuildHasher),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
        }
    }

    /// Detaches `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Attaches `slot` at the most-recently-used end.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    /// The slot in `hash`'s bucket whose key bytes equal `key`, if any —
    /// the one place hash collisions are disambiguated.
    fn find(&self, hash: u64, key: &[u8]) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&slot| self.slots[slot].key.as_ref() == key)
    }

    fn get(&mut self, hash: u64, key: &[u8]) -> Option<V> {
        let slot = self.find(hash, key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].value.clone())
    }

    /// Drops `slot` from its collision bucket (removing the bucket when
    /// it empties).
    fn remove_from_bucket(&mut self, slot: usize) {
        let hash = self.slots[slot].hash;
        if let Some(bucket) = self.index.get_mut(&hash) {
            bucket.retain(|&s| s != slot);
            if bucket.is_empty() {
                self.index.remove(&hash);
            }
        }
    }

    /// Inserts or updates; returns whether an eviction happened.
    fn insert(&mut self, hash: u64, key: &[u8], value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(slot) = self.find(hash, key) {
            self.slots[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return false;
        }
        let mut evicted = false;
        if self.len == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty shard at capacity");
            self.unlink(lru);
            self.remove_from_bucket(lru);
            self.free.push(lru);
            self.len -= 1;
            evicted = true;
        }
        let entry = Entry {
            key: Arc::from(key),
            hash,
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = entry;
                slot
            }
            None => {
                self.slots.push(entry);
                self.slots.len() - 1
            }
        };
        self.index.entry(hash).or_default().push(slot);
        self.len += 1;
        self.push_front(slot);
        evicted
    }
}

/// A sharded, capacity-bounded, exact-LRU cache keyed by canonical bytes.
///
/// Values are cloned out on hit — use a cheap-to-clone `V` (the service
/// stores `Arc<[u8]>` response bodies).
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// The routing hash (FNV-1a in production; overridable in tests to
    /// force collisions through the full-key comparison seam).
    hash_fn: fn(&[u8]) -> u64,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a cache with `config.capacity` entries spread over
    /// `config.shards` independently locked shards. The shard count is
    /// clamped to the capacity so no shard ends up with zero entries
    /// (which would silently make part of the keyspace uncacheable).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self::with_hash_fn(config, fnv1a)
    }

    /// [`ShardedLru::new`] with an explicit routing-hash function — the
    /// collision tests force every key onto one hash and one shard to
    /// prove the byte comparison (not the hash) decides identity.
    fn with_hash_fn(config: CacheConfig, hash_fn: fn(&[u8]) -> u64) -> Self {
        let shards = config.shards.max(1).min(config.capacity.max(1));
        // Spread the capacity as evenly as possible; the first `rem`
        // shards take one extra entry so the total is exact.
        let per = config.capacity / shards;
        let rem = config.capacity % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|i| Mutex::new(Shard::new(per + usize::from(i < rem))))
                .collect(),
            hash_fn,
            capacity: config.capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard<V>> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        let hash = (self.hash_fn)(key);
        let result = self
            .shard(hash)
            .lock()
            .expect("cache shard poisoned")
            .get(hash, key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Inserts (or refreshes) `key → value`, evicting the shard's least
    /// recently used entry if the shard is full.
    pub fn insert(&self, key: &[u8], value: V) {
        let hash = (self.hash_fn)(key);
        let evicted = self
            .shard(hash)
            .lock()
            .expect("cache shard poisoned")
            .insert(hash, key, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time effectiveness snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len)
                .sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_is_exact_within_a_shard() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            capacity: 3,
            shards: 1,
        });
        cache.insert(b"a", 1);
        cache.insert(b"b", 2);
        cache.insert(b"c", 3);
        // Touch "a" so "b" becomes the LRU.
        assert_eq!(cache.get(b"a"), Some(1));
        cache.insert(b"d", 4);
        assert_eq!(cache.get(b"b"), None, "LRU entry must be evicted");
        assert_eq!(cache.get(b"a"), Some(1));
        assert_eq!(cache.get(b"c"), Some(3));
        assert_eq!(cache.get(b"d"), Some(4));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn updates_refresh_instead_of_evicting() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        cache.insert(b"a", 1);
        cache.insert(b"b", 2);
        cache.insert(b"a", 10); // update, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(b"a"), Some(10));
        cache.insert(b"c", 3); // now "b" is LRU
        assert_eq!(cache.get(b"b"), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            capacity: 0,
            shards: 4,
        });
        cache.insert(b"a", 1);
        assert_eq!(cache.get(b"a"), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn capacity_spreads_exactly_across_shards() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            capacity: 10,
            shards: 4,
        });
        let per: Vec<usize> = cache
            .shards
            .iter()
            .map(|s| s.lock().unwrap().capacity)
            .collect();
        assert_eq!(per.iter().sum::<usize>(), 10);
        assert_eq!(*per.iter().max().unwrap() - *per.iter().min().unwrap(), 1);
    }

    #[test]
    fn shard_count_clamps_to_capacity_so_every_shard_caches() {
        // capacity 8 over 16 configured shards: without clamping, half
        // the keyspace would route to zero-capacity shards and never
        // cache.
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            capacity: 8,
            shards: 16,
        });
        assert_eq!(cache.shards.len(), 8);
        for i in 0..200u32 {
            let key = format!("key-{i}");
            cache.insert(key.as_bytes(), i);
            assert_eq!(
                cache.get(key.as_bytes()),
                Some(i),
                "a just-inserted key must always be retrievable"
            );
        }
    }

    #[test]
    fn heavy_reuse_keeps_hot_keys_across_shards() {
        let cache: ShardedLru<usize> = ShardedLru::new(CacheConfig {
            capacity: 64,
            shards: 8,
        });
        for round in 0..4 {
            for i in 0..32 {
                let key = format!("game-{i}");
                match cache.get(key.as_bytes()) {
                    Some(v) => assert_eq!(v, i),
                    None => {
                        assert_eq!(round, 0, "only the first round may miss");
                        cache.insert(key.as_bytes(), i);
                    }
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 32);
        assert_eq!(stats.hits, 3 * 32);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(CacheConfig {
            capacity: 128,
            shards: 8,
        }));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = format!("k{}", i % 50);
                        if let Some(v) = cache.get(key.as_bytes()) {
                            assert_eq!(v, i % 50, "thread {t}");
                        } else {
                            cache.insert(key.as_bytes(), i % 50);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.entries <= 50);
    }

    /// Every key hashes to 42 — all keys share one hash, one bucket, and
    /// one shard, so only the full-key comparison can tell them apart.
    fn colliding<V: Clone>(capacity: usize) -> ShardedLru<V> {
        ShardedLru::with_hash_fn(
            CacheConfig {
                capacity,
                shards: 4, // >1 configured: the collision also pins the shard
            },
            |_| 42,
        )
    }

    #[test]
    fn forced_collisions_do_not_alias_on_hit() {
        let cache = colliding::<u32>(8);
        cache.insert(b"alpha", 1);
        cache.insert(b"beta", 2);
        // Same 64-bit hash, same shard, same bucket — each key still
        // answers with its own value.
        assert_eq!(cache.get(b"alpha"), Some(1));
        assert_eq!(cache.get(b"beta"), Some(2));
        // A third colliding key that was never inserted must miss, not
        // alias onto a bucket-mate.
        assert_eq!(cache.get(b"gamma"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn forced_collisions_do_not_alias_on_insert() {
        let cache = colliding::<u32>(8);
        cache.insert(b"alpha", 1);
        // An insert of a colliding-but-different key must create a new
        // entry, not overwrite the bucket-mate …
        cache.insert(b"beta", 2);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.get(b"alpha"), Some(1));
        // … while re-inserting the same key bytes must update in place.
        cache.insert(b"alpha", 10);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.get(b"alpha"), Some(10));
        assert_eq!(cache.get(b"beta"), Some(2));
    }

    #[test]
    fn forced_collisions_evict_exactly_the_lru_key() {
        // capacity 8 over 4 shards: the pinned shard holds 2 entries, so
        // the third colliding insert must evict the LRU bucket-mate.
        let cache = colliding::<u32>(8);
        cache.insert(b"alpha", 1);
        cache.insert(b"beta", 2);
        // Touch "alpha" so "beta" is the LRU; the eviction must remove
        // "beta" from the shared bucket without disturbing "alpha".
        assert_eq!(cache.get(b"alpha"), Some(1));
        cache.insert(b"gamma", 3);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(b"beta"), None, "the LRU bucket-mate is gone");
        assert_eq!(cache.get(b"alpha"), Some(1));
        assert_eq!(cache.get(b"gamma"), Some(3));
        // The bucket stays coherent after eviction: the evicted key can
        // come back and all three rotate correctly.
        cache.insert(b"beta", 20);
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.get(b"beta"), Some(20));
        assert_eq!(cache.stats().entries, 2);
    }
}
