//! Service counters and the latency histograms, surfaced as JSON by
//! `GET /metrics`.
//!
//! The histogram types themselves now live in [`bi_obs::hist`] (the
//! router shares them) and are re-exported here so existing callers
//! keep compiling; this module owns the counter set and the
//! `GET /metrics` document shape.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bi_util::Json;

use crate::cache::CacheStats;
use crate::persist::DiskTierStats;

pub use bi_obs::{HistogramSnapshot, LatencyHistogram, StageTimings};

/// Monotonic counters of the serving layer. All relaxed atomics — the
/// numbers are observability, not synchronization.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Requests fully parsed and routed (any endpoint).
    pub requests_total: AtomicU64,
    /// `POST /solve` requests routed.
    pub solve_requests: AtomicU64,
    /// `POST /solve_batch` requests routed.
    pub batch_requests: AtomicU64,
    /// Individual games solved by the engine (cache misses, including
    /// every game of a batch that missed).
    pub solves_computed: AtomicU64,
    /// Responses installed via `POST /cache_put` — replication
    /// write-throughs and read-repairs shipped by a router peer; each is
    /// a solve this node never had to run.
    pub cache_puts: AtomicU64,
    /// Responses with 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with 4xx status (decode/validation failures).
    pub responses_4xx: AtomicU64,
    /// Responses with 5xx status, excluding queue rejections.
    pub responses_5xx: AtomicU64,
    /// Connections answered `503` because the request queue was full.
    pub rejected_busy: AtomicU64,
    /// Requests answered `429` because the pending-solve queue was full
    /// (backpressure, not failure — the client should retry).
    pub backpressure_429: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open (a gauge, reactor-owned).
    pub open_connections: AtomicU64,
    /// Reactor poll returns that reported at least one ready fd.
    pub reactor_wakeups: AtomicU64,
    /// `POST /solve` cache hits served straight off the raw-byte index —
    /// no JSON value tree was built.
    pub zero_copy_hits: AtomicU64,
    /// `POST /solve` cache hits that went through the decode path (body
    /// non-canonical, or first sighting of these exact bytes).
    pub parsed_hits: AtomicU64,
    /// Engine solves whose report carried orbit statistics (symmetry was
    /// detected and the sweep was orbit-reduced).
    pub orbit_sweeps: AtomicU64,
    /// Cumulative canonical orbit representatives actually evaluated by
    /// orbit-reduced solves (saturating).
    pub orbits_evaluated: AtomicU64,
    /// Cumulative profiles those orbits represent (saturating) — the
    /// work a full sweep would have done; the ratio to
    /// `orbits_evaluated` is the fleet-wide orbit-reduction factor.
    pub orbit_profiles_represented: AtomicU64,
    /// Solve jobs currently inside the solver pool (a gauge) — together
    /// with `cfg_queue_capacity`, a router can read how close a backend
    /// is to shedding load.
    pub solves_in_flight: AtomicU64,
    /// Configured pending-solve queue bound (a gauge, set at start).
    pub cfg_queue_capacity: AtomicU64,
    /// Configured idle keep-alive timeout in ms (a gauge, set at start).
    pub cfg_idle_timeout_ms: AtomicU64,
    /// Resolved solver-pool size (a gauge, set at start).
    pub cfg_workers: AtomicU64,
    /// Configured connection cap (a gauge, set at start).
    pub cfg_max_connections: AtomicU64,
    /// Engine solve latency, one sample per cold engine invocation (a
    /// `POST /solve` cache miss or one `solve_many` batch of misses),
    /// whether or not the solve succeeded — cache hits never touch it,
    /// so this is the cold-path histogram.
    pub solve_us: LatencyHistogram,
    /// Per-pipeline-stage latency histograms (parse, cache, solve,
    /// encode, write, disk_promote, …) — recorded on every request
    /// whether or not its spans are still in the flight recorder, and
    /// surfaced under `"stages"`.
    pub stages: StageTimings,
    start: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            requests_total: AtomicU64::new(0),
            solve_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            solves_computed: AtomicU64::new(0),
            cache_puts: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            backpressure_429: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            zero_copy_hits: AtomicU64::new(0),
            parsed_hits: AtomicU64::new(0),
            orbit_sweeps: AtomicU64::new(0),
            orbits_evaluated: AtomicU64::new(0),
            orbit_profiles_represented: AtomicU64::new(0),
            solves_in_flight: AtomicU64::new(0),
            cfg_queue_capacity: AtomicU64::new(0),
            cfg_idle_timeout_ms: AtomicU64::new(0),
            cfg_workers: AtomicU64::new(0),
            cfg_max_connections: AtomicU64::new(0),
            solve_us: LatencyHistogram::default(),
            stages: StageTimings::default(),
            start: Instant::now(),
        }
    }
}

impl ServiceMetrics {
    /// Bumps the status-class counter for a response.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one orbit-reduced engine solve: the orbits it evaluated
    /// and the profiles those orbits represent, saturating into the
    /// cumulative counters (orbit reductions routinely represent spaces
    /// far beyond `u64`).
    pub fn record_orbit_sweep(&self, orbits_evaluated: u128, profiles_represented: u128) {
        fn saturating_add(counter: &AtomicU64, v: u128) {
            let v = u64::try_from(v).unwrap_or(u64::MAX);
            let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(v))
            });
        }
        self.orbit_sweeps.fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.orbits_evaluated, orbits_evaluated);
        saturating_add(&self.orbit_profiles_represented, profiles_represented);
    }

    /// Sets the start-time configuration gauges the document reports
    /// under `config` (the router reads them to complete its
    /// backpressure view of each backend).
    pub fn set_config_gauges(
        &self,
        queue_capacity: usize,
        idle_timeout_ms: u64,
        workers: usize,
        max_connections: usize,
    ) {
        let store = |g: &AtomicU64, v: u64| g.store(v, Ordering::Relaxed);
        store(&self.cfg_queue_capacity, queue_capacity as u64);
        store(&self.cfg_idle_timeout_ms, idle_timeout_ms);
        store(&self.cfg_workers, workers as u64);
        store(&self.cfg_max_connections, max_connections as u64);
    }

    /// The `GET /metrics` document: service counters, the cache
    /// snapshot, and (when the node has one) the disk tier's.
    #[must_use]
    pub fn to_json(&self, cache: CacheStats, disk: Option<DiskTierStats>) -> Json {
        let count = |c: &AtomicU64| Json::from_u64(c.load(Ordering::Relaxed));
        let mut doc = vec![
            (
                "uptime_seconds".into(),
                Json::num(self.start.elapsed().as_secs_f64()),
            ),
            ("connections_total".into(), count(&self.connections_total)),
            ("requests_total".into(), count(&self.requests_total)),
            ("solve_requests".into(), count(&self.solve_requests)),
            ("batch_requests".into(), count(&self.batch_requests)),
            ("solves_computed".into(), count(&self.solves_computed)),
            ("cache_puts".into(), count(&self.cache_puts)),
            ("responses_2xx".into(), count(&self.responses_2xx)),
            ("responses_4xx".into(), count(&self.responses_4xx)),
            ("responses_5xx".into(), count(&self.responses_5xx)),
            ("rejected_busy".into(), count(&self.rejected_busy)),
            (
                "config".into(),
                Json::Obj(vec![
                    ("queue_capacity".into(), count(&self.cfg_queue_capacity)),
                    ("idle_timeout_ms".into(), count(&self.cfg_idle_timeout_ms)),
                    ("workers".into(), count(&self.cfg_workers)),
                    ("max_connections".into(), count(&self.cfg_max_connections)),
                ]),
            ),
            (
                "reactor".into(),
                Json::Obj(vec![
                    ("open_connections".into(), count(&self.open_connections)),
                    ("wakeups".into(), count(&self.reactor_wakeups)),
                    ("zero_copy_hits".into(), count(&self.zero_copy_hits)),
                    ("parsed_hits".into(), count(&self.parsed_hits)),
                    ("backpressure_429".into(), count(&self.backpressure_429)),
                    ("solves_in_flight".into(), count(&self.solves_in_flight)),
                ]),
            ),
            (
                "orbit".into(),
                Json::Obj(vec![
                    ("sweeps".into(), count(&self.orbit_sweeps)),
                    ("orbits_evaluated".into(), count(&self.orbits_evaluated)),
                    (
                        "profiles_represented".into(),
                        count(&self.orbit_profiles_represented),
                    ),
                ]),
            ),
            ("solve_us".into(), self.solve_us.to_json()),
            ("stages".into(), self.stages.to_json()),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(cache.hits)),
                    ("misses".into(), Json::from_u64(cache.misses)),
                    ("insertions".into(), Json::from_u64(cache.insertions)),
                    ("evictions".into(), Json::from_u64(cache.evictions)),
                    ("entries".into(), Json::num(cache.entries as f64)),
                    ("capacity".into(), Json::num(cache.capacity as f64)),
                ]),
            ),
        ];
        if let Some(disk) = disk {
            doc.push((
                "disk".into(),
                Json::Obj(vec![
                    (
                        "recovered_records".into(),
                        Json::from_u64(disk.recovered_records),
                    ),
                    (
                        "truncated_bytes".into(),
                        Json::from_u64(disk.truncated_bytes),
                    ),
                    ("hits".into(), Json::from_u64(disk.hits)),
                    ("misses".into(), Json::from_u64(disk.misses)),
                    ("appends".into(), Json::from_u64(disk.appends)),
                    (
                        "dropped_appends".into(),
                        Json::from_u64(disk.dropped_appends),
                    ),
                    ("compactions".into(), Json::from_u64(disk.compactions)),
                    ("log_bytes".into(), Json::from_u64(disk.log_bytes)),
                    ("live_bytes".into(), Json::from_u64(disk.live_bytes)),
                    ("entries".into(), Json::num(disk.entries as f64)),
                ]),
            ));
        }
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_are_counted() {
        let m = ServiceMetrics::default();
        m.record_status(200);
        m.record_status(204);
        m.record_status(404);
        m.record_status(503);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.5), 0);
        // 90 fast samples in [64, 128) µs, 10 slow ones in [8192, 16384).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(0.50), 127);
        assert_eq!(h.percentile_us(0.90), 127);
        assert_eq!(h.percentile_us(0.99), 16_383);
        // Zero and huge samples clamp into the terminal buckets.
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 102);
        let doc = h.to_json();
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(102));
        assert!(doc.get("p99").is_some());
    }

    #[test]
    fn metrics_document_includes_solve_histogram() {
        let m = ServiceMetrics::default();
        m.solve_us.record(300);
        let doc = m.to_json(
            CacheStats {
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                entries: 0,
                capacity: 64,
            },
            None,
        );
        let solve = doc.get("solve_us").unwrap();
        assert_eq!(solve.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(solve.get("p50").unwrap().as_u64(), Some(511));
    }

    #[test]
    fn metrics_document_includes_every_stage_histogram() {
        use bi_obs::Stage;
        let m = ServiceMetrics::default();
        m.stages.record(Stage::Parse, 2);
        m.stages.record(Stage::Write, 5);
        let doc = m.to_json(CacheStats::default(), None);
        let stages = doc.get("stages").unwrap();
        for stage in Stage::ALL {
            assert!(
                stages.get(stage.name()).is_some(),
                "stage {} missing from /metrics",
                stage.name()
            );
        }
        assert_eq!(
            stages.get("parse").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn orbit_counters_accumulate_and_saturate() {
        let m = ServiceMetrics::default();
        m.record_orbit_sweep(4, 8);
        m.record_orbit_sweep(6, u128::MAX);
        assert_eq!(m.orbit_sweeps.load(Ordering::Relaxed), 2);
        assert_eq!(m.orbits_evaluated.load(Ordering::Relaxed), 10);
        assert_eq!(
            m.orbit_profiles_represented.load(Ordering::Relaxed),
            u64::MAX
        );
        let doc = m.to_json(
            CacheStats {
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                entries: 0,
                capacity: 64,
            },
            None,
        );
        let orbit = doc.get("orbit").unwrap();
        assert_eq!(orbit.get("sweeps").unwrap().as_u64(), Some(2));
        assert_eq!(orbit.get("orbits_evaluated").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn metrics_document_includes_reactor_counters() {
        let m = ServiceMetrics::default();
        m.zero_copy_hits.fetch_add(7, Ordering::Relaxed);
        m.open_connections.fetch_add(3, Ordering::Relaxed);
        m.backpressure_429.fetch_add(1, Ordering::Relaxed);
        let doc = m.to_json(CacheStats::default(), None);
        let reactor = doc.get("reactor").unwrap();
        assert_eq!(reactor.get("zero_copy_hits").unwrap().as_u64(), Some(7));
        assert_eq!(reactor.get("parsed_hits").unwrap().as_u64(), Some(0));
        assert_eq!(reactor.get("open_connections").unwrap().as_u64(), Some(3));
        assert_eq!(reactor.get("backpressure_429").unwrap().as_u64(), Some(1));
        assert_eq!(reactor.get("wakeups").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn metrics_document_includes_cache_stats() {
        let m = ServiceMetrics::default();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        let doc = m.to_json(
            CacheStats {
                hits: 5,
                misses: 2,
                insertions: 2,
                evictions: 1,
                entries: 1,
                capacity: 64,
            },
            None,
        );
        assert_eq!(doc.get("requests_total").unwrap().as_u64(), Some(3));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(5));
        assert_eq!(cache.get("capacity").unwrap().as_usize(), Some(64));
    }
}
