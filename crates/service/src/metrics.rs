//! Service counters, surfaced as JSON by `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bi_util::Json;

use crate::cache::CacheStats;

/// Monotonic counters of the serving layer. All relaxed atomics — the
/// numbers are observability, not synchronization.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Requests fully parsed and routed (any endpoint).
    pub requests_total: AtomicU64,
    /// `POST /solve` requests routed.
    pub solve_requests: AtomicU64,
    /// `POST /solve_batch` requests routed.
    pub batch_requests: AtomicU64,
    /// Individual games solved by the engine (cache misses, including
    /// every game of a batch that missed).
    pub solves_computed: AtomicU64,
    /// Responses with 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with 4xx status (decode/validation failures).
    pub responses_4xx: AtomicU64,
    /// Responses with 5xx status, excluding queue rejections.
    pub responses_5xx: AtomicU64,
    /// Connections answered `503` because the request queue was full.
    pub rejected_busy: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    start: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            requests_total: AtomicU64::new(0),
            solve_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            solves_computed: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            start: Instant::now(),
        }
    }
}

impl ServiceMetrics {
    /// Bumps the status-class counter for a response.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The `GET /metrics` document: service counters plus the cache
    /// snapshot.
    #[must_use]
    pub fn to_json(&self, cache: CacheStats) -> Json {
        let count = |c: &AtomicU64| Json::from_u64(c.load(Ordering::Relaxed));
        Json::Obj(vec![
            (
                "uptime_seconds".into(),
                Json::num(self.start.elapsed().as_secs_f64()),
            ),
            ("connections_total".into(), count(&self.connections_total)),
            ("requests_total".into(), count(&self.requests_total)),
            ("solve_requests".into(), count(&self.solve_requests)),
            ("batch_requests".into(), count(&self.batch_requests)),
            ("solves_computed".into(), count(&self.solves_computed)),
            ("responses_2xx".into(), count(&self.responses_2xx)),
            ("responses_4xx".into(), count(&self.responses_4xx)),
            ("responses_5xx".into(), count(&self.responses_5xx)),
            ("rejected_busy".into(), count(&self.rejected_busy)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(cache.hits)),
                    ("misses".into(), Json::from_u64(cache.misses)),
                    ("insertions".into(), Json::from_u64(cache.insertions)),
                    ("evictions".into(), Json::from_u64(cache.evictions)),
                    ("entries".into(), Json::num(cache.entries as f64)),
                    ("capacity".into(), Json::num(cache.capacity as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_are_counted() {
        let m = ServiceMetrics::default();
        m.record_status(200);
        m.record_status(204);
        m.record_status(404);
        m.record_status(503);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn metrics_document_includes_cache_stats() {
        let m = ServiceMetrics::default();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        let doc = m.to_json(CacheStats {
            hits: 5,
            misses: 2,
            insertions: 2,
            evictions: 1,
            entries: 1,
            capacity: 64,
        });
        assert_eq!(doc.get("requests_total").unwrap().as_u64(), Some(3));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(5));
        assert_eq!(cache.get("capacity").unwrap().as_usize(), Some(64));
    }
}
