//! The `bi-router` engine: consistent-hash routing of solve traffic
//! across N `bi-serve` backends.
//!
//! Every measure the engine serves is a pure function of the canonical
//! request bytes, so the content-addressed cache key
//! ([`SolveService::cache_key`]) *is* the result identity — which makes
//! horizontal sharding trivially correct: route each request to the
//! backend owning its key and that backend's cache concentrates exactly
//! its arc of the key space. The ring is a classic consistent hash with
//! virtual nodes over the same 64-bit FNV-1a space the cache indexes
//! with ([`bi_util::fnv1a`]).
//!
//! ```text
//!   client ──► bi-router ──hash(cache_key)──► ring ──► backend k
//!                 │                            │ backend k dead
//!                 │                            ▼
//!                 │                  clockwise successor walk
//!                 │ every backend dead
//!                 ▼
//!        fallback: local solve │ 503
//! ```
//!
//! **Routing is deterministic**: the ring is built once from the
//! configured backend list, so the same key always maps to the same
//! backend while the live set is unchanged. Liveness is handled by
//! walking clockwise past dead backends at lookup time — ejecting a
//! backend therefore moves **only the ejected backend's arcs** (every
//! key whose first live point belonged to someone else keeps its
//! mapping), and readmission restores the original assignment exactly.
//! Both properties are locked by unit tests below.
//!
//! Health is probed (`GET /healthz`) on an interval; forwarding failures
//! count against the same consecutive-failure threshold, so a backend
//! that dies mid-burst is ejected by the traffic itself rather than
//! waiting for the next probe cycle. Upstream connections are pooled and
//! kept alive per backend. `/solve_batch` bodies are split by each
//! game's key, forwarded as sub-batches, and re-merged in request order.
//!
//! **Replication** (`--replication R`): each key's *intended owners* are
//! its first R distinct ring successors, liveness-blind
//! ([`HashRing::route_replicas`]). Serving still walks the live ring —
//! when the primary is dead the next live replica answers from its own
//! copy — and a background worker brings the owners back in sync over
//! `POST /cache_put`: freshly solved misses are **written through** to
//! the other live owners, and owners that were dead at serve time get a
//! **read-repair** queued until they return, so a restarted backend is
//! repopulated without re-solving anything. Responses are pure functions
//! of the canonical request bytes, which is what makes shipping them
//! byte-for-byte between replicas correct.
//!
//! **Retries**: every `/solve` gets a deadline budget. Transport
//! failures fail over to the next live replica immediately (and feed
//! ejection); retryable statuses (`429`, `5xx`) are retried across
//! replicas and rounds with capped, deterministically jittered
//! exponential backoff, honoring an upstream `Retry-After`. An exhausted
//! budget falls back per [`FallbackMode`], exactly like a dead cluster.
//!
//! **Tracing**: every downstream request gets a 64-bit trace id —
//! adopted from an `X-Bi-Trace` header when present, minted otherwise —
//! and a root `route` span. The router records `ring_lookup` and one
//! `upstream` span per forward attempt into its [`Recorder`], and
//! forwards the trace id plus the upstream span id (`X-Bi-Trace` /
//! `X-Bi-Parent`) so the backend's own spans nest under this hop. The
//! local fallback engine shares the router's recorder, so fallback
//! solves land in the same `GET /debug/trace` dump.

use std::collections::{HashSet, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bi_obs::{Recorder, Stage, StageTimings, TraceCtx};
use bi_util::{fnv1a, Decode, Encode, Json};

use crate::cache::{CacheConfig, ShardedLru};
use crate::http::{read_request, ClientResponse, HttpClient, Response};
use crate::service::{error_body, BatchRequest, FastOutcome, SolveRequest, SolveService};

/// What the router does with a request when every backend is dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackMode {
    /// Solve locally on the router (it embeds a full [`SolveService`]) —
    /// degraded latency, no availability loss.
    Local,
    /// Answer `503 Service Unavailable` — the router never computes.
    Unavailable,
}

/// A consistent-hash ring: `vnodes` virtual points per backend over the
/// 64-bit FNV-1a space, routing a key hash to the first live backend at
/// or clockwise after it.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend index)`, sorted by point; ties (64-bit point
    /// collisions across backends) keep the lowest index, so the ring is
    /// a pure function of the backend list.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds the ring for `backends` with `vnodes` virtual points each
    /// (point `v` of backend `b` is `fnv1a("vnode:{b}:{v}")`).
    #[must_use]
    pub fn new<S: AsRef<str>>(backends: &[S], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (i, backend) in backends.iter().enumerate() {
            for v in 0..vnodes {
                let point = fnv1a(format!("vnode:{}:{v}", backend.as_ref()).as_bytes());
                points.push((point, i));
            }
        }
        points.sort_unstable();
        points.dedup_by(|a, b| a.0 == b.0);
        HashRing {
            points,
            backends: backends.len(),
        }
    }

    /// How many backends the ring was built over.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend owning `hash`: the first point at or clockwise after
    /// it whose backend `live` accepts, or `None` when none does.
    /// Skipping dead backends *here* (rather than rebuilding the ring)
    /// is what makes an eject move only the ejected arcs.
    pub fn route(&self, hash: u64, live: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        (0..n)
            .map(|k| self.points[(start + k) % n].1)
            .find(|&idx| live(idx))
    }

    /// The first `r` **distinct** backends at or clockwise after `hash`
    /// that `live` accepts, in ring order — the key's replica owners.
    /// `route` is exactly the first element. Returns fewer than `r`
    /// owners when fewer distinct backends qualify. Because dead
    /// backends are skipped at lookup time (never rebuilt into the
    /// ring), an eject moves only the ejected backend's arcs: every
    /// surviving owner keeps its position in every key's owner list.
    pub fn route_replicas(&self, hash: u64, r: usize, live: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut owners = Vec::with_capacity(r.min(self.backends));
        if self.points.is_empty() || r == 0 {
            return owners;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        for k in 0..n {
            let idx = self.points[(start + k) % n].1;
            if live(idx) && !owners.contains(&idx) {
                owners.push(idx);
                if owners.len() == r {
                    break;
                }
            }
        }
        owners
    }
}

/// Router addressing, ring shape, health policy, and timeouts.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; port `0` for ephemeral.
    pub addr: String,
    /// Backend `host:port` addresses the ring is built over.
    pub backends: Vec<String>,
    /// Virtual points per backend.
    pub vnodes: usize,
    /// What to do when every backend is dead.
    pub fallback: FallbackMode,
    /// How often the prober sweeps `/healthz` across backends.
    pub probe_interval: Duration,
    /// Consecutive failures (probe or forward) that eject a backend.
    pub fail_threshold: u32,
    /// Idle keep-alive timeout for downstream client connections.
    pub read_timeout: Duration,
    /// Connect deadline for upstream sockets (forwarding and probing).
    pub connect_timeout: Duration,
    /// Response deadline for a forwarded request.
    pub upstream_timeout: Duration,
    /// Pooled keep-alive connections retained per backend.
    pub pool_capacity: usize,
    /// Sizing of the body-bytes → routing-hash cache (skips re-decoding
    /// hot canonical bodies).
    pub key_cache: CacheConfig,
    /// When set, any request whose end-to-end routing time reaches this
    /// many microseconds gets its span tree logged at `warn`.
    pub trace_slow_us: Option<u64>,
    /// Replica owners per key (clamped to ≥ 1). At `1` the router
    /// shards exactly as before (plus read-repair after a failover); at
    /// `R` each solved result is written through to all `R` owners, so
    /// killing any single backend loses no cached work.
    pub replication: usize,
    /// Total deadline budget per `/solve`: retries and backoff sleeps
    /// stop once it is spent and the request falls back per
    /// [`FallbackMode`].
    pub request_deadline: Duration,
    /// First-round retry backoff (doubled per round, deterministically
    /// jittered, capped by `retry_max_backoff`).
    pub retry_base_backoff: Duration,
    /// Backoff ceiling across retry rounds.
    pub retry_max_backoff: Duration,
    /// Retry rounds per `/solve` (clamped to ≥ 1): each round walks
    /// every live replica once; later rounds re-try backends that
    /// answered a retryable status (`429`/`5xx`) earlier.
    pub max_retry_rounds: u32,
    /// Pending write-through/read-repair deliveries retained; overflow
    /// is dropped (and counted) rather than growing without bound.
    pub repair_queue_capacity: usize,
}

impl Default for RouterConfig {
    /// Ephemeral port, no backends, 64 vnodes, local fallback, 500 ms
    /// probes, 2-failure ejection, 8-connection pools.
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            vnodes: 64,
            fallback: FallbackMode::Local,
            probe_interval: Duration::from_millis(500),
            fail_threshold: 2,
            read_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            upstream_timeout: Duration::from_secs(30),
            pool_capacity: 8,
            key_cache: CacheConfig::default(),
            trace_slow_us: None,
            replication: 1,
            request_deadline: Duration::from_secs(30),
            retry_base_backoff: Duration::from_millis(10),
            retry_max_backoff: Duration::from_millis(500),
            max_retry_rounds: 3,
            repair_queue_capacity: 4096,
        }
    }
}

/// One upstream backend: liveness, failure accounting, and the
/// keep-alive connection pool.
struct Backend {
    addr: String,
    alive: AtomicBool,
    consecutive_failures: AtomicU64,
    pool: Mutex<Vec<HttpClient>>,
    forwarded: AtomicU64,
    upstream_errors: AtomicU64,
    ejects: AtomicU64,
    readmits: AtomicU64,
    /// Milliseconds since router start of the last `/healthz` probe
    /// (`u64::MAX` until the first probe lands) — surfaced by the
    /// router's aggregated `/healthz`.
    last_probe_ms: AtomicU64,
}

impl Backend {
    fn new(addr: String) -> Backend {
        Backend {
            addr,
            alive: AtomicBool::new(true),
            consecutive_failures: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            forwarded: AtomicU64::new(0),
            upstream_errors: AtomicU64::new(0),
            ejects: AtomicU64::new(0),
            readmits: AtomicU64::new(0),
            last_probe_ms: AtomicU64::new(u64::MAX),
        }
    }

    /// A successful probe or forward: clears the failure streak and
    /// readmits the backend if it was ejected.
    fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if !self.alive.swap(true, Ordering::Relaxed) {
            self.readmits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A failed probe or forward: ejects at the threshold. Forwarding
    /// failures land here too, so a backend killed mid-burst is ejected
    /// by the very traffic that notices, not the next probe cycle.
    fn record_failure(&self, threshold: u32) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= u64::from(threshold) && self.alive.swap(false, Ordering::Relaxed) {
            self.ejects.fetch_add(1, Ordering::Relaxed);
            // A dead backend's pooled connections are dead too.
            self.pool.lock().expect("pool poisoned").clear();
        }
    }
}

/// The router's own counters (`GET /metrics`).
#[derive(Default)]
struct RouterMetrics {
    requests_total: AtomicU64,
    solve_requests: AtomicU64,
    batch_requests: AtomicU64,
    connections_total: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    fallback_local: AtomicU64,
    fallback_503: AtomicU64,
    /// Forward attempts that failed at the transport (connect/read) —
    /// these feed ejection and fail over to the next replica.
    retries_transport: AtomicU64,
    /// Forward attempts answered a retryable `5xx` (the backend is
    /// alive; the work was lost — retried without ejection credit).
    retries_5xx: AtomicU64,
    /// Forward attempts answered `429` (shed load; retried after the
    /// upstream's `Retry-After` when present).
    retries_429: AtomicU64,
    /// Write-through `cache_put` deliveries to owners that were live
    /// when the result was solved.
    replication_writes: AtomicU64,
    /// Read-repair `cache_put` deliveries to owners that were dead at
    /// serve time and have since returned.
    read_repairs: AtomicU64,
    /// Repair jobs dropped (queue overflow or delivery given up).
    repair_drops: AtomicU64,
    /// Per-stage latency histograms (`route`, `ring_lookup`,
    /// `upstream`, …) — fed on every request regardless of tracing.
    stages: StageTimings,
}

impl RouterMetrics {
    fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One pending `POST /cache_put` delivery: bring `backend` a copy of
/// the response for the key hashing to `hash`.
struct RepairJob {
    backend: usize,
    hash: u64,
    /// The framed `cache_put` body (`[request_len][request][response]`).
    body: Vec<u8>,
    /// `true` when the owner was dead at serve time (a read-repair);
    /// `false` for a write-through to a live owner.
    repair: bool,
    /// Delivery attempts so far (given up — and counted dropped — at
    /// [`REPAIR_MAX_ATTEMPTS`]).
    attempts: u32,
}

/// The bounded write-through/read-repair delivery queue, deduplicated
/// by `(backend, key hash)` so a hot key enqueues at most one pending
/// delivery per owner.
#[derive(Default)]
struct RepairQueue {
    jobs: VecDeque<RepairJob>,
    pending: HashSet<(usize, u64)>,
}

/// Delivery attempts before a repair job is dropped (the target keeps
/// refusing while nominally alive).
const REPAIR_MAX_ATTEMPTS: u32 = 64;

/// Everything the accept loop, connection threads, and prober share.
struct Shared {
    config: RouterConfig,
    ring: HashRing,
    backends: Vec<Backend>,
    metrics: RouterMetrics,
    /// Exact canonical body bytes → routing hash (skips re-decode).
    key_cache: ShardedLru<u64>,
    /// The local-solve fallback engine (shares `recorder`).
    local: SolveService,
    /// The span flight recorder behind `GET /debug/trace`.
    recorder: Arc<Recorder>,
    /// Pending replica deliveries, drained by the repair worker.
    repair: Mutex<RepairQueue>,
    /// Router start time — the epoch of `last_probe_ms`.
    started: Instant,
    shutdown: AtomicBool,
}

/// A bound (but not yet serving) router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Router {
    /// Binds the listener and builds the ring over `config.backends`.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        let ring = HashRing::new(&config.backends, config.vnodes);
        let backends = config.backends.iter().cloned().map(Backend::new).collect();
        let key_cache = ShardedLru::new(config.key_cache);
        let recorder = Arc::new(Recorder::default());
        let shared = Arc::new(Shared {
            ring,
            backends,
            metrics: RouterMetrics::default(),
            key_cache,
            local: SolveService::with_recorder(config.key_cache, None, Arc::clone(&recorder)),
            recorder,
            repair: Mutex::new(RepairQueue::default()),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            config,
        });
        Ok(Router { listener, shared })
    }

    /// The actually bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop and health prober; returns the stop handle.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn start(self) -> io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let accept = {
            let shared = Arc::clone(&self.shared);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let prober = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || probe_loop(&shared))
        };
        let repairer = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || repair_loop(&shared))
        };
        Ok(RouterHandle {
            addr,
            shared: self.shared,
            accept: Some(accept),
            prober: Some(prober),
            repairer: Some(repairer),
        })
    }

    /// Binds-and-routes forever (the `bi-router` binary's main loop).
    ///
    /// # Errors
    ///
    /// Propagates startup failures; never returns otherwise.
    pub fn run(self) -> io::Result<()> {
        let handle = self.start()?;
        if let Some(accept) = handle.accept {
            let _ = accept.join();
        }
        Ok(())
    }
}

/// A running router: address plus the stop switch.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    repairer: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The routing address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `GET /metrics` document (for asserting in tests without a
    /// socket round-trip).
    #[must_use]
    pub fn metrics_json(&self) -> Json {
        metrics_json(&self.shared)
    }

    /// Stops the accept loop and prober, joining every thread (open
    /// connection handlers included).
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        if let Some(repairer) = self.repairer.take() {
            let _ = repairer.join();
        }
    }
}

/// Accepts connections until shutdown, one handler thread each.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || handle_conn(&stream, &shared)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                handlers.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// One downstream connection: read requests, dispatch, write responses,
/// until idle timeout, EOF, or shutdown.
fn handle_conn(stream: &TcpStream, shared: &Shared) {
    if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let poll = Duration::from_millis(100).min(shared.config.read_timeout);
    let mut last_activity = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Between requests, wait with a short poll so shutdown and the
        // idle timeout stay responsive. `peek` never consumes, so a
        // timeout here can't tear a partially read request; buffered
        // pipelined bytes skip the gate entirely.
        if reader.buffer().is_empty() {
            let mut probe = [0u8; 1];
            if stream.set_read_timeout(Some(poll)).is_err() {
                return;
            }
            match stream.peek(&mut probe) {
                Ok(0) => return, // clean EOF
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if last_activity.elapsed() > shared.config.read_timeout {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
        // A request is arriving: give it the full read timeout.
        if stream
            .set_read_timeout(Some(shared.config.read_timeout))
            .is_err()
        {
            return;
        }
        let request = match read_request(&mut reader) {
            Ok(Some(Ok(request))) => request,
            Ok(Some(Err(e))) => {
                // Protocol errors poison framing: answer and close.
                shared.metrics.record_status(e.status);
                let response = Response::json(e.status, error_body(&e.msg));
                let _ = response.write(&mut &*stream, false);
                return;
            }
            Ok(None) | Err(_) => return,
        };
        last_activity = Instant::now();
        shared
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive();
        // Adopt the caller's trace id (mint one otherwise) and
        // pre-allocate the root `route` span so the stages recorded
        // below parent under it. Malformed header values degrade to a
        // fresh trace, never an error.
        let t_start = shared.recorder.now_ns();
        let trace_id = request
            .header("x-bi-trace")
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&id| id != 0)
            .unwrap_or_else(|| shared.recorder.new_trace_id());
        let parent = request
            .header("x-bi-parent")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let root = shared.recorder.next_span_id();
        let ctx = TraceCtx {
            trace_id,
            parent: root,
        };
        let response = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/solve") => handle_solve(shared, &request.body, ctx),
            ("POST", "/solve_batch") => handle_batch(shared, &request.body, ctx),
            ("GET", "/healthz") => Response::json(200, healthz_json(shared).canonical_bytes()),
            ("GET", "/metrics") => {
                Response::json(200, metrics_json(shared).to_string().into_bytes())
            }
            ("GET", "/debug/trace") => {
                Response::json(200, shared.recorder.to_json().to_string().into_bytes())
            }
            (_, "/solve" | "/solve_batch" | "/healthz" | "/metrics" | "/debug/trace") => {
                Response::json(405, error_body("method not allowed"))
            }
            _ => Response::json(404, error_body("unknown endpoint")),
        };
        shared.metrics.record_status(response.status);
        let write_failed = response.write(&mut &*stream, keep_alive).is_err();
        finish_route(shared, trace_id, root, parent, t_start);
        if write_failed || !keep_alive {
            return;
        }
    }
}

/// Closes a request's root `route` span (response write included),
/// feeds the stage histogram, and logs the whole span tree at `warn`
/// when the request breaches the configured slow threshold.
fn finish_route(shared: &Shared, trace_id: u64, root: u64, parent: u64, t_start: u64) {
    let now = shared.recorder.now_ns();
    let total_us = now.saturating_sub(t_start) / 1_000;
    shared.metrics.stages.record(Stage::Route, total_us);
    shared
        .recorder
        .record_span(root, trace_id, parent, Stage::Route, t_start, now);
    let slow = shared
        .config
        .trace_slow_us
        .is_some_and(|limit| total_us >= limit);
    if slow && bi_obs::log::enabled(bi_obs::Level::Warn) {
        let spans: Vec<Json> = shared
            .recorder
            .trace_spans(trace_id)
            .iter()
            .map(bi_obs::SpanEvent::to_json)
            .collect();
        bi_obs::log::warn(
            "bi-router",
            "slow request",
            &[
                ("trace", Json::from_u64(trace_id)),
                ("total_us", Json::from_u64(total_us)),
                ("spans", Json::Arr(spans)),
            ],
        );
    }
}

/// The routing hash of a `/solve` body: the FNV-1a of its canonical
/// cache key. Canonical bodies consult (and warm) the body-bytes →
/// hash cache so hot traffic skips the JSON decode entirely.
fn routing_hash(shared: &Shared, body: &[u8]) -> Result<u64, Response> {
    let canonical = bi_util::json::canon_check(body);
    if canonical {
        if let Some(hash) = shared.key_cache.get(body) {
            return Ok(hash);
        }
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("request body is not valid UTF-8")))?;
    let request = SolveRequest::decode_str(text)
        .map_err(|e| Response::json(400, error_body(&e.to_string())))?;
    let key = SolveService::cache_key(&request.game, &request.config);
    let hash = fnv1a(&key);
    if canonical {
        shared.key_cache.insert(body, hash);
    }
    Ok(hash)
}

/// The router's aggregated `GET /healthz`: overall status plus one row
/// per backend with liveness, ejection/readmission counts, the failure
/// streak, and probe recency — canonical JSON, so two routers over the
/// same cluster state answer byte-identically (modulo probe timing).
fn healthz_json(shared: &Shared) -> Json {
    let now_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let mut live = 0u64;
    let rows: Vec<Json> = shared
        .backends
        .iter()
        .map(|b| {
            let alive = b.alive.load(Ordering::Relaxed);
            live += u64::from(alive);
            let last_probe = b.last_probe_ms.load(Ordering::Relaxed);
            Json::Obj(vec![
                ("addr".into(), Json::str(b.addr.clone())),
                ("alive".into(), Json::Bool(alive)),
                ("ejected".into(), Json::Bool(!alive)),
                (
                    "consecutive_failures".into(),
                    Json::from_u64(b.consecutive_failures.load(Ordering::Relaxed)),
                ),
                (
                    "ejects".into(),
                    Json::from_u64(b.ejects.load(Ordering::Relaxed)),
                ),
                (
                    "readmits".into(),
                    Json::from_u64(b.readmits.load(Ordering::Relaxed)),
                ),
                (
                    "last_probe_ms_ago".into(),
                    if last_probe == u64::MAX {
                        Json::Null
                    } else {
                        Json::from_u64(now_ms.saturating_sub(last_probe))
                    },
                ),
            ])
        })
        .collect();
    let status = if shared.backends.is_empty() || live > 0 {
        "ok"
    } else {
        "degraded"
    };
    Json::Obj(vec![
        ("status".into(), Json::str(status)),
        ("live_backends".into(), Json::from_u64(live)),
        (
            "replication".into(),
            Json::from_u64(shared.config.replication.max(1) as u64),
        ),
        ("backends".into(), Json::Arr(rows)),
    ])
}

/// Records `stage` ending now: histogram always, a span event only when
/// the request carries an active trace.
fn finish_stage(shared: &Shared, ctx: TraceCtx, stage: Stage, t0: u64) {
    let t1 = shared.recorder.now_ns();
    shared
        .metrics
        .stages
        .record(stage, t1.saturating_sub(t0) / 1_000);
    if ctx.active() {
        shared
            .recorder
            .record(ctx.trace_id, ctx.parent, stage, t0, t1);
    }
}

/// The `X-Bi-Trace` / `X-Bi-Parent` header pair for a forwarded hop, so
/// the backend's spans nest under `span` in the shared trace.
fn trace_headers(ctx: TraceCtx, span: u64) -> Vec<(&'static str, String)> {
    if ctx.active() {
        vec![
            ("X-Bi-Trace", ctx.trace_id.to_string()),
            ("X-Bi-Parent", span.to_string()),
        ]
    } else {
        Vec::new()
    }
}

/// A status the router retries on another replica (or a later round)
/// instead of returning: the backend answered — it is alive and earns no
/// ejection credit — but the work was shed (`429`) or lost (`5xx`).
fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 502..=504)
}

/// The sleep before retry round `round + 1`: exponential in the round,
/// capped, with deterministic jitter in `[cap/2, cap]` drawn from the
/// key hash — two routers never thundering-herd the same backend on the
/// same schedule, yet a rerun of the same traffic backs off identically.
fn retry_backoff(config: &RouterConfig, hash: u64, round: u32) -> Duration {
    let base = u64::try_from(config.retry_base_backoff.as_millis().max(1)).unwrap_or(u64::MAX);
    let cap = u64::try_from(config.retry_max_backoff.as_millis().max(1)).unwrap_or(u64::MAX);
    let exp = base.saturating_mul(1u64 << round.min(16)).min(cap).max(1);
    let mut seed = [0u8; 16];
    seed[..8].copy_from_slice(&hash.to_le_bytes());
    seed[8..].copy_from_slice(&u64::from(round).to_le_bytes());
    Duration::from_millis(exp / 2 + fnv1a(&seed) % (exp / 2 + 1))
}

/// Routes one `/solve` body under a deadline budget: forward to the
/// key's backend, failing over clockwise on transport errors (each
/// feeds the ejection counter), retrying retryable statuses across
/// replicas and rounds with capped jittered backoff (honoring upstream
/// `Retry-After`), then falling back per [`FallbackMode`]. A served
/// `200` schedules write-through/read-repair to the key's other
/// intended owners.
fn handle_solve(shared: &Shared, body: &[u8], ctx: TraceCtx) -> Response {
    shared
        .metrics
        .solve_requests
        .fetch_add(1, Ordering::Relaxed);
    let t_lookup = shared.recorder.now_ns();
    let hash = match routing_hash(shared, body) {
        Ok(hash) => hash,
        Err(response) => return response,
    };
    finish_stage(shared, ctx, Stage::RingLookup, t_lookup);
    // The key's intended owners, liveness-blind: where its value should
    // live. The serve walk below skips dead backends; `schedule_repairs`
    // reconciles the difference after a successful serve.
    let owners = shared
        .ring
        .route_replicas(hash, shared.config.replication.max(1), |_| true);
    let deadline = Instant::now() + shared.config.request_deadline;
    let mut retry_hint: Option<Duration> = None;
    for round in 0..shared.config.max_retry_rounds.max(1) {
        let mut tried = vec![false; shared.backends.len()];
        let mut attempted = false;
        while let Some(idx) = shared.ring.route(hash, |i| {
            !tried[i] && shared.backends[i].alive.load(Ordering::Relaxed)
        }) {
            tried[idx] = true;
            attempted = true;
            let backend = &shared.backends[idx];
            // Each attempt is its own `upstream` span; the span id is
            // minted up front so it can ride the forwarded headers as
            // the backend's parent.
            let upstream_span = shared.recorder.next_span_id();
            let t_fwd = shared.recorder.now_ns();
            let outcome = forward(
                shared,
                idx,
                "/solve",
                body,
                &trace_headers(ctx, upstream_span),
            );
            let t_done = shared.recorder.now_ns();
            shared
                .metrics
                .stages
                .record(Stage::Upstream, t_done.saturating_sub(t_fwd) / 1_000);
            if ctx.active() {
                shared.recorder.record_span(
                    upstream_span,
                    ctx.trace_id,
                    ctx.parent,
                    Stage::Upstream,
                    t_fwd,
                    t_done,
                );
            }
            match outcome {
                Ok(upstream) if retryable_status(upstream.status) => {
                    backend.record_success();
                    let cause = if upstream.status == 429 {
                        &shared.metrics.retries_429
                    } else {
                        &shared.metrics.retries_5xx
                    };
                    cause.fetch_add(1, Ordering::Relaxed);
                    retry_hint = upstream
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs)
                        .or(retry_hint);
                }
                Ok(upstream) => {
                    backend.record_success();
                    backend.forwarded.fetch_add(1, Ordering::Relaxed);
                    let cache = upstream.header("x-cache").map(str::to_string);
                    if upstream.status == 200 {
                        schedule_repairs(
                            shared,
                            &owners,
                            Some(idx),
                            hash,
                            body,
                            &upstream.body,
                            cache.as_deref() == Some("miss"),
                        );
                    }
                    let mut response = Response::json(upstream.status, upstream.body)
                        .with_header("X-Backend", backend.addr.clone());
                    if let Some(cache) = cache {
                        response = response.with_header("X-Cache", cache);
                    }
                    return response;
                }
                Err(_) => {
                    shared
                        .metrics
                        .retries_transport
                        .fetch_add(1, Ordering::Relaxed);
                    backend.upstream_errors.fetch_add(1, Ordering::Relaxed);
                    backend.record_failure(shared.config.fail_threshold);
                }
            }
        }
        if !attempted || round + 1 >= shared.config.max_retry_rounds.max(1) {
            break; // nobody live, or rounds exhausted
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break; // deadline budget spent
        }
        let wait = retry_hint
            .take()
            .unwrap_or_else(|| retry_backoff(&shared.config, hash, round));
        std::thread::sleep(wait.min(remaining));
    }
    let response = fallback_solve(shared, body, ctx);
    if response.status == 200 {
        // A local fallback solve is still a solved result: bring the
        // (currently dead or overloaded) owners a copy for when they
        // return.
        schedule_repairs(shared, &owners, None, hash, body, &response.body, true);
    }
    response
}

/// Queues `POST /cache_put` deliveries reconciling a just-served `200`
/// with the key's intended owners: write-through of fresh misses to
/// live owners that did not serve it, read-repair to dead owners so a
/// returning backend is repopulated without re-solving. Live owners are
/// skipped on cache hits (steady state — they were written through when
/// the result was first solved). Deduplicated by `(owner, key hash)`
/// and bounded; overflow is dropped and counted.
fn schedule_repairs(
    shared: &Shared,
    owners: &[usize],
    served_by: Option<usize>,
    hash: u64,
    request: &[u8],
    response: &[u8],
    miss: bool,
) {
    let Ok(request_len) = u32::try_from(request.len()) else {
        return;
    };
    for &owner in owners {
        if Some(owner) == served_by {
            continue;
        }
        let owner_alive = shared.backends[owner].alive.load(Ordering::Relaxed);
        if owner_alive && !miss {
            continue;
        }
        let mut queue = shared.repair.lock().expect("repair queue poisoned");
        if !queue.pending.insert((owner, hash)) {
            continue; // a delivery for this (owner, key) is already queued
        }
        if queue.jobs.len() >= shared.config.repair_queue_capacity {
            queue.pending.remove(&(owner, hash));
            shared.metrics.repair_drops.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let mut framed = Vec::with_capacity(4 + request.len() + response.len());
        framed.extend_from_slice(&request_len.to_le_bytes());
        framed.extend_from_slice(request);
        framed.extend_from_slice(response);
        queue.jobs.push_back(RepairJob {
            backend: owner,
            hash,
            body: framed,
            repair: !owner_alive,
            attempts: 0,
        });
    }
}

/// The repair worker: drains queued deliveries, holding jobs whose
/// target is still ejected (re-queued until the prober readmits it —
/// that is what repopulates a restarted backend), and giving up on jobs
/// a live target keeps refusing.
fn repair_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        let job = shared
            .repair
            .lock()
            .expect("repair queue poisoned")
            .jobs
            .pop_front();
        let Some(mut job) = job else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if !shared.backends[job.backend].alive.load(Ordering::Relaxed) {
            // The target is ejected: hold the job for its return.
            shared
                .repair
                .lock()
                .expect("repair queue poisoned")
                .jobs
                .push_back(job);
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        match forward(shared, job.backend, "/cache_put", &job.body, &[]) {
            Ok(response) if response.status == 200 => {
                shared
                    .repair
                    .lock()
                    .expect("repair queue poisoned")
                    .pending
                    .remove(&(job.backend, job.hash));
                let counter = if job.repair {
                    &shared.metrics.read_repairs
                } else {
                    &shared.metrics.replication_writes
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                job.attempts += 1;
                let mut queue = shared.repair.lock().expect("repair queue poisoned");
                if job.attempts >= REPAIR_MAX_ATTEMPTS {
                    queue.pending.remove(&(job.backend, job.hash));
                    shared.metrics.repair_drops.fetch_add(1, Ordering::Relaxed);
                } else {
                    queue.jobs.push_back(job);
                }
                drop(queue);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Forwards one request to backend `idx` over a pooled connection,
/// retrying once on a fresh socket (a pooled connection may have idled
/// out on the backend side between bursts).
fn forward(
    shared: &Shared,
    idx: usize,
    path: &str,
    body: &[u8],
    extra: &[(&str, String)],
) -> io::Result<ClientResponse> {
    let backend = &shared.backends[idx];
    let pooled = backend.pool.lock().expect("pool poisoned").pop();
    if let Some(mut client) = pooled {
        if let Ok(response) = client.request_with("POST", path, body, extra) {
            release(shared, idx, client);
            return Ok(response);
        }
        // Stale pooled socket: drop it and retry on a fresh connection.
    }
    let mut client = HttpClient::connect_timeout(&backend.addr, shared.config.connect_timeout)?;
    client.set_read_timeout(Some(shared.config.upstream_timeout))?;
    let response = client.request_with("POST", path, body, extra)?;
    release(shared, idx, client);
    Ok(response)
}

/// Returns a healthy connection to backend `idx`'s pool (dropped when
/// the pool is full).
fn release(shared: &Shared, idx: usize, client: HttpClient) {
    let mut pool = shared.backends[idx].pool.lock().expect("pool poisoned");
    if pool.len() < shared.config.pool_capacity {
        pool.push(client);
    }
}

/// Answers a `/solve` when no live backend is left. The local engine
/// shares the router's recorder, so its `cache`/`solve`/`encode` spans
/// land in the same trace as the routing stages.
fn fallback_solve(shared: &Shared, body: &[u8], ctx: TraceCtx) -> Response {
    match shared.config.fallback {
        FallbackMode::Unavailable => {
            shared.metrics.fallback_503.fetch_add(1, Ordering::Relaxed);
            Response::json(503, error_body("no live backend")).with_header("X-Backend", "none")
        }
        FallbackMode::Local => {
            shared
                .metrics
                .fallback_local
                .fetch_add(1, Ordering::Relaxed);
            let served = match shared.local.try_serve_fast(body, ctx) {
                Ok(FastOutcome::Hit(served)) => served,
                Ok(FastOutcome::Miss(prepared)) => match shared.local.complete_solve(*prepared) {
                    Ok(served) => served,
                    Err(e) => return Response::json(422, error_body(&e.to_string())),
                },
                Err(e) => return Response::json(400, error_body(&e.to_string())),
            };
            Response::json(200, served.body.to_vec())
                .with_header("X-Cache", if served.cache_hit { "hit" } else { "miss" })
                .with_header("X-Backend", "local")
        }
    }
}

/// Splits a `/solve_batch` by each game's cache key, forwards the
/// sub-batches, and re-merges the reports in request order. A sub-batch
/// whose backend fails (transport or non-200) falls back whole.
fn handle_batch(shared: &Shared, body: &[u8], ctx: TraceCtx) -> Response {
    shared
        .metrics
        .batch_requests
        .fetch_add(1, Ordering::Relaxed);
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Response::json(400, error_body("request body is not valid UTF-8")),
    };
    let batch = match BatchRequest::decode_str(text) {
        Ok(batch) => batch,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shared.backends.len()];
    let mut unrouted: Vec<usize> = Vec::new();
    for (i, game) in batch.games.iter().enumerate() {
        let key = SolveService::cache_key(game, &batch.config);
        match shared.ring.route(fnv1a(&key), |b| {
            shared.backends[b].alive.load(Ordering::Relaxed)
        }) {
            Some(idx) => groups[idx].push(i),
            None => unrouted.push(i),
        }
    }
    let mut merged: Vec<Option<Json>> = batch.games.iter().map(|_| None).collect();
    for (idx, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let sub = BatchRequest {
            games: group.iter().map(|&i| batch.games[i].clone()).collect(),
            config: batch.config,
        };
        let sub_body = sub.encode().canonical_bytes();
        let backend = &shared.backends[idx];
        // One `upstream` span per sub-batch hop, same as `/solve`.
        let upstream_span = shared.recorder.next_span_id();
        let t_fwd = shared.recorder.now_ns();
        let outcome = forward(
            shared,
            idx,
            "/solve_batch",
            &sub_body,
            &trace_headers(ctx, upstream_span),
        );
        let t_done = shared.recorder.now_ns();
        shared
            .metrics
            .stages
            .record(Stage::Upstream, t_done.saturating_sub(t_fwd) / 1_000);
        if ctx.active() {
            shared.recorder.record_span(
                upstream_span,
                ctx.trace_id,
                ctx.parent,
                Stage::Upstream,
                t_fwd,
                t_done,
            );
        }
        match outcome {
            Ok(upstream) if upstream.status == 200 => {
                backend.record_success();
                backend.forwarded.fetch_add(1, Ordering::Relaxed);
                match split_reports(&upstream.body, group.len()) {
                    Some(reports) => {
                        for (&orig, report) in group.iter().zip(reports) {
                            merged[orig] = Some(report);
                        }
                        continue;
                    }
                    None => {
                        backend.upstream_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(_) => {
                // The backend answered but refused (429/5xx): not a
                // liveness failure, but the games still need answers.
                backend.upstream_errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                backend.upstream_errors.fetch_add(1, Ordering::Relaxed);
                backend.record_failure(shared.config.fail_threshold);
            }
        }
        unrouted.extend_from_slice(group);
    }
    if !unrouted.is_empty() {
        fallback_batch(shared, &batch, &unrouted, &mut merged);
    }
    let reports: Vec<Json> = merged
        .into_iter()
        .map(|r| r.expect("every game is routed, merged, or fallen back"))
        .collect();
    Response::json(
        200,
        Json::Obj(vec![("reports".into(), Json::Arr(reports))]).canonical_bytes(),
    )
}

/// Parses an upstream `/solve_batch` body into its per-game report
/// values; `None` when the shape (or count) is wrong.
fn split_reports(body: &[u8], expected: usize) -> Option<Vec<Json>> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = Json::parse(text).ok()?;
    let reports = doc.get("reports")?.as_arr()?;
    (reports.len() == expected).then(|| reports.to_vec())
}

/// Answers the still-unanswered games of a batch locally (or with
/// per-game errors under [`FallbackMode::Unavailable`]).
fn fallback_batch(
    shared: &Shared,
    batch: &BatchRequest,
    pending: &[usize],
    merged: &mut [Option<Json>],
) {
    match shared.config.fallback {
        FallbackMode::Unavailable => {
            shared.metrics.fallback_503.fetch_add(1, Ordering::Relaxed);
            for &i in pending {
                merged[i] = Some(Json::Obj(vec![(
                    "error".into(),
                    Json::str("no live backend"),
                )]));
            }
        }
        FallbackMode::Local => {
            shared
                .metrics
                .fallback_local
                .fetch_add(1, Ordering::Relaxed);
            let sub = BatchRequest {
                games: pending.iter().map(|&i| batch.games[i].clone()).collect(),
                config: batch.config,
            };
            let results = shared.local.solve_batch(&sub);
            for (&orig, result) in pending.iter().zip(results) {
                merged[orig] = Some(match result {
                    Ok(outcome) => {
                        let text =
                            std::str::from_utf8(&outcome.body).expect("canonical JSON is UTF-8");
                        Json::Obj(vec![(
                            "report".into(),
                            Json::parse(text).expect("cached bodies are valid JSON"),
                        )])
                    }
                    Err(e) => Json::Obj(vec![("error".into(), Json::str(e.to_string()))]),
                });
            }
        }
    }
}

/// Probes every backend's `/healthz` on the configured interval.
fn probe_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        for backend in &shared.backends {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if probe(backend, shared.config.connect_timeout) {
                backend.record_success();
            } else {
                backend.record_failure(shared.config.fail_threshold);
            }
            backend.last_probe_ms.store(
                u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        let deadline = Instant::now() + shared.config.probe_interval;
        while Instant::now() < deadline {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// One `/healthz` round-trip on a fresh connection.
fn probe(backend: &Backend, timeout: Duration) -> bool {
    let Ok(mut client) = HttpClient::connect_timeout(&backend.addr, timeout) else {
        return false;
    };
    if client.set_read_timeout(Some(timeout)).is_err() {
        return false;
    }
    client
        .request("GET", "/healthz", b"")
        .is_ok_and(|response| response.status == 200)
}

/// The router's `GET /metrics` document, per-backend array included.
fn metrics_json(shared: &Shared) -> Json {
    let load = |a: &AtomicU64| Json::from_u64(a.load(Ordering::Relaxed));
    let key_cache = shared.key_cache.stats();
    let backends: Vec<Json> = shared
        .backends
        .iter()
        .map(|b| {
            Json::Obj(vec![
                ("addr".into(), Json::str(b.addr.clone())),
                ("alive".into(), Json::Bool(b.alive.load(Ordering::Relaxed))),
                ("consecutive_failures".into(), load(&b.consecutive_failures)),
                ("forwarded".into(), load(&b.forwarded)),
                ("upstream_errors".into(), load(&b.upstream_errors)),
                ("ejects".into(), load(&b.ejects)),
                ("readmits".into(), load(&b.readmits)),
                (
                    "pooled_connections".into(),
                    Json::from_u64(b.pool.lock().expect("pool poisoned").len() as u64),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "requests_total".into(),
            load(&shared.metrics.requests_total),
        ),
        (
            "solve_requests".into(),
            load(&shared.metrics.solve_requests),
        ),
        (
            "batch_requests".into(),
            load(&shared.metrics.batch_requests),
        ),
        (
            "connections_total".into(),
            load(&shared.metrics.connections_total),
        ),
        (
            "responses".into(),
            Json::Obj(vec![
                ("status_2xx".into(), load(&shared.metrics.responses_2xx)),
                ("status_4xx".into(), load(&shared.metrics.responses_4xx)),
                ("status_5xx".into(), load(&shared.metrics.responses_5xx)),
            ]),
        ),
        (
            "fallback".into(),
            Json::Obj(vec![
                ("local_solves".into(), load(&shared.metrics.fallback_local)),
                ("unavailable_503".into(), load(&shared.metrics.fallback_503)),
            ]),
        ),
        (
            "retries".into(),
            Json::Obj(vec![
                ("transport".into(), load(&shared.metrics.retries_transport)),
                ("status_5xx".into(), load(&shared.metrics.retries_5xx)),
                ("status_429".into(), load(&shared.metrics.retries_429)),
            ]),
        ),
        (
            "replication".into(),
            Json::Obj(vec![
                (
                    "factor".into(),
                    Json::from_u64(shared.config.replication.max(1) as u64),
                ),
                ("writes".into(), load(&shared.metrics.replication_writes)),
                ("read_repairs".into(), load(&shared.metrics.read_repairs)),
                ("repair_drops".into(), load(&shared.metrics.repair_drops)),
                (
                    "repair_queue_depth".into(),
                    Json::from_u64(
                        shared
                            .repair
                            .lock()
                            .expect("repair queue poisoned")
                            .jobs
                            .len() as u64,
                    ),
                ),
            ]),
        ),
        ("stages".into(), shared.metrics.stages.to_json()),
        (
            "key_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::from_u64(key_cache.hits)),
                ("misses".into(), Json::from_u64(key_cache.misses)),
                ("entries".into(), Json::from_u64(key_cache.entries as u64)),
            ]),
        ),
        ("backends".into(), Json::Arr(backends)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4000")).collect()
    }

    /// The full assignment of `count` deterministic key hashes.
    fn assignment(ring: &HashRing, live: &[bool], count: u64) -> Vec<Option<usize>> {
        (0..count)
            .map(|i| ring.route(fnv1a(format!("key-{i}").as_bytes()), |b| live[b]))
            .collect()
    }

    #[test]
    fn routing_is_deterministic() {
        let backends = addrs(3);
        let a = HashRing::new(&backends, 64);
        let b = HashRing::new(&backends, 64);
        let all = vec![true; 3];
        assert_eq!(assignment(&a, &all, 1000), assignment(&b, &all, 1000));
    }

    #[test]
    fn every_backend_owns_a_share_of_the_space() {
        let ring = HashRing::new(&addrs(3), 64);
        let all = vec![true; 3];
        let mut counts = [0usize; 3];
        for owner in assignment(&ring, &all, 3000) {
            counts[owner.unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                count > 300,
                "backend {i} owns {count}/3000 keys — vnodes are not spreading"
            );
        }
    }

    #[test]
    fn eject_moves_only_the_ejected_arc_and_readmit_restores_it() {
        let ring = HashRing::new(&addrs(3), 64);
        let before = assignment(&ring, &[true, true, true], 2000);
        let after = assignment(&ring, &[true, false, true], 2000);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            let (b, a) = (b.unwrap(), a.unwrap());
            if b == 1 {
                // The ejected backend's keys must land elsewhere …
                assert_ne!(a, 1, "a key still routes to the ejected backend");
                moved += 1;
            } else {
                // … and every other key must keep its mapping exactly.
                assert_eq!(a, b, "an unrelated arc moved on eject");
            }
        }
        assert!(moved > 0, "the ejected backend owned no keys");
        // Readmission restores the original assignment bit-for-bit.
        let restored = assignment(&ring, &[true, true, true], 2000);
        assert_eq!(before, restored);
    }

    #[test]
    fn route_is_none_only_when_every_backend_is_dead() {
        let ring = HashRing::new(&addrs(2), 16);
        assert_eq!(ring.route(12345, |_| false), None);
        assert!(ring.route(12345, |i| i == 1).is_some());
        let empty: Vec<String> = Vec::new();
        assert_eq!(HashRing::new(&empty, 16).route(1, |_| true), None);
    }

    #[test]
    fn route_replicas_yields_distinct_owners_led_by_the_primary() {
        let ring = HashRing::new(&addrs(4), 64);
        for i in 0..500u64 {
            let hash = fnv1a(format!("key-{i}").as_bytes());
            let owners = ring.route_replicas(hash, 2, |_| true);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
            assert_eq!(Some(owners[0]), ring.route(hash, |_| true));
        }
        // Asking for more replicas than backends yields every backend.
        let mut all = ring.route_replicas(fnv1a(b"k"), 9, |_| true);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(ring.route_replicas(fnv1a(b"k"), 0, |_| true).is_empty());
    }

    #[test]
    fn ejecting_a_backend_keeps_every_surviving_owner_in_place() {
        let ring = HashRing::new(&addrs(4), 64);
        for i in 0..500u64 {
            let hash = fnv1a(format!("key-{i}").as_bytes());
            let before = ring.route_replicas(hash, 2, |_| true);
            let after = ring.route_replicas(hash, 2, |b| b != 1);
            // Surviving owners keep their relative order; the ejected
            // backend's slot is backfilled by the next ring successor.
            let survivors: Vec<usize> = before.iter().copied().filter(|&b| b != 1).collect();
            assert_eq!(&after[..survivors.len()], &survivors[..]);
            assert!(!after.contains(&1));
            assert_eq!(after.len(), 2);
        }
    }

    #[test]
    fn single_backend_owns_everything() {
        let backends = addrs(1);
        let ring = HashRing::new(&backends, 8);
        for i in 0..100u64 {
            assert_eq!(ring.route(fnv1a(&i.to_le_bytes()), |_| true), Some(0));
        }
    }
}
