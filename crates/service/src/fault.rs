//! Deterministic fault injection for chaos testing the serving tier.
//!
//! A [`FaultPlan`] is a *seeded, replayable* sequence of fault decisions
//! threaded through the reactor's stream seams (`bi-serve
//! --fault-plan SPEC`): the accept path can refuse connections, the
//! read path can disconnect mid-body, throttle to short reads, or stall
//! on an injected delay, the write path can throttle to short writes,
//! and the dispatch path can answer an injected `500`. The n-th
//! decision is a pure function of `(seed, n)` — a splitmix64-style hash
//! with no shared RNG state — so two runs with the same seed and the
//! same traffic order inject byte-identical fault sequences, which is
//! what lets a chaos test assert exact outcomes instead of "something
//! probably broke".
//!
//! # Spec grammar
//!
//! ```text
//! seed=<u64>[,rate=<faults-per-million>][,kinds=<kind>+<kind>+…][,delay-ms=<u64>]
//! ```
//!
//! Kinds: `refuse`, `disconnect`, `short-read`, `short-write`, `delay`,
//! `err500`. Defaults: every kind enabled, `rate=50000` (5% of
//! decisions), `delay-ms=5`.
//!
//! # Examples
//!
//! ```
//! use bi_service::fault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("seed=7,rate=500000,kinds=refuse+err500").unwrap();
//! let first: Vec<Option<FaultKind>> = (0..8).map(|_| plan.next()).collect();
//! // Replay from the same seed: the identical sequence.
//! let replay = FaultPlan::parse("seed=7,rate=500000,kinds=refuse+err500").unwrap();
//! let second: Vec<Option<FaultKind>> = (0..8).map(|_| replay.next()).collect();
//! assert_eq!(first, second);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bi_util::Json;

/// One injectable fault at a reactor seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop a freshly accepted connection before reading a byte.
    Refuse,
    /// Close the connection mid-exchange (the peer sees a reset/EOF).
    Disconnect,
    /// Cap the next read pass at one byte (a pathologically slow peer).
    ShortRead,
    /// Cap the next write pass at one byte (a congested return path).
    ShortWrite,
    /// Sleep the configured delay before serving the event.
    Delay,
    /// Answer the request with an injected `500` instead of serving it.
    Err500,
}

impl FaultKind {
    /// Every kind, in spec order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Refuse,
        FaultKind::Disconnect,
        FaultKind::ShortRead,
        FaultKind::ShortWrite,
        FaultKind::Delay,
        FaultKind::Err500,
    ];

    /// The spec/metrics name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Refuse => "refuse",
            FaultKind::Disconnect => "disconnect",
            FaultKind::ShortRead => "short-read",
            FaultKind::ShortWrite => "short-write",
            FaultKind::Delay => "delay",
            FaultKind::Err500 => "err500",
        }
    }

    fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Decisions are drawn per million: `rate=1000000` faults every event.
const RATE_DENOMINATOR: u64 = 1_000_000;

/// A seeded, deterministic fault schedule plus its injection counters.
///
/// The plan owns one atomic decision counter; every seam that might
/// inject calls [`FaultPlan::next`], consuming the next decision of the
/// sequence. Decisions are pure in `(seed, n)` (see
/// [`FaultPlan::decision`]), so the consumed sequence replays exactly
/// under the same traffic order.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate_per_million: u64,
    kinds: Vec<FaultKind>,
    delay: Duration,
    counter: AtomicU64,
    injected: [AtomicU64; FaultKind::ALL.len()],
}

impl FaultPlan {
    /// Parses a plan spec (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field; `seed` is required.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = None;
        let mut rate = 50_000u64;
        let mut kinds = FaultKind::ALL.to_vec();
        let mut delay_ms = 5u64;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (field, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan field `{part}` is not `name=value`"))?;
            match field {
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("fault-plan seed `{value}` is not a u64"))?,
                    );
                }
                "rate" => {
                    rate = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&r| r <= RATE_DENOMINATOR)
                        .ok_or_else(|| {
                            format!("fault-plan rate `{value}` is not in 0..={RATE_DENOMINATOR}")
                        })?;
                }
                "kinds" => {
                    kinds = value
                        .split('+')
                        .map(|name| {
                            FaultKind::from_name(name)
                                .ok_or_else(|| format!("unknown fault kind `{name}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if kinds.is_empty() {
                        return Err("fault-plan kinds list is empty".into());
                    }
                }
                "delay-ms" => {
                    delay_ms = value
                        .parse::<u64>()
                        .map_err(|_| format!("fault-plan delay-ms `{value}` is not a u64"))?;
                }
                other => return Err(format!("unknown fault-plan field `{other}`")),
            }
        }
        let seed = seed.ok_or("fault-plan requires seed=<u64>")?;
        Ok(FaultPlan {
            seed,
            rate_per_million: rate,
            kinds,
            delay: Duration::from_millis(delay_ms),
            counter: AtomicU64::new(0),
            injected: Default::default(),
        })
    }

    /// The pure decision function: what the `n`-th event of a plan with
    /// this seed/rate/kinds does. [`FaultPlan::next`] is exactly
    /// `decision(counter++)` — exposed so tests can assert the schedule
    /// without consuming it.
    #[must_use]
    pub fn decision(&self, n: u64) -> Option<FaultKind> {
        let h = mix(self.seed, n);
        if h % RATE_DENOMINATOR >= self.rate_per_million {
            return None;
        }
        Some(self.kinds[(h >> 32) as usize % self.kinds.len()])
    }

    /// Draws the next fault decision, counting any injection per kind.
    #[must_use]
    pub fn next(&self) -> Option<FaultKind> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let fault = self.decision(n)?;
        let slot = FaultKind::ALL
            .iter()
            .position(|&k| k == fault)
            .expect("every kind is in ALL");
        self.injected[slot].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// The injected-delay duration for [`FaultKind::Delay`] events.
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Total faults injected so far (all kinds).
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The `faults` section of `GET /metrics`: the seed, the decisions
    /// drawn, and per-kind injection counts.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seed".into(), Json::from_u64(self.seed)),
            (
                "decisions".into(),
                Json::from_u64(self.counter.load(Ordering::Relaxed)),
            ),
            (
                "injected_total".into(),
                Json::from_u64(self.injected_total()),
            ),
        ];
        for (kind, count) in FaultKind::ALL.iter().zip(&self.injected) {
            fields.push((
                format!("injected_{}", kind.name().replace('-', "_")),
                Json::from_u64(count.load(Ordering::Relaxed)),
            ));
        }
        Json::Obj(fields)
    }
}

/// splitmix64-style finalizer over `(seed, n)` — a statistically flat
/// 64-bit hash, pure and lock-free.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_same_seed_yields_the_same_injected_sequence() {
        let a = FaultPlan::parse("seed=42,rate=300000").unwrap();
        let b = FaultPlan::parse("seed=42,rate=300000").unwrap();
        let seq_a: Vec<Option<FaultKind>> = (0..512).map(|_| a.next()).collect();
        let seq_b: Vec<Option<FaultKind>> = (0..512).map(|_| b.next()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "a 30% rate must fire in 512 draws");
        // And the pure form agrees with the consumed sequence.
        let pure: Vec<Option<FaultKind>> = (0..512).map(|n| a.decision(n)).collect();
        assert_eq!(seq_a, pure);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::parse("seed=1,rate=300000").unwrap();
        let b = FaultPlan::parse("seed=2,rate=300000").unwrap();
        let seq_a: Vec<Option<FaultKind>> = (0..256).map(|n| a.decision(n)).collect();
        let seq_b: Vec<Option<FaultKind>> = (0..256).map(|n| b.decision(n)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn rate_bounds_hold() {
        let never = FaultPlan::parse("seed=9,rate=0").unwrap();
        assert!((0..1000).all(|n| never.decision(n).is_none()));
        let always = FaultPlan::parse("seed=9,rate=1000000").unwrap();
        assert!((0..1000).all(|n| always.decision(n).is_some()));
        // The default 5% rate lands in a loose band over 10k draws.
        let plan = FaultPlan::parse("seed=9").unwrap();
        let hits = (0..10_000).filter(|&n| plan.decision(n).is_some()).count();
        assert!((200..=800).contains(&hits), "5% of 10k drew {hits}");
    }

    #[test]
    fn kinds_filter_restricts_the_draw() {
        let plan = FaultPlan::parse("seed=3,rate=1000000,kinds=delay+err500").unwrap();
        for n in 0..1000 {
            let kind = plan.decision(n).unwrap();
            assert!(matches!(kind, FaultKind::Delay | FaultKind::Err500));
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("", "requires seed"),
            ("rate=10", "requires seed"),
            ("seed=x", "not a u64"),
            ("seed=1,rate=2000000", "not in 0..="),
            ("seed=1,kinds=frobnicate", "unknown fault kind"),
            ("seed=1,bogus=2", "unknown fault-plan field"),
            ("seed", "not `name=value`"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn metrics_json_counts_per_kind() {
        let plan = FaultPlan::parse("seed=5,rate=1000000,kinds=refuse").unwrap();
        for _ in 0..3 {
            let _ = plan.next();
        }
        let doc = plan.to_json();
        assert_eq!(doc.get("decisions").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("injected_total").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("injected_refuse").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("injected_err500").unwrap().as_u64(), Some(0));
    }
}
