//! The readiness layer under the event-driven server: a thin poll
//! abstraction over nonblocking sockets plus the wake channel solver
//! threads use to re-enter the event loop.
//!
//! Three pieces, all built on `std`:
//!
//! * [`PollFd`]/[`Poller`] — level-triggered readiness for a set of file
//!   descriptors. On Linux (x86_64/aarch64) this is the `ppoll(2)`
//!   syscall issued directly via an inline-assembly shim (`sys`) — no
//!   libc, no FFI crate. Everywhere else a portable fallback reports
//!   every descriptor ready after a short sleep; since the event loop
//!   treats readiness as a *hint* (every I/O call handles `WouldBlock`),
//!   spurious readiness is safe, just less efficient.
//! * [`WakePair`] — a loopback socket pair: the reactor parks in
//!   [`Poller::wait`] with the read end registered, and solver threads
//!   call [`Waker::wake`] after pushing a completion so the loop resumes
//!   immediately instead of timing out.
//!
//! The abstraction is deliberately minimal — interest registration is
//! rebuilding the `PollFd` slice each iteration, which is `O(n)` exactly
//! like the kernel's own scan, so there is nothing to keep in sync.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Readiness interest/result flags, matching `poll(2)`.
pub const POLLIN: i16 = 0x001;
/// Writable-readiness flag.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set: a raw descriptor, the events the caller is
/// interested in, and the events the kernel reported back.
///
/// The layout is exactly `struct pollfd`, so a `&mut [PollFd]` can be
/// handed to the kernel as-is.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (`POLLIN | POLLOUT`).
    #[must_use]
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The reported readiness of this descriptor after a wait.
    #[must_use]
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether any reported event intersects `mask`.
    #[must_use]
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// The syscall shim: `ppoll(2)` through inline assembly, no libc.
///
/// Safety rests on two facts: the slice pointer/length pair we pass is a
/// live `&mut [PollFd]` whose `#[repr(C)]` layout matches the kernel's
/// `struct pollfd`, and `ppoll` writes only inside that array and the
/// (stack-owned) timespec. The signal mask is null, so no signal state
/// is touched.
#[allow(unsafe_code)]
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::PollFd;

    /// Kernel timespec for the ppoll timeout.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    fn sys_ppoll(fds: *mut PollFd, nfds: usize, ts: *const Timespec) -> isize {
        const SYS_PPOLL: isize = 271;
        let ret: isize;
        // SAFETY: see the module docs — the pointers are live and
        // correctly sized for the whole call, and the clobbers are the
        // documented x86_64 syscall ABI (rcx/r11 + flags).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_PPOLL => ret,
                in("rdi") fds,
                in("rsi") nfds,
                in("rdx") ts,
                in("r10") 0usize, // sigmask: null
                in("r8") 0usize,  // sigsetsize
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn sys_ppoll(fds: *mut PollFd, nfds: usize, ts: *const Timespec) -> isize {
        const SYS_PPOLL: isize = 73;
        let ret: isize;
        // SAFETY: as above; aarch64 syscall ABI (x8 = nr, x0..x4 args).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_PPOLL,
                inlateout("x0") fds as usize => ret,
                in("x1") nfds,
                in("x2") ts,
                in("x3") 0usize, // sigmask: null
                in("x4") 0usize, // sigsetsize
                options(nostack),
            );
        }
        ret
    }

    /// Blocks until a descriptor is ready or `timeout_ms` elapses;
    /// returns the number of ready descriptors (0 on timeout).
    pub fn poll(fds: &mut [PollFd], timeout_ms: u32) -> std::io::Result<usize> {
        let ts = Timespec {
            tv_sec: i64::from(timeout_ms / 1000),
            tv_nsec: i64::from(timeout_ms % 1000) * 1_000_000,
        };
        let ret = sys_ppoll(fds.as_mut_ptr(), fds.len(), &raw const ts);
        if ret >= 0 {
            return Ok(usize::try_from(ret).expect("non-negative"));
        }
        let errno = i32::try_from(-ret).expect("small errno");
        const EINTR: i32 = 4;
        if errno == EINTR {
            return Ok(0); // a signal interrupted the wait; just re-loop
        }
        Err(std::io::Error::from_raw_os_error(errno))
    }
}

/// How a [`Poller`] waits: the kernel syscall where available, the
/// sleep-and-assume-ready fallback everywhere else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    /// `ppoll(2)` via the [`sys`] shim.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Kernel,
    /// Portable degraded mode: sleep briefly, then report every
    /// descriptor ready for exactly what it asked (the caller's
    /// `WouldBlock` handling filters the spurious ones).
    SleepScan,
}

/// Level-triggered readiness over a caller-built [`PollFd`] slice.
pub struct Poller {
    backend: Backend,
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

impl Poller {
    /// A poller using the best backend for this target.
    #[must_use]
    pub fn new() -> Poller {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            Poller {
                backend: Backend::Kernel,
            }
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            Poller {
                backend: Backend::SleepScan,
            }
        }
    }

    /// The portable fallback backend (used in tests; construction never
    /// fails, it is just slower than the kernel path).
    #[must_use]
    pub fn sleep_scan() -> Poller {
        Poller {
            backend: Backend::SleepScan,
        }
    }

    /// Waits until at least one descriptor is ready or `timeout_ms`
    /// elapses, filling in `revents`; returns the ready count (0 on
    /// timeout).
    ///
    /// # Errors
    ///
    /// Propagates the OS failure (never `EINTR`, which is swallowed and
    /// reported as a timeout).
    pub fn wait(&self, fds: &mut [PollFd], timeout_ms: u32) -> io::Result<usize> {
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
        match self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Kernel => sys::poll(fds, timeout_ms),
            Backend::SleepScan => {
                // Degraded portability mode: claim readiness after a
                // short nap. Correct (readiness is a hint) but burns a
                // little CPU; only used where the syscall shim is
                // unavailable.
                std::thread::sleep(std::time::Duration::from_millis(u64::from(
                    timeout_ms.min(1),
                )));
                for fd in fds.iter_mut() {
                    fd.revents = fd.events;
                }
                Ok(fds.len())
            }
        }
    }
}

/// A loopback socket pair waking a [`Poller`] from other threads.
///
/// `std` exposes no pipes, so the wake channel is a connected TCP pair
/// on `127.0.0.1` — the portable reactor-wakeup trick. The read end is
/// nonblocking and lives in the reactor's poll set; [`Waker`] clones
/// share the write end.
pub struct WakePair {
    reader: TcpStream,
    writer: TcpStream,
}

impl WakePair {
    /// Builds the connected pair on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn new() -> io::Result<WakePair> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        let (reader, _) = listener.accept()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        writer.set_nodelay(true)?;
        Ok(WakePair { reader, writer })
    }

    /// The descriptor to register with `POLLIN`.
    #[must_use]
    pub fn read_fd(&self) -> i32 {
        raw_fd(&self.reader)
    }

    /// A cloneable wake handle for solver threads.
    ///
    /// # Errors
    ///
    /// Propagates the descriptor clone failure.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            writer: self.writer.try_clone()?,
        })
    }

    /// Drains every pending wake byte (call once per loop iteration when
    /// the read end reports readable).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = self.reader.read(&mut buf) {
            if n == 0 {
                return; // all writers gone
            }
        }
    }
}

/// The writing side of a [`WakePair`]; one byte per wake, excess wakes
/// coalesce in the socket buffer.
pub struct Waker {
    writer: TcpStream,
}

impl Waker {
    /// Signals the reactor. A full socket buffer means wakes are already
    /// pending, so `WouldBlock` (and any other failure — the reactor is
    /// gone) is deliberately ignored.
    pub fn wake(&mut self) {
        let _ = self.writer.write(&[1u8]);
    }

    /// Another handle onto the same wake channel.
    ///
    /// # Errors
    ///
    /// Propagates the descriptor clone failure.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            writer: self.writer.try_clone()?,
        })
    }
}

/// The raw descriptor of a socket, for [`PollFd::new`].
#[must_use]
pub fn raw_fd<T: std::os::fd::AsRawFd>(socket: &T) -> i32 {
    socket.as_raw_fd()
}

/// The raw descriptor of a listener, for [`PollFd::new`].
#[must_use]
pub fn listener_fd(listener: &TcpListener) -> i32 {
    raw_fd(listener)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_on_an_idle_socket() {
        let pair = WakePair::new().unwrap();
        let poller = Poller::new();
        let mut fds = [PollFd::new(pair.read_fd(), POLLIN)];
        let start = Instant::now();
        let n = poller.wait(&mut fds, 50).unwrap();
        assert_eq!(n, 0, "no wake was sent");
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "must actually block"
        );
    }

    #[test]
    fn a_wake_makes_the_read_end_ready_and_drains() {
        let mut pair = WakePair::new().unwrap();
        let mut waker = pair.waker().unwrap();
        let poller = Poller::new();
        waker.wake();
        waker.wake(); // coalesces
        let mut fds = [PollFd::new(pair.read_fd(), POLLIN)];
        let n = poller.wait(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        pair.drain();
        // Drained: the next wait times out again.
        let n = poller.wait(&mut fds, 20).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wakes_cross_threads() {
        let mut pair = WakePair::new().unwrap();
        let waker = pair.waker().unwrap();
        let handle = std::thread::spawn(move || {
            let mut waker = waker.try_clone().unwrap();
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let poller = Poller::new();
        let mut fds = [PollFd::new(pair.read_fd(), POLLIN)];
        let n = poller.wait(&mut fds, 2000).unwrap();
        assert_eq!(n, 1, "the cross-thread wake must arrive");
        pair.drain();
        handle.join().unwrap();
    }

    #[test]
    fn writable_sockets_report_pollout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let poller = Poller::new();
        let mut fds = [PollFd::new(raw_fd(&stream), POLLOUT)];
        let n = poller.wait(&mut fds, 1000).unwrap();
        assert_eq!(n, 1, "a fresh socket has send-buffer space");
        assert!(fds[0].ready(POLLOUT));
    }

    #[test]
    fn sleep_scan_fallback_reports_spurious_readiness() {
        let pair = WakePair::new().unwrap();
        let poller = Poller::sleep_scan();
        let mut fds = [PollFd::new(pair.read_fd(), POLLIN)];
        // No wake was sent, but the fallback claims readiness — the
        // contract is "hint", and WouldBlock handling filters it.
        let n = poller.wait(&mut fds, 5).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }
}
