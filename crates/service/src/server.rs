//! The event-driven HTTP server: a single reactor thread multiplexing
//! every connection over [`crate::reactor`] readiness, plus a small
//! solver pool that **only cache misses** cross into.
//!
//! ```text
//!                        ┌──────────────────────────────┐
//!   clients ──accept──▶  │        reactor thread        │
//!     ▲                  │  poll(listener, conns, wake) │
//!     │   hits, errors,  │  read → parse → dispatch     │
//!     └── 4xx, metrics ◀─│  write staged responses      │
//!                        └──────┬──────────────▲────────┘
//!                     misses    │              │ wake pipe +
//!                 (bounded try_send)           │ completion queue
//!                        ┌──────▼──────────────┴────────┐
//!                        │       solver pool (N)        │
//!                        │  complete_solve / batches    │
//!                        └──────────────────────────────┘
//! ```
//!
//! Each connection is a small state machine (reading → dispatch →
//! writing) over two reusable buffers. Cache hits, protocol errors, and
//! the GET endpoints are answered **on the reactor thread** — a hit never
//! queues behind a cold solve. `POST /solve` bodies go through
//! [`SolveService::try_serve_fast`], so a byte-identical canonical body
//! is served straight off the raw-byte index without building a JSON
//! value tree at all.
//!
//! Backpressure is explicit at two levels: the pending-solve queue is a
//! bounded `sync_channel` whose overflow is answered `429 Too Many
//! Requests` + `Retry-After` (the request was understood — retry
//! shortly), and a connection cap above which new arrivals get `503` and
//! an immediate close. Responses are staged one at a time per
//! connection, so pipelined requests are answered strictly in order; the
//! connection's read interest is dropped while a response is pending,
//! letting the TCP window push back on floods.
//!
//! Endpoints:
//!
//! | Endpoint            | Behavior                                        |
//! |---------------------|-------------------------------------------------|
//! | `POST /solve`       | one game through cache + [`Solver`]; `X-Cache: hit\|miss` |
//! | `POST /solve_batch` | many games, one config; misses go through `solve_many` |
//! | `GET /metrics`      | service counters + reactor counters + cache stats |
//! | `GET /healthz`      | liveness probe                                  |
//! | `GET /debug/trace`  | the span flight recorder as JSON                |
//!
//! Every request is traced: the reactor adopts the trace id from an
//! `X-Bi-Trace` header (how a router hop correlates with the backend)
//! or mints one, records `parse`/`cache`/`encode`/`write` spans around
//! its own work plus a root `request` span, and the solver pool
//! records `solve`/`encode` under the same trace. Recording is a few
//! relaxed atomic stores per stage — the zero-copy hit path stays
//! intact. Requests slower than `--trace-slow-us` get their whole span
//! tree logged as one JSON line.
//!
//! [`Solver`]: bi_core::solve::Solver

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bi_obs::{Stage, TraceCtx};
use bi_util::Json;

use crate::cache::CacheConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::http::{parse_head, write_head_into, Response};
use crate::persist::DiskTierConfig;
use crate::reactor::{
    listener_fd, raw_fd, PollFd, Poller, WakePair, Waker, POLLERR, POLLHUP, POLLIN, POLLNVAL,
    POLLOUT,
};
use crate::service::{error_body, BatchRequest, FastOutcome, PreparedSolve, SolveService};

/// Server sizing and addressing.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound
    /// address is available via [`Server::local_addr`]).
    pub addr: String,
    /// Solver threads (`0` = one per available core). Only cache misses
    /// cross into this pool; everything else is served on the reactor.
    pub workers: usize,
    /// Pending-solve queue bound; overflow is answered `429` with
    /// `Retry-After`.
    pub queue_capacity: usize,
    /// Solve-cache sizing.
    pub cache: CacheConfig,
    /// Idle keep-alive timeout per connection (stalled writers count as
    /// idle too; connections waiting on a solve do not).
    pub read_timeout: Duration,
    /// Maximum simultaneously open connections; arrivals beyond the cap
    /// are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Path of the disk-backed cache log (`None` runs memory-only). The
    /// log is opened (and its torn tail repaired) at bind time; a
    /// restarted node replays its old key space warm.
    pub disk_path: Option<std::path::PathBuf>,
    /// Disk-tier sizing: the write-behind queue bound and the log
    /// compaction trigger (ignored when `disk_path` is `None`).
    pub disk: DiskTierConfig,
    /// Deterministic fault injection (`--fault-plan` on `bi-serve`).
    /// `None` serves faithfully; `Some` threads the seeded plan through
    /// the reactor's accept/read/write/dispatch seams for chaos tests.
    pub fault: Option<Arc<FaultPlan>>,
    /// Slow-request sampling: a request whose end-to-end latency
    /// reaches this many µs gets its full span tree logged as one JSON
    /// line (`None` disables the sampler; spans are recorded either
    /// way).
    pub trace_slow_us: Option<u64>,
}

impl Default for ServerConfig {
    /// Ephemeral port on localhost, one solver per core, a queue of 128
    /// pending solves, the default cache, 10 s idle timeout, 8192
    /// connections.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 128,
            cache: CacheConfig::default(),
            read_timeout: Duration::from_secs(10),
            max_connections: 8192,
            disk_path: None,
            disk: DiskTierConfig::default(),
            fault: None,
            trace_slow_us: None,
        }
    }
}

/// A bound (but not yet serving) solve server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<SolveService>,
}

impl Server {
    /// Binds the listener and builds the shared service state.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let disk = match &config.disk_path {
            Some(path) => Some(crate::persist::DiskTier::open(path, config.disk)?),
            None => None,
        };
        let service = Arc::new(SolveService::with_disk(config.cache, disk));
        Ok(Server {
            listener,
            config,
            service,
        })
    }

    /// The actually bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service state (for tests and embedding).
    #[must_use]
    pub fn service(&self) -> Arc<SolveService> {
        Arc::clone(&self.service)
    }

    /// Starts the reactor and solver pool; returns a handle that stops
    /// everything on [`ServerHandle::stop`].
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.config.workers
        };
        self.service.metrics().set_config_gauges(
            self.config.queue_capacity.max(1),
            u64::try_from(self.config.read_timeout.as_millis()).unwrap_or(u64::MAX),
            workers,
            self.config.max_connections.max(1),
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = sync_channel::<Job>(self.config.queue_capacity.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let wake = WakePair::new()?;
        let stop_waker = wake.waker()?;
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&job_rx);
            let service = Arc::clone(&self.service);
            let completions = Arc::clone(&completions);
            let mut waker = wake.waker()?;
            worker_handles.push(std::thread::spawn(move || {
                solver_loop(&rx, &service, &completions, &mut waker);
            }));
        }
        let mut reactor = Reactor {
            listener: self.listener,
            service: Arc::clone(&self.service),
            poller: Poller::new(),
            wake,
            completions,
            job_tx,
            slots: Vec::new(),
            free: Vec::new(),
            shutdown: Arc::clone(&shutdown),
            read_timeout: self.config.read_timeout,
            max_connections: self.config.max_connections.max(1),
            trace_slow_us: self.config.trace_slow_us,
            fault: self.config.fault.clone(),
        };
        let reactor_handle = std::thread::spawn(move || reactor.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            reactor: Some(reactor_handle),
            workers: worker_handles,
            service: self.service,
            waker: stop_waker,
        })
    }

    /// Binds-and-serves forever (the `bi-serve` binary's main loop).
    ///
    /// # Errors
    ///
    /// Propagates startup failures; never returns otherwise.
    pub fn run(self) -> io::Result<()> {
        let handle = self.start()?;
        if let Some(reactor) = handle.reactor {
            let _ = reactor.join();
        }
        Ok(())
    }
}

/// A running server: address plus the stop switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    service: Arc<SolveService>,
    waker: Waker,
}

impl ServerHandle {
    /// The serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (for asserting on metrics in tests).
    #[must_use]
    pub fn service(&self) -> Arc<SolveService> {
        Arc::clone(&self.service)
    }

    /// Stops the reactor, drains the pool, and joins all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor owned the job sender; its exit disconnects the
        // solver pool's `recv` and ends every worker.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One unit of work for the solver pool — only cache misses become jobs.
enum Job {
    /// A decoded `POST /solve` miss.
    Solve {
        slot: usize,
        generation: u64,
        prepared: Box<PreparedSolve>,
    },
    /// A `POST /solve_batch` body (parsed on the worker: batches are
    /// bulk work by definition, so their decode cost stays off the
    /// reactor).
    Batch {
        slot: usize,
        generation: u64,
        body: Vec<u8>,
        /// The request's trace context — the worker records the batch
        /// decode + solve as one `solve` span under it.
        ctx: TraceCtx,
    },
}

/// A finished job traveling back to the reactor over the wake channel.
struct Completion {
    slot: usize,
    generation: u64,
    response: Response,
}

fn solver_loop(
    rx: &Mutex<Receiver<Job>>,
    service: &SolveService,
    completions: &Mutex<Vec<Completion>>,
    waker: &mut Waker,
) {
    loop {
        let job = match rx.lock().expect("job lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // reactor gone
        };
        let completion = run_job(service, job);
        service
            .metrics()
            .solves_in_flight
            .fetch_sub(1, Ordering::Relaxed);
        completions
            .lock()
            .expect("completion lock poisoned")
            .push(completion);
        waker.wake();
    }
}

fn run_job(service: &SolveService, job: Job) -> Completion {
    match job {
        Job::Solve {
            slot,
            generation,
            prepared,
        } => {
            let response = match service.complete_solve(*prepared) {
                Ok(served) => {
                    Response::json(200, served.body.to_vec()).with_header("X-Cache", "miss")
                }
                // The request was well-formed; the game is unsolvable as
                // asked (budget, no equilibrium, …) — a semantic 422.
                Err(e) => Response::json(422, error_body(&e.to_string())),
            };
            Completion {
                slot,
                generation,
                response,
            }
        }
        Job::Batch {
            slot,
            generation,
            body,
            ctx,
        } => {
            let t0 = service.recorder().now_ns();
            let response = handle_batch(service, &body);
            if ctx.active() {
                let t1 = service.recorder().now_ns();
                service
                    .recorder()
                    .record(ctx.trace_id, ctx.parent, Stage::Solve, t0, t1);
            }
            Completion {
                slot,
                generation,
                response,
            }
        }
    }
}

/// Per-connection read burst size.
const READ_CHUNK: usize = 16 * 1024;

/// One connection's state machine: reading into `buf`, at most one
/// staged response in `out`, and the in-flight marker while a solve is
/// in the pool.
struct Conn {
    stream: TcpStream,
    /// Accumulated request bytes (consumed per request, capacity kept).
    buf: Vec<u8>,
    /// The staged response (head + body), written from `out_pos`.
    out: Vec<u8>,
    out_pos: usize,
    /// A solve for this connection is in the pool; parsing is paused.
    in_flight: bool,
    /// Keep-alive of the request currently being answered.
    req_keep_alive: bool,
    /// Close once `out` drains (protocol error or `Connection: close`).
    close_after_write: bool,
    /// The peer finished sending; drop the connection once quiet.
    eof: bool,
    last_activity: Instant,
    /// The trace of the request currently being answered, closed (root
    /// `request` span + `write` span recorded) once its response is
    /// fully flushed.
    trace: Option<ConnTrace>,
}

/// Trace state of one in-progress request on a connection.
struct ConnTrace {
    /// The trace id (adopted from `X-Bi-Trace` or minted).
    trace_id: u64,
    /// The root `request` span id — pre-allocated so every stage span
    /// can parent under it before the root itself is recorded.
    root_span: u64,
    /// The upstream parent span (from `X-Bi-Parent`; 0 when this node
    /// is the trace origin).
    parent: u64,
    /// When the request's bytes were first seen complete (ns).
    req_start_ns: u64,
    /// When its response was staged (ns); 0 until then. The gap to the
    /// final flush is the `write` span.
    staged_ns: u64,
}

/// A slab slot: its occupant plus a generation counter so completions
/// for closed connections are discarded instead of answering whoever
/// reused the slot.
struct Slot {
    conn: Option<Conn>,
    generation: u64,
}

/// What to do with a connection after an I/O pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnAction {
    Keep,
    Remove,
}

/// The reactor: owns the listener, the connection slab, and the poll
/// loop; everything it serves inline never touches the solver pool.
struct Reactor {
    listener: TcpListener,
    service: Arc<SolveService>,
    poller: Poller,
    wake: WakePair,
    completions: Arc<Mutex<Vec<Completion>>>,
    job_tx: SyncSender<Job>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
    max_connections: usize,
    trace_slow_us: Option<u64>,
    /// The seeded fault plan, consulted at each seam (accept, read,
    /// write, dispatch); `None` on a faithful server.
    fault: Option<Arc<FaultPlan>>,
}

impl Reactor {
    fn run(&mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut fd_slots: Vec<usize> = Vec::new();
        let timeout_ms = u32::try_from(self.read_timeout.as_millis() / 4)
            .unwrap_or(u32::MAX)
            .clamp(10, 200);
        while !self.shutdown.load(Ordering::Relaxed) {
            fds.clear();
            fd_slots.clear();
            fds.push(PollFd::new(self.wake.read_fd(), POLLIN));
            fd_slots.push(usize::MAX);
            fds.push(PollFd::new(listener_fd(&self.listener), POLLIN));
            fd_slots.push(usize::MAX);
            for (i, slot) in self.slots.iter().enumerate() {
                if let Some(conn) = &slot.conn {
                    let mut events = 0i16;
                    if !conn.in_flight && conn.out.is_empty() && !conn.eof {
                        events |= POLLIN;
                    }
                    if !conn.out.is_empty() {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd::new(raw_fd(&conn.stream), events));
                    fd_slots.push(i);
                }
            }
            let ready = match self.poller.wait(&mut fds, timeout_ms) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if ready > 0 {
                self.service
                    .metrics()
                    .reactor_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            if fds[0].ready(POLLIN) {
                self.wake.drain();
            }
            self.drain_completions();
            if fds[1].ready(POLLIN) {
                self.accept_ready();
            }
            for k in 2..fds.len() {
                let fd = fds[k];
                if fd.revents() == 0 {
                    continue;
                }
                self.handle_conn_event(fd_slots[k], fd);
            }
            self.sweep_idle();
        }
    }

    /// Applies readiness to one connection and removes it on failure.
    fn handle_conn_event(&mut self, idx: usize, fd: PollFd) {
        let generation = self.slots[idx].generation;
        let fault = self.fault.as_deref();
        let action = {
            let Some(conn) = self.slots[idx].conn.as_mut() else {
                return;
            };
            let result = if fd.ready(POLLOUT) && !conn.out.is_empty() {
                pump(
                    conn,
                    &self.service,
                    &self.job_tx,
                    idx,
                    generation,
                    self.trace_slow_us,
                    fault,
                )
            } else if fd.ready(POLLIN) && !conn.in_flight && conn.out.is_empty() && !conn.eof {
                on_readable(
                    conn,
                    &self.service,
                    &self.job_tx,
                    idx,
                    generation,
                    self.trace_slow_us,
                    fault,
                )
            } else if fd.revents() & (POLLERR | POLLHUP | POLLNVAL) != 0 {
                // An errored or hung-up peer we have nothing staged for
                // (including one we are mid-solve for): drop it; any
                // completion is discarded by the generation check.
                Ok(ConnAction::Remove)
            } else {
                Ok(ConnAction::Keep)
            };
            result.unwrap_or(ConnAction::Remove)
        };
        if action == ConnAction::Remove {
            self.remove_conn(idx);
        }
    }

    /// Accepts until the backlog is dry, registering connections up to
    /// the cap and answering `503` beyond it.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            self.service
                .metrics()
                .connections_total
                .fetch_add(1, Ordering::Relaxed);
            // The accept seam: a refused connection is dropped before a
            // byte is exchanged, as if the listener's backlog reset it.
            if let Some(plan) = &self.fault {
                if plan.next() == Some(FaultKind::Refuse) {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    continue;
                }
            }
            let open = self.slots.iter().filter(|s| s.conn.is_some()).count();
            if open >= self.max_connections {
                reject_busy(stream, &self.service);
                continue;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue; // the socket died before it ever registered
            }
            let conn = Conn {
                stream,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                in_flight: false,
                req_keep_alive: true,
                close_after_write: false,
                eof: false,
                last_activity: Instant::now(),
                trace: None,
            };
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slots.push(Slot {
                        conn: None,
                        generation: 0,
                    });
                    self.slots.len() - 1
                }
            };
            self.slots[idx].conn = Some(conn);
            self.service
                .metrics()
                .open_connections
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stages every completed solve onto its (still-live) connection and
    /// pushes the response out.
    fn drain_completions(&mut self) {
        let done = std::mem::take(&mut *self.completions.lock().expect("completion lock poisoned"));
        for completion in done {
            let idx = completion.slot;
            let action = {
                if self.slots[idx].generation != completion.generation {
                    continue; // the connection closed mid-solve
                }
                let Some(conn) = self.slots[idx].conn.as_mut() else {
                    continue;
                };
                conn.in_flight = false;
                stage_response(conn, &self.service, &completion.response);
                pump(
                    conn,
                    &self.service,
                    &self.job_tx,
                    idx,
                    completion.generation,
                    self.trace_slow_us,
                    self.fault.as_deref(),
                )
                .unwrap_or(ConnAction::Remove)
            };
            if action == ConnAction::Remove {
                self.remove_conn(idx);
            }
        }
    }

    /// Closes connections quiet for longer than the timeout. In-flight
    /// connections are exempt — their clock is the solve, not the peer.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let stale = self.slots[idx].conn.as_ref().is_some_and(|c| {
                !c.in_flight && now.duration_since(c.last_activity) > self.read_timeout
            });
            if stale {
                self.remove_conn(idx);
            }
        }
    }

    fn remove_conn(&mut self, idx: usize) {
        if self.slots[idx].conn.take().is_some() {
            self.slots[idx].generation += 1;
            self.free.push(idx);
            self.service
                .metrics()
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Reads everything available, then drives the state machine.
fn on_readable(
    conn: &mut Conn,
    service: &SolveService,
    job_tx: &SyncSender<Job>,
    slot: usize,
    generation: u64,
    trace_slow_us: Option<u64>,
    fault: Option<&FaultPlan>,
) -> io::Result<ConnAction> {
    // The read seam: a disconnect drops the peer mid-body, a delay
    // stalls the whole pass, a short read caps it at one byte (the
    // request still completes — across many passes).
    let mut read_cap = READ_CHUNK;
    if let Some(plan) = fault {
        match plan.next() {
            Some(FaultKind::Disconnect) => return Ok(ConnAction::Remove),
            Some(FaultKind::Delay) => std::thread::sleep(plan.delay()),
            Some(FaultKind::ShortRead) => read_cap = 1,
            _ => {}
        }
    }
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk[..read_cap]) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                if n < read_cap || read_cap < READ_CHUNK {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    pump(
        conn,
        service,
        job_tx,
        slot,
        generation,
        trace_slow_us,
        fault,
    )
}

/// Drives one connection as far as it can go without blocking:
/// parse → dispatch → write, looping while pipelined requests complete.
fn pump(
    conn: &mut Conn,
    service: &SolveService,
    job_tx: &SyncSender<Job>,
    slot: usize,
    generation: u64,
    trace_slow_us: Option<u64>,
    fault: Option<&FaultPlan>,
) -> io::Result<ConnAction> {
    loop {
        process_buffered(conn, service, job_tx, slot, generation, fault);
        if conn.out.is_empty() {
            // Waiting on more bytes or on the solver pool. A peer that
            // finished sending and owes us nothing is done.
            if conn.eof && !conn.in_flight {
                return Ok(ConnAction::Remove);
            }
            return Ok(ConnAction::Keep);
        }
        if !flush_out(conn, fault)? {
            return Ok(ConnAction::Keep); // socket full; wait for POLLOUT
        }
        conn.out.clear();
        conn.out_pos = 0;
        finish_trace(conn, service, trace_slow_us);
        if conn.close_after_write {
            return Ok(ConnAction::Remove);
        }
        // Response delivered — loop to answer the next pipelined request.
    }
}

/// Closes the flushed request's trace: records the `write` span (staged
/// → fully flushed), the root `request` span covering the whole
/// exchange, and — when the total crosses the slow threshold — logs the
/// entire span tree as one JSON line.
fn finish_trace(conn: &mut Conn, service: &SolveService, trace_slow_us: Option<u64>) {
    let Some(trace) = conn.trace.take() else {
        return;
    };
    let recorder = service.recorder();
    let now = recorder.now_ns();
    let staged = if trace.staged_ns == 0 {
        now
    } else {
        trace.staged_ns
    };
    recorder.record(trace.trace_id, trace.root_span, Stage::Write, staged, now);
    recorder.record_span(
        trace.root_span,
        trace.trace_id,
        trace.parent,
        Stage::Request,
        trace.req_start_ns,
        now,
    );
    let stages = &service.metrics().stages;
    stages.record(Stage::Write, now.saturating_sub(staged) / 1_000);
    let total_us = now.saturating_sub(trace.req_start_ns) / 1_000;
    stages.record(Stage::Request, total_us);
    if trace_slow_us.is_some_and(|limit| total_us >= limit)
        && bi_obs::log::enabled(bi_obs::Level::Warn)
    {
        let spans = recorder.trace_spans(trace.trace_id);
        bi_obs::log::warn(
            "bi-serve",
            "slow request",
            &[
                ("trace", Json::from_u64(trace.trace_id)),
                ("total_us", Json::from_u64(total_us)),
                (
                    "spans",
                    Json::Arr(spans.iter().map(bi_obs::SpanEvent::to_json).collect()),
                ),
            ],
        );
    }
}

/// Parses and dispatches buffered requests while the connection has no
/// staged response and no solve in flight (one response at a time keeps
/// pipelined answers in order).
fn process_buffered(
    conn: &mut Conn,
    service: &SolveService,
    job_tx: &SyncSender<Job>,
    slot: usize,
    generation: u64,
    fault: Option<&FaultPlan>,
) {
    while conn.out.is_empty() && !conn.in_flight {
        let recorder = service.recorder();
        let t_parse = recorder.now_ns();
        let head = match parse_head(&conn.buf) {
            Ok(None) => return, // need more bytes
            Ok(Some(head)) => head,
            Err(e) => {
                // Protocol errors poison framing: answer and close.
                conn.close_after_write = true;
                stage_bytes(conn, service, e.status, &error_body(&e.msg), &[]);
                return;
            }
        };
        let total = head.total_len();
        if conn.buf.len() < total {
            return; // body still in flight
        }
        let metrics = service.metrics();
        metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        conn.req_keep_alive = head.keep_alive;
        // Adopt the peer's trace id (a router hop) or mint one; the
        // root span id is allocated now so every stage nests under it,
        // and the root itself is recorded when the response flushes.
        let trace_id = head.trace_id.unwrap_or_else(|| recorder.new_trace_id());
        let root_span = recorder.next_span_id();
        conn.trace = Some(ConnTrace {
            trace_id,
            root_span,
            parent: head.parent_span.unwrap_or(0),
            req_start_ns: t_parse,
            staged_ns: 0,
        });
        let ctx = TraceCtx {
            trace_id,
            parent: root_span,
        };
        let t_parsed = recorder.now_ns();
        recorder.record(trace_id, root_span, Stage::Parse, t_parse, t_parsed);
        metrics
            .stages
            .record(Stage::Parse, t_parsed.saturating_sub(t_parse) / 1_000);
        let target = classify(&conn.buf[head.method.clone()], &conn.buf[head.path.clone()]);
        let body_range = head.head_len..total;
        // The dispatch seam: serving endpoints can answer an injected
        // 500 — the request was understood, the work was "lost". Probes
        // and metrics stay faithful so chaos runs remain observable.
        if matches!(target, Target::Solve | Target::Batch | Target::CachePut) {
            if let Some(plan) = fault {
                if plan.next() == Some(FaultKind::Err500) {
                    conn.buf.drain(..total);
                    stage_bytes(conn, service, 500, &error_body("injected fault"), &[]);
                    continue;
                }
            }
        }
        match target {
            Target::Solve => {
                metrics.solve_requests.fetch_add(1, Ordering::Relaxed);
                match service.try_serve_fast(&conn.buf[body_range], ctx) {
                    Ok(FastOutcome::Hit(served)) => {
                        let body = served.body;
                        conn.buf.drain(..total);
                        // Staging the cached bytes is the hit path's
                        // `encode` stage (head build + body copy).
                        let t_enc = recorder.now_ns();
                        stage_bytes(conn, service, 200, &body, &[("X-Cache", "hit")]);
                        service.finish_encode_stage(ctx, t_enc);
                    }
                    Ok(FastOutcome::Miss(prepared)) => {
                        conn.buf.drain(..total);
                        submit_job(
                            conn,
                            service,
                            job_tx,
                            Job::Solve {
                                slot,
                                generation,
                                prepared,
                            },
                        );
                    }
                    Err(e) => {
                        conn.buf.drain(..total);
                        stage_bytes(conn, service, 400, &error_body(&e.to_string()), &[]);
                    }
                }
            }
            Target::Batch => {
                metrics.batch_requests.fetch_add(1, Ordering::Relaxed);
                let body = conn.buf[body_range].to_vec();
                conn.buf.drain(..total);
                submit_job(
                    conn,
                    service,
                    job_tx,
                    Job::Batch {
                        slot,
                        generation,
                        body,
                        ctx,
                    },
                );
            }
            Target::Healthz => {
                conn.buf.drain(..total);
                stage_bytes(conn, service, 200, &healthz_body(), &[]);
            }
            Target::CachePut => {
                let (status, body) = handle_cache_put(service, &conn.buf[body_range]);
                conn.buf.drain(..total);
                stage_bytes(conn, service, status, &body, &[]);
            }
            Target::Metrics => {
                conn.buf.drain(..total);
                let mut doc = service.metrics_json();
                if let Some(plan) = fault {
                    if let Json::Obj(fields) = &mut doc {
                        fields.push(("faults".into(), plan.to_json()));
                    }
                }
                let body = doc.to_string().into_bytes();
                stage_bytes(conn, service, 200, &body, &[]);
            }
            Target::DebugTrace => {
                conn.buf.drain(..total);
                let body = service.trace_json().to_string().into_bytes();
                stage_bytes(conn, service, 200, &body, &[]);
            }
            Target::MethodNotAllowed => {
                conn.buf.drain(..total);
                stage_bytes(conn, service, 405, &error_body("method not allowed"), &[]);
            }
            Target::NotFound => {
                conn.buf.drain(..total);
                stage_bytes(conn, service, 404, &error_body("unknown endpoint"), &[]);
            }
        }
    }
}

/// Hands a miss to the solver pool, answering `429` + `Retry-After` when
/// the bounded queue is full — backpressure, not failure.
fn submit_job(conn: &mut Conn, service: &SolveService, job_tx: &SyncSender<Job>, job: Job) {
    match job_tx.try_send(job) {
        Ok(()) => {
            conn.in_flight = true;
            service
                .metrics()
                .solves_in_flight
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Full(_)) => {
            service
                .metrics()
                .backpressure_429
                .fetch_add(1, Ordering::Relaxed);
            stage_bytes(
                conn,
                service,
                429,
                &error_body("solver queue is full, retry shortly"),
                &[("Retry-After", "1")],
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            conn.close_after_write = true;
            stage_bytes(
                conn,
                service,
                503,
                &error_body("server is shutting down"),
                &[],
            );
        }
    }
}

/// Writes as much of the staged response as the socket accepts; `true`
/// once fully flushed.
fn flush_out(conn: &mut Conn, fault: Option<&FaultPlan>) -> io::Result<bool> {
    // The write seam: a disconnect resets the peer mid-response, a
    // delay stalls the flush, a short write pushes one byte and yields
    // back to the poll loop (POLLOUT is level-triggered, so the rest
    // follows on later passes).
    let mut write_cap = usize::MAX;
    if let Some(plan) = fault {
        match plan.next() {
            Some(FaultKind::Disconnect) => return Err(io::ErrorKind::ConnectionReset.into()),
            Some(FaultKind::Delay) => std::thread::sleep(plan.delay()),
            Some(FaultKind::ShortWrite) => write_cap = 1,
            _ => {}
        }
    }
    while conn.out_pos < conn.out.len() {
        let end = conn.out_pos.saturating_add(write_cap).min(conn.out.len());
        match conn.stream.write(&conn.out[conn.out_pos..end]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
                if write_cap != usize::MAX && conn.out_pos < conn.out.len() {
                    return Ok(false); // short write injected; resume on POLLOUT
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Stages a response into the connection's reusable output buffer and
/// records its status (the one place statuses are counted).
fn stage_bytes(
    conn: &mut Conn,
    service: &SolveService,
    status: u16,
    body: &[u8],
    extra: &[(&str, &str)],
) {
    service.metrics().record_status(status);
    let keep = conn.req_keep_alive && !conn.close_after_write;
    write_head_into(
        &mut conn.out,
        status,
        "application/json",
        body.len(),
        keep,
        extra,
    );
    conn.out.extend_from_slice(body);
    conn.out_pos = 0;
    if let Some(trace) = &mut conn.trace {
        if trace.staged_ns == 0 {
            trace.staged_ns = service.recorder().now_ns();
        }
    }
    if !keep {
        conn.close_after_write = true;
    }
}

/// Stages a solver-pool [`Response`] (carries its own extra headers).
fn stage_response(conn: &mut Conn, service: &SolveService, response: &Response) {
    let extra: Vec<(&str, &str)> = response
        .extra_headers
        .iter()
        .map(|(k, v)| (*k, v.as_str()))
        .collect();
    stage_bytes(conn, service, response.status, &response.body, &extra);
}

/// What one parsed request asks the reactor to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    Solve,
    Batch,
    CachePut,
    Healthz,
    Metrics,
    DebugTrace,
    MethodNotAllowed,
    NotFound,
}

fn classify(method: &[u8], path: &[u8]) -> Target {
    match (method, path) {
        (b"POST", b"/solve") => Target::Solve,
        (b"POST", b"/solve_batch") => Target::Batch,
        (b"POST", b"/cache_put") => Target::CachePut,
        (b"GET", b"/healthz") => Target::Healthz,
        (b"GET", b"/metrics") => Target::Metrics,
        (b"GET", b"/debug/trace") => Target::DebugTrace,
        (
            _,
            b"/healthz" | b"/metrics" | b"/debug/trace" | b"/solve" | b"/solve_batch"
            | b"/cache_put",
        ) => Target::MethodNotAllowed,
        _ => Target::NotFound,
    }
}

fn healthz_body() -> Vec<u8> {
    Json::Obj(vec![("status".into(), Json::str("ok"))]).canonical_bytes()
}

/// Answers `503` on the reactor when the connection cap is reached — the
/// rejection path must stay cheap and never block on a worker. The
/// freshly accepted socket is still in blocking mode; the response is a
/// handful of bytes, so the write cannot stall meaningfully.
fn reject_busy(mut stream: TcpStream, service: &SolveService) {
    service
        .metrics()
        .rejected_busy
        .fetch_add(1, Ordering::Relaxed);
    service.metrics().record_status(503);
    let response = Response::json(503, error_body("connection limit reached, retry later"));
    let _ = response.write(&mut stream, false);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Installs a peer-shipped response (`POST /cache_put`). The body is
/// binary-framed — `[request_len u32 LE][request bytes][response
/// bytes]` — so the solve request and its canonical response travel as
/// one opaque payload with no JSON re-encoding on either side.
fn handle_cache_put(service: &SolveService, body: &[u8]) -> (u16, Vec<u8>) {
    if body.len() < 4 {
        return (
            400,
            error_body("cache_put body is shorter than its length prefix"),
        );
    }
    let req_len = u32::from_le_bytes(body[..4].try_into().expect("four bytes checked")) as usize;
    let rest = &body[4..];
    if req_len > rest.len() {
        return (400, error_body("cache_put request length exceeds the body"));
    }
    let (request, response) = rest.split_at(req_len);
    match service.cache_put(request, response) {
        Ok(()) => (
            200,
            Json::Obj(vec![("status".into(), Json::str("stored"))]).canonical_bytes(),
        ),
        Err(e) => (400, error_body(&e.to_string())),
    }
}

fn parse_body<T: bi_util::Decode>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("body must be UTF-8 JSON")))?;
    T::decode_str(text).map_err(|e| Response::json(400, error_body(&e.to_string())))
}

fn handle_batch(service: &SolveService, body: &[u8]) -> Response {
    let batch: BatchRequest = match parse_body(body) {
        Ok(batch) => batch,
        Err(response) => return response,
    };
    let results = service.solve_batch(&batch);
    let (mut hits, mut misses) = (0u64, 0u64);
    // The per-game bodies are already canonical JSON bytes; splice them
    // instead of re-parsing.
    let mut out = String::from(r#"{"reports":["#);
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match result {
            Ok(outcome) => {
                if outcome.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                out.push_str(r#"{"report":"#);
                out.push_str(std::str::from_utf8(&outcome.body).expect("canonical JSON is UTF-8"));
                out.push('}');
            }
            Err(e) => {
                out.push_str(
                    std::str::from_utf8(&error_body(&e.to_string()))
                        .expect("canonical JSON is UTF-8"),
                );
            }
        }
    }
    out.push_str("]}");
    Response::json(200, out.into_bytes())
        .with_header("X-Cache-Hits", hits.to_string())
        .with_header("X-Cache-Misses", misses.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_endpoint() {
        assert_eq!(classify(b"POST", b"/solve"), Target::Solve);
        assert_eq!(classify(b"POST", b"/solve_batch"), Target::Batch);
        assert_eq!(classify(b"POST", b"/cache_put"), Target::CachePut);
        assert_eq!(classify(b"GET", b"/cache_put"), Target::MethodNotAllowed);
        assert_eq!(classify(b"GET", b"/healthz"), Target::Healthz);
        assert_eq!(classify(b"GET", b"/metrics"), Target::Metrics);
        assert_eq!(classify(b"GET", b"/debug/trace"), Target::DebugTrace);
        assert_eq!(classify(b"DELETE", b"/solve"), Target::MethodNotAllowed);
        assert_eq!(classify(b"POST", b"/healthz"), Target::MethodNotAllowed);
        assert_eq!(classify(b"POST", b"/debug/trace"), Target::MethodNotAllowed);
        assert_eq!(classify(b"GET", b"/nope"), Target::NotFound);
    }

    #[test]
    fn batch_handler_maps_parse_errors_to_400() {
        let service = SolveService::new(CacheConfig::default());
        assert_eq!(handle_batch(&service, b"not json").status, 400);
        assert_eq!(handle_batch(&service, &[0xff, 0xfe]).status, 400);
        assert_eq!(handle_batch(&service, b"{}").status, 400);
    }
}
