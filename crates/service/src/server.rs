//! The concurrent HTTP server: a `std::net::TcpListener` accept loop, a
//! **bounded** request queue, and a fixed pool of worker threads routing
//! every request through the shared [`SolveService`].
//!
//! Backpressure is explicit: the accept loop `try_send`s each connection
//! into a `sync_channel` of capacity [`ServerConfig::queue_capacity`];
//! when the queue is full the connection is answered `503 Service
//! Unavailable` immediately instead of piling up latency. Workers speak
//! keep-alive HTTP/1.1 (see [`crate::http`]) and serve any number of
//! requests per connection.
//!
//! Endpoints:
//!
//! | Endpoint            | Behavior                                        |
//! |---------------------|-------------------------------------------------|
//! | `POST /solve`       | one game through cache + [`Solver`]; `X-Cache: hit\|miss` |
//! | `POST /solve_batch` | many games, one config; misses go through `solve_many` |
//! | `GET /metrics`      | service counters + cache stats as JSON          |
//! | `GET /healthz`      | liveness probe                                  |
//!
//! [`Solver`]: bi_core::solve::Solver

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bi_util::{Decode, Json};

use crate::cache::CacheConfig;
use crate::http::{read_request, Response};
use crate::service::{error_body, BatchRequest, SolveRequest, SolveService};

/// Server sizing and addressing.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound
    /// address is available via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Pending-connection queue bound; overflow is answered `503`.
    pub queue_capacity: usize,
    /// Solve-cache sizing.
    pub cache: CacheConfig,
    /// Idle keep-alive read timeout per connection.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    /// Ephemeral port on localhost, one worker per core, a queue of 128
    /// pending connections, the default cache, 10 s idle timeout.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 128,
            cache: CacheConfig::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A bound (but not yet serving) solve server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<SolveService>,
}

impl Server {
    /// Binds the listener and builds the shared service state.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(SolveService::new(config.cache));
        Ok(Server {
            listener,
            config,
            service,
        })
    }

    /// The actually bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service state (for tests and embedding).
    #[must_use]
    pub fn service(&self) -> Arc<SolveService> {
        Arc::clone(&self.service)
    }

    /// Starts the accept loop and worker pool; returns a handle that
    /// stops everything on [`ServerHandle::stop`].
    ///
    /// # Errors
    ///
    /// Propagates listener cloning failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.config.workers
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(self.config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&shutdown);
            let timeout = self.config.read_timeout;
            worker_handles.push(std::thread::spawn(move || {
                worker_loop(&rx, &service, &shutdown, timeout);
            }));
        }
        let listener = self.listener;
        let service = Arc::clone(&self.service);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            // `tx` lives in this thread; dropping it on exit disconnects
            // the workers' `recv` and ends the pool.
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                service
                    .metrics()
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => reject_busy(stream, &service),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            workers: worker_handles,
            service: self.service,
        })
    }

    /// Binds-and-serves forever (the `bi-serve` binary's main loop).
    ///
    /// # Errors
    ///
    /// Propagates startup failures; never returns otherwise.
    pub fn run(self) -> io::Result<()> {
        let handle = self.start()?;
        // Serving threads run forever; park the caller.
        if let Some(accept) = handle.accept {
            let _ = accept.join();
        }
        Ok(())
    }
}

/// A running server: address plus the stop switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    service: Arc<SolveService>,
}

impl ServerHandle {
    /// The serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (for asserting on metrics in tests).
    #[must_use]
    pub fn service(&self) -> Arc<SolveService> {
        Arc::clone(&self.service)
    }

    /// Stops accepting, drains the pool, and joins all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Answers `503` on the accept thread when the queue is full — the
/// backpressure path must stay cheap and never block on a worker.
fn reject_busy(mut stream: TcpStream, service: &SolveService) {
    service
        .metrics()
        .rejected_busy
        .fetch_add(1, Ordering::Relaxed);
    service.metrics().record_status(503);
    let response = Response::json(503, error_body("request queue is full, retry later"));
    let _ = response.write(&mut stream, false);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    service: &SolveService,
    shutdown: &AtomicBool,
    timeout: Duration,
) {
    loop {
        let stream = match rx.lock().expect("queue lock poisoned").recv() {
            Ok(stream) => stream,
            Err(_) => return, // accept loop gone
        };
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let _ = handle_connection(stream, service, shutdown, timeout);
    }
}

/// Serves keep-alive requests on one connection until the peer closes,
/// an error occurs, or shutdown begins.
fn handle_connection(
    stream: TcpStream,
    service: &SolveService,
    shutdown: &AtomicBool,
    timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(None) => return Ok(()), // peer closed cleanly
            Ok(Some(Ok(request))) => request,
            Ok(Some(Err(protocol))) => {
                // Protocol errors poison framing: answer and close.
                service.metrics().record_status(protocol.status);
                let response = Response::json(protocol.status, error_body(&protocol.msg));
                response.write(&mut writer, false)?;
                return Ok(());
            }
            Err(_) => return Ok(()), // timeout or transport failure
        };
        let keep_alive = request.keep_alive() && !shutdown.load(Ordering::Relaxed);
        let response = route(service, &request.method, &request.path, &request.body);
        service.metrics().record_status(response.status);
        response.write(&mut writer, keep_alive)?;
        if !keep_alive {
            writer.flush()?;
            return Ok(());
        }
    }
}

/// Routes one parsed request to its endpoint.
fn route(service: &SolveService, method: &str, path: &str, body: &[u8]) -> Response {
    service
        .metrics()
        .requests_total
        .fetch_add(1, Ordering::Relaxed);
    match (method, path) {
        ("GET", "/healthz") => Response::json(
            200,
            Json::Obj(vec![("status".into(), Json::str("ok"))]).canonical_bytes(),
        ),
        ("GET", "/metrics") => Response::json(200, service.metrics_json().to_string().into_bytes()),
        ("POST", "/solve") => {
            service
                .metrics()
                .solve_requests
                .fetch_add(1, Ordering::Relaxed);
            handle_solve(service, body)
        }
        ("POST", "/solve_batch") => {
            service
                .metrics()
                .batch_requests
                .fetch_add(1, Ordering::Relaxed);
            handle_batch(service, body)
        }
        (_, "/healthz" | "/metrics" | "/solve" | "/solve_batch") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("unknown endpoint")),
    }
}

fn parse_body<T: Decode>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("body must be UTF-8 JSON")))?;
    T::decode_str(text).map_err(|e| Response::json(400, error_body(&e.to_string())))
}

fn handle_solve(service: &SolveService, body: &[u8]) -> Response {
    let request: SolveRequest = match parse_body(body) {
        Ok(request) => request,
        Err(response) => return response,
    };
    match service.solve(&request) {
        Ok(outcome) => Response::json(200, outcome.body.to_vec())
            .with_header("X-Cache", if outcome.cache_hit { "hit" } else { "miss" }),
        // The request was well-formed; the game is unsolvable as asked
        // (budget, no equilibrium, …) — a semantic 422, not a 400.
        Err(e) => Response::json(422, error_body(&e.to_string())),
    }
}

fn handle_batch(service: &SolveService, body: &[u8]) -> Response {
    let batch: BatchRequest = match parse_body(body) {
        Ok(batch) => batch,
        Err(response) => return response,
    };
    let results = service.solve_batch(&batch);
    let (mut hits, mut misses) = (0u64, 0u64);
    // The per-game bodies are already canonical JSON bytes; splice them
    // instead of re-parsing.
    let mut out = String::from(r#"{"reports":["#);
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match result {
            Ok(outcome) => {
                if outcome.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                out.push_str(r#"{"report":"#);
                out.push_str(std::str::from_utf8(&outcome.body).expect("canonical JSON is UTF-8"));
                out.push('}');
            }
            Err(e) => {
                out.push_str(
                    std::str::from_utf8(&error_body(&e.to_string()))
                        .expect("canonical JSON is UTF-8"),
                );
            }
        }
    }
    out.push_str("]}");
    Response::json(200, out.into_bytes())
        .with_header("X-Cache-Hits", hits.to_string())
        .with_header("X-Cache-Misses", misses.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_rejects_unknown_paths_and_methods() {
        let service = SolveService::new(CacheConfig::default());
        assert_eq!(route(&service, "GET", "/nope", b"").status, 404);
        assert_eq!(route(&service, "DELETE", "/solve", b"").status, 405);
        assert_eq!(route(&service, "POST", "/healthz", b"").status, 405);
        assert_eq!(route(&service, "GET", "/healthz", b"").status, 200);
    }

    #[test]
    fn solve_endpoint_maps_error_classes_to_statuses() {
        let service = SolveService::new(CacheConfig::default());
        assert_eq!(route(&service, "POST", "/solve", b"not json").status, 400);
        assert_eq!(route(&service, "POST", "/solve", b"\xff\xfe").status, 400);
        assert_eq!(route(&service, "POST", "/solve", b"{}").status, 400);
    }

    #[test]
    fn metrics_endpoint_reports_counts() {
        let service = SolveService::new(CacheConfig::default());
        let _ = route(&service, "GET", "/healthz", b"");
        let response = route(&service, "GET", "/metrics", b"");
        assert_eq!(response.status, 200);
        let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(doc.get("requests_total").unwrap().as_u64(), Some(2));
    }
}
