//! `bi-loadgen` — seeded workload replay against a running `bi-serve`.
//!
//! Two phases over one deterministic mixed workload (matrix-form + NCS
//! games, see `bi_service::workload`):
//!
//! 1. **cold** — every unique game once: all cache misses, measuring
//!    engine-bound throughput;
//! 2. **hot** — `--hot` requests sampled (seeded) from the same pool:
//!    all cache hits, measuring the served-from-cache ceiling.
//!
//! Then one `POST /solve_batch` over a workload slice exercises the
//! batch path, an optional `--sweep-clients` pass replays the warm pool
//! at each requested concurrency level (every connection open at once,
//! request fire synchronized on a barrier), and `GET /metrics` is
//! scraped into the report. Results — throughput, latency percentiles,
//! cache-hit rate, hot/cold speedup, the client scaling curve — are
//! written to `BENCH_service.json` (committed to seed the repo's perf
//! trajectory).
//!
//! Exit status is non-zero if any request failed (sweep included), if
//! `--min-hit-rate` was given and the hot phase hit rate fell below it,
//! or if `--max-hot-p50-us` was given and the hot-phase median exceeded
//! it — which is what the CI smoke job asserts.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use bi_core::solve::SolverConfig;
use bi_service::http::{read_response, write_request};
use bi_service::service::{BatchRequest, SolveRequest};
use bi_service::workload::mixed_workload;
use bi_util::rng::{derive_seed, seeded};
use bi_util::{Encode, Json};
use rand::Rng;

const USAGE: &str = "\
bi-loadgen — seeded load generator for bi-serve

USAGE: bi-loadgen --addr HOST:PORT [OPTIONS]

OPTIONS:
  --addr HOST:PORT    server address (required)
  --seed N            workload seed (default 1)
  --unique N          distinct games in the pool (default 64)
  --hot N             hot-phase requests over the pool (default 1500)
  --clients N         concurrent client connections (default 4)
  --sweep-clients L   comma-separated concurrency levels to replay the warm
                      pool at (e.g. 4,64,256,1024); recorded as client_sweep
  --out FILE          benchmark report path (default BENCH_service.json)
  --min-hit-rate F    fail unless the hot-phase cache-hit rate reaches F
  --max-hot-p50-us N  fail if the hot-phase median latency exceeds N µs
  --help              print this help
";

struct Args {
    addr: String,
    seed: u64,
    unique: usize,
    hot: usize,
    clients: usize,
    sweep_clients: Vec<usize>,
    out: String,
    min_hit_rate: Option<f64>,
    max_hot_p50_us: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: String::new(),
        seed: 1,
        unique: 64,
        hot: 1500,
        clients: 4,
        sweep_clients: Vec::new(),
        out: "BENCH_service.json".into(),
        min_hit_rate: None,
        max_hot_p50_us: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" {
            print!("{USAGE}");
            exit(0);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let num = |v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("flag {flag} needs an integer, got `{v}`"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = value,
            "--seed" => parsed.seed = num(&value)? as u64,
            "--unique" => parsed.unique = num(&value)?.max(1),
            "--hot" => parsed.hot = num(&value)?,
            "--clients" => parsed.clients = num(&value)?.max(1),
            "--sweep-clients" => {
                parsed.sweep_clients = value
                    .split(',')
                    .map(|v| num(v.trim()).map(|n| n.max(1)))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => parsed.out = value,
            "--min-hit-rate" => {
                parsed.min_hit_rate = Some(
                    value
                        .parse()
                        .map_err(|_| format!("flag {flag} needs a number, got `{value}`"))?,
                );
            }
            "--max-hot-p50-us" => parsed.max_hot_p50_us = Some(num(&value)? as u64),
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    if parsed.addr.is_empty() {
        return Err("--addr is required (see --help)".into());
    }
    Ok(parsed)
}

/// Aggregated results of one phase.
#[derive(Default)]
struct PhaseStats {
    latencies_us: Vec<u64>,
    hits: u64,
    misses: u64,
    errors: u64,
    seconds: f64,
}

impl PhaseStats {
    fn requests(&self) -> usize {
        self.latencies_us.len()
    }

    fn throughput_rps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests() as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::num(self.requests() as f64)),
            ("seconds".into(), Json::num(self.seconds)),
            ("throughput_rps".into(), Json::num(self.throughput_rps())),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::num(self.percentile_us(0.50) as f64)),
                    ("p90".into(), Json::num(self.percentile_us(0.90) as f64)),
                    ("p99".into(), Json::num(self.percentile_us(0.99) as f64)),
                    (
                        "max".into(),
                        Json::num(self.latencies_us.iter().copied().max().unwrap_or(0) as f64),
                    ),
                ]),
            ),
            ("cache_hits".into(), Json::from_u64(self.hits)),
            ("cache_misses".into(), Json::from_u64(self.misses)),
            ("errors".into(), Json::from_u64(self.errors)),
        ])
    }
}

/// One keep-alive client connection driving `/solve` requests.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request; returns `(latency_us, 2xx, cache_hit)`.
    fn solve(&mut self, path: &str, body: &[u8]) -> std::io::Result<(u64, bool, bool)> {
        let start = Instant::now();
        write_request(&mut self.writer, "POST", path, body, true)?;
        let response = read_response(&mut self.reader)?;
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ok = (200..300).contains(&response.status);
        let hit = response.header("x-cache") == Some("hit");
        Ok((micros, ok, hit))
    }
}

/// Runs one phase: `schedule[c]` is the request-body sequence of client
/// `c`; clients run concurrently over their own connections.
fn run_phase(addr: &str, schedule: Vec<Vec<Arc<Vec<u8>>>>) -> PhaseStats {
    let start = Instant::now();
    let per_client: Vec<PhaseStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .into_iter()
            .map(|requests| {
                scope.spawn(move || {
                    let mut stats = PhaseStats::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        stats.errors += requests.len() as u64;
                        return stats;
                    };
                    for body in requests {
                        match client.solve("/solve", &body) {
                            Ok((micros, ok, hit)) => {
                                stats.latencies_us.push(micros);
                                if !ok {
                                    stats.errors += 1;
                                } else if hit {
                                    stats.hits += 1;
                                } else {
                                    stats.misses += 1;
                                }
                            }
                            Err(_) => stats.errors += 1,
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let mut total = PhaseStats {
        seconds: start.elapsed().as_secs_f64(),
        ..PhaseStats::default()
    };
    for stats in per_client {
        total.latencies_us.extend(stats.latencies_us);
        total.hits += stats.hits;
        total.misses += stats.misses;
        total.errors += stats.errors;
    }
    total
}

/// Requests each sweep client fires after the barrier drops.
const SWEEP_PER_CLIENT: usize = 4;

/// Replays the warm pool at a fixed concurrency level: every connection
/// is opened (sequentially, so the listen backlog never overflows a SYN
/// burst) and stays open, then all clients fire together off a barrier.
fn run_sweep_step(addr: &str, clients: usize, bodies: &[Arc<Vec<u8>>], seed: u64) -> PhaseStats {
    let mut conns = Vec::with_capacity(clients);
    let mut failed_connects = 0u64;
    for _ in 0..clients {
        match Client::connect(addr) {
            Ok(client) => conns.push(client),
            Err(_) => failed_connects += SWEEP_PER_CLIENT as u64,
        }
    }
    let barrier = std::sync::Barrier::new(conns.len());
    let start = Instant::now();
    let per_client: Vec<PhaseStats> = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = conns
            .into_iter()
            .enumerate()
            .map(|(c, mut client)| {
                let requests: Vec<Arc<Vec<u8>>> = {
                    let mut rng = seeded(derive_seed(seed, &format!("sweep{clients}c{c}")));
                    (0..SWEEP_PER_CLIENT)
                        .map(|_| Arc::clone(&bodies[rng.random_range(0..bodies.len())]))
                        .collect()
                };
                // 1,024 default-sized stacks would be wasteful; the
                // client loop needs almost none.
                std::thread::Builder::new()
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, move || {
                        barrier.wait();
                        let mut stats = PhaseStats::default();
                        for body in requests {
                            match client.solve("/solve", &body) {
                                Ok((micros, ok, hit)) => {
                                    stats.latencies_us.push(micros);
                                    if !ok {
                                        stats.errors += 1;
                                    } else if hit {
                                        stats.hits += 1;
                                    } else {
                                        stats.misses += 1;
                                    }
                                }
                                Err(_) => stats.errors += 1,
                            }
                        }
                        stats
                    })
                    .expect("spawn sweep client")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep client panicked"))
            .collect()
    });
    let mut total = PhaseStats {
        seconds: start.elapsed().as_secs_f64(),
        errors: failed_connects,
        ..PhaseStats::default()
    };
    for stats in per_client {
        total.latencies_us.extend(stats.latencies_us);
        total.hits += stats.hits;
        total.misses += stats.misses;
        total.errors += stats.errors;
    }
    total
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bi-loadgen: {msg}");
            exit(2);
        }
    };
    eprintln!(
        "bi-loadgen: addr={} seed={} unique={} hot={} clients={}",
        args.addr, args.seed, args.unique, args.hot, args.clients
    );

    // Build the workload once; request bodies are shared across clients.
    let games = mixed_workload(args.seed, args.unique);
    let bodies: Vec<Arc<Vec<u8>>> = games
        .iter()
        .map(|game| {
            Arc::new(
                SolveRequest {
                    game: game.clone(),
                    config: SolverConfig::default(),
                }
                .canonical_bytes(),
            )
        })
        .collect();

    // Cold phase: every unique game exactly once, split across clients.
    let clients = args.clients.min(bodies.len());
    let mut cold_schedule: Vec<Vec<Arc<Vec<u8>>>> = vec![Vec::new(); clients];
    for (i, body) in bodies.iter().enumerate() {
        cold_schedule[i % clients].push(Arc::clone(body));
    }
    let cold = run_phase(&args.addr, cold_schedule);
    eprintln!(
        "bi-loadgen: cold {} req in {:.3}s ({:.0} rps, {} errors)",
        cold.requests(),
        cold.seconds,
        cold.throughput_rps(),
        cold.errors
    );

    // Hot phase: seeded sampling over the now-cached pool.
    let hot_schedule: Vec<Vec<Arc<Vec<u8>>>> = (0..args.clients)
        .map(|c| {
            let mut rng = seeded(derive_seed(args.seed, &format!("client{c}")));
            let count = args.hot / args.clients + usize::from(c < args.hot % args.clients);
            (0..count)
                .map(|_| Arc::clone(&bodies[rng.random_range(0..bodies.len())]))
                .collect()
        })
        .collect();
    let hot = run_phase(&args.addr, hot_schedule);
    let hot_hit_rate = if hot.requests() > 0 {
        hot.hits as f64 / hot.requests() as f64
    } else {
        0.0
    };
    eprintln!(
        "bi-loadgen: hot {} req in {:.3}s ({:.0} rps, hit rate {:.3}, {} errors)",
        hot.requests(),
        hot.seconds,
        hot.throughput_rps(),
        hot_hit_rate,
        hot.errors
    );

    // One batch over a slice of the pool (all cached by now).
    let batch_games = games.iter().take(8.min(games.len())).cloned().collect();
    let batch_body = BatchRequest {
        games: batch_games,
        config: SolverConfig::default(),
    }
    .canonical_bytes();
    let mut batch_ok = false;
    let mut batch_errors = 0u64;
    match Client::connect(&args.addr) {
        Ok(mut client) => match client.solve("/solve_batch", &batch_body) {
            Ok((_, ok, _)) => {
                batch_ok = ok;
                if !ok {
                    batch_errors += 1;
                }
            }
            Err(_) => batch_errors += 1,
        },
        Err(_) => batch_errors += 1,
    }

    // The scaling sweep: the pool is warm, so every request should be a
    // hit — what moves across levels is concurrency, not work.
    let mut sweep_errors = 0u64;
    let mut sweep_json = Vec::new();
    for &level in &args.sweep_clients {
        let step = run_sweep_step(&args.addr, level, &bodies, args.seed);
        let hit_rate = if step.requests() > 0 {
            step.hits as f64 / step.requests() as f64
        } else {
            0.0
        };
        eprintln!(
            "bi-loadgen: sweep {level} clients: {} req in {:.3}s ({:.0} rps, p50 {}us, p99 {}us, {} errors)",
            step.requests(),
            step.seconds,
            step.throughput_rps(),
            step.percentile_us(0.50),
            step.percentile_us(0.99),
            step.errors
        );
        sweep_errors += step.errors;
        sweep_json.push(Json::Obj(vec![
            ("clients".into(), Json::num(level as f64)),
            ("requests".into(), Json::num(step.requests() as f64)),
            ("seconds".into(), Json::num(step.seconds)),
            ("throughput_rps".into(), Json::num(step.throughput_rps())),
            ("p50_us".into(), Json::num(step.percentile_us(0.50) as f64)),
            ("p99_us".into(), Json::num(step.percentile_us(0.99) as f64)),
            ("hit_rate".into(), Json::num(hit_rate)),
            ("errors".into(), Json::from_u64(step.errors)),
        ]));
    }

    // Scrape the server's own view for the report.
    let server_metrics = scrape_metrics(&args.addr).unwrap_or(Json::Null);

    let speedup = if cold.throughput_rps() > 0.0 {
        hot.throughput_rps() / cold.throughput_rps()
    } else {
        0.0
    };
    let report = Json::Obj(vec![
        (
            "workload".into(),
            Json::Obj(vec![
                ("seed".into(), Json::from_u64(args.seed)),
                ("unique_games".into(), Json::num(games.len() as f64)),
                ("clients".into(), Json::num(args.clients as f64)),
                (
                    "total_requests".into(),
                    Json::num((cold.requests() + hot.requests() + 1) as f64),
                ),
            ]),
        ),
        ("cold".into(), cold.to_json()),
        ("hot".into(), hot.to_json()),
        ("hot_hit_rate".into(), Json::num(hot_hit_rate)),
        ("hot_over_cold_throughput".into(), Json::num(speedup)),
        ("batch_2xx".into(), Json::Bool(batch_ok)),
        ("client_sweep".into(), Json::Arr(sweep_json)),
        ("server_metrics".into(), server_metrics),
    ]);
    let mut file = match std::fs::File::create(&args.out) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("bi-loadgen: cannot write {}: {e}", args.out);
            exit(1);
        }
    };
    file.write_all(report.to_string().as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .expect("report write");
    println!(
        "bi-loadgen: cold {:.0} rps | hot {:.0} rps | speedup {:.1}x | hit rate {:.3} -> {}",
        cold.throughput_rps(),
        hot.throughput_rps(),
        speedup,
        hot_hit_rate,
        args.out
    );

    let total_errors = cold.errors + hot.errors + batch_errors + sweep_errors;
    if total_errors > 0 {
        eprintln!("bi-loadgen: FAIL — {total_errors} request(s) failed");
        exit(1);
    }
    if let Some(min) = args.min_hit_rate {
        if hot_hit_rate < min {
            eprintln!("bi-loadgen: FAIL — hot hit rate {hot_hit_rate:.3} < required {min:.3}");
            exit(1);
        }
    }
    if let Some(max) = args.max_hot_p50_us {
        let p50 = hot.percentile_us(0.50);
        if p50 > max {
            eprintln!("bi-loadgen: FAIL — hot p50 {p50}us > allowed {max}us");
            exit(1);
        }
    }
}

fn scrape_metrics(addr: &str) -> Option<Json> {
    let mut client = Client::connect(addr).ok()?;
    write_request(&mut client.writer, "GET", "/metrics", b"", false).ok()?;
    let response = read_response(&mut client.reader).ok()?;
    Json::parse(std::str::from_utf8(&response.body).ok()?).ok()
}
