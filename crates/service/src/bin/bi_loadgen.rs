//! `bi-loadgen` — seeded workload replay against `bi-serve` (or a
//! `bi-router` front door, or a fleet of servers directly).
//!
//! Two phases over one deterministic workload (`--profile mixed` is the
//! matrix-form + NCS mix, `--profile light` is 2×2 games cheap enough
//! to push 100k+ unique keys — see `bi_service::workload`):
//!
//! 1. **cold** — every unique game once: all cache misses, measuring
//!    engine-bound throughput;
//! 2. **hot** — `--hot` requests sampled (seeded) from the same pool:
//!    all cache hits, measuring the served-from-cache ceiling.
//!
//! With `--targets a,b,c` the generator shards client-side: each
//! request body is pinned to `fnv1a(body) % n` so every key lands on
//! one node's cache, and the report carries per-target hit/error
//! counts. With a single `--addr` everything flows to that one
//! address (point it at a `bi-router` to exercise server-side
//! routing instead).
//!
//! Then one `POST /solve_batch` exercises the batch path, an optional
//! `--sweep-clients` pass replays the warm pool at each requested
//! concurrency level, and `GET /metrics` is scraped into the report.
//! Results land in `--out` (default `BENCH_service.json`); with
//! `--merge-section NAME` the run is written *into* the existing
//! report under that top-level key instead of replacing the file —
//! how cluster runs ride alongside the single-node sections.
//!
//! Errors are broken down per phase by cause — `429` (queue full),
//! `503` (overloaded/no backend), transport (connect/read failures),
//! other — so a smoke job can distinguish shed load from broken
//! routing. Exit status is non-zero if any request failed, if
//! `--min-hit-rate` was given and the hot phase fell below it, or if
//! `--max-hot-p50-us` was given and the hot median exceeded it.
//!
//! With `--trace`, every phase request carries a generator-minted
//! `X-Bi-Trace` id; afterwards each target's `GET /debug/trace` window
//! is scraped and folded into a per-stage latency breakdown (a text
//! table on stdout, the `trace_stages` section in the report).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bi_core::solve::SolverConfig;
use bi_obs::log as olog;
use bi_service::http::{read_response, write_request, write_request_with};
use bi_service::service::{BatchRequest, SolveRequest};
use bi_service::workload::{light_workload, mixed_workload};
use bi_util::rng::{derive_seed, seeded};
use bi_util::table::TextTable;
use bi_util::{fnv1a, Encode, Json};
use rand::Rng;

const USAGE: &str = "\
bi-loadgen — seeded load generator for bi-serve / bi-router

USAGE: bi-loadgen --addr HOST:PORT [OPTIONS]
       bi-loadgen --targets HOST:PORT,... [OPTIONS]

OPTIONS:
  --addr HOST:PORT    single server (or router) address
  --targets LIST      comma-separated server addresses; requests shard
                      client-side by fnv1a(body) so each key is pinned
                      to one node, with per-target accounting
  --seed N            workload seed (default 1)
  --unique N          distinct games in the pool (default 64)
  --profile NAME      workload profile: mixed | light (default mixed)
  --hot N             hot-phase requests over the pool (default 1500)
  --clients N         concurrent client connections (default 4)
  --sweep-clients L   comma-separated concurrency levels to replay the warm
                      pool at (e.g. 4,64,256,1024); recorded as client_sweep
  --out FILE          benchmark report path (default BENCH_service.json)
  --merge-section K   merge this run under top-level key K of an existing
                      report instead of overwriting the file
  --min-hit-rate F    fail unless the hot-phase cache-hit rate reaches F
  --max-hot-p50-us N  fail if the hot-phase median latency exceeds N µs
  --trace             inject an X-Bi-Trace id per request, scrape each
                      target's /debug/trace afterwards, and print a
                      per-stage latency breakdown table
  --help              print this help
";

struct Args {
    targets: Vec<String>,
    seed: u64,
    unique: usize,
    profile: String,
    hot: usize,
    clients: usize,
    sweep_clients: Vec<usize>,
    out: String,
    merge_section: Option<String>,
    min_hit_rate: Option<f64>,
    max_hot_p50_us: Option<u64>,
    trace: bool,
}

/// Monotonic counter behind [`next_trace_id`].
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh nonzero trace id: the generator's pid in the high half, a
/// process-wide counter in the low — distinguishable from server-minted
/// ids and unique across concurrent loadgen processes.
fn next_trace_id() -> u64 {
    let n = TRACE_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    (u64::from(std::process::id()) << 32) | (n & 0xffff_ffff)
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        targets: Vec::new(),
        seed: 1,
        unique: 64,
        profile: "mixed".into(),
        hot: 1500,
        clients: 4,
        sweep_clients: Vec::new(),
        out: "BENCH_service.json".into(),
        merge_section: None,
        min_hit_rate: None,
        max_hot_p50_us: None,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" {
            print!("{USAGE}");
            exit(0);
        }
        if flag == "--trace" {
            parsed.trace = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let num = |v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("flag {flag} needs an integer, got `{v}`"))
        };
        match flag.as_str() {
            "--addr" => parsed.targets = vec![value],
            "--targets" => {
                parsed.targets = value
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--seed" => parsed.seed = num(&value)? as u64,
            "--unique" => parsed.unique = num(&value)?.max(1),
            "--profile" => {
                if value != "mixed" && value != "light" {
                    return Err(format!("--profile takes mixed|light, got `{value}`"));
                }
                parsed.profile = value;
            }
            "--hot" => parsed.hot = num(&value)?,
            "--clients" => parsed.clients = num(&value)?.max(1),
            "--sweep-clients" => {
                parsed.sweep_clients = value
                    .split(',')
                    .map(|v| num(v.trim()).map(|n| n.max(1)))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => parsed.out = value,
            "--merge-section" => parsed.merge_section = Some(value),
            "--min-hit-rate" => {
                parsed.min_hit_rate = Some(
                    value
                        .parse()
                        .map_err(|_| format!("flag {flag} needs a number, got `{value}`"))?,
                );
            }
            "--max-hot-p50-us" => parsed.max_hot_p50_us = Some(num(&value)? as u64),
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    if parsed.targets.is_empty() {
        return Err("--addr or --targets is required (see --help)".into());
    }
    Ok(parsed)
}

/// The client-side shard of one request body: every replay of the same
/// body lands on the same target, so each key is pinned to one node's
/// cache exactly like a server-side consistent-hash route would.
fn target_of(body: &[u8], targets: usize) -> usize {
    if targets <= 1 {
        0
    } else {
        (fnv1a(body) % targets as u64) as usize
    }
}

/// Per-target accounting within one phase.
#[derive(Clone, Copy, Default)]
struct TargetStats {
    requests: u64,
    hits: u64,
    errors: u64,
}

/// Aggregated results of one phase, with errors broken down by cause.
#[derive(Clone, Default)]
struct PhaseStats {
    latencies_us: Vec<u64>,
    hits: u64,
    misses: u64,
    errors_429: u64,
    errors_503: u64,
    errors_transport: u64,
    errors_other: u64,
    retried_429: u64,
    per_target: Vec<TargetStats>,
    seconds: f64,
}

impl PhaseStats {
    fn with_targets(targets: usize) -> PhaseStats {
        PhaseStats {
            per_target: vec![TargetStats::default(); targets],
            ..PhaseStats::default()
        }
    }

    fn requests(&self) -> usize {
        self.latencies_us.len()
    }

    fn errors(&self) -> u64 {
        self.errors_429 + self.errors_503 + self.errors_transport + self.errors_other
    }

    /// Folds one request outcome into the phase totals and the target's
    /// own row.
    fn record(&mut self, target: usize, outcome: std::io::Result<(u64, u16, bool)>) {
        let row = &mut self.per_target[target];
        row.requests += 1;
        match outcome {
            Ok((micros, status, hit)) => {
                self.latencies_us.push(micros);
                if (200..300).contains(&status) {
                    if hit {
                        self.hits += 1;
                        row.hits += 1;
                    } else {
                        self.misses += 1;
                    }
                } else {
                    row.errors += 1;
                    match status {
                        429 => self.errors_429 += 1,
                        503 => self.errors_503 += 1,
                        _ => self.errors_other += 1,
                    }
                }
            }
            Err(_) => {
                row.errors += 1;
                self.errors_transport += 1;
            }
        }
    }

    fn absorb(&mut self, other: PhaseStats) {
        self.latencies_us.extend(other.latencies_us);
        self.hits += other.hits;
        self.misses += other.misses;
        self.errors_429 += other.errors_429;
        self.errors_503 += other.errors_503;
        self.errors_transport += other.errors_transport;
        self.errors_other += other.errors_other;
        self.retried_429 += other.retried_429;
        for (mine, theirs) in self.per_target.iter_mut().zip(&other.per_target) {
            mine.requests += theirs.requests;
            mine.hits += theirs.hits;
            mine.errors += theirs.errors;
        }
    }

    fn throughput_rps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests() as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn to_json(&self, targets: &[String]) -> Json {
        let mut doc = vec![
            ("requests".into(), Json::num(self.requests() as f64)),
            ("seconds".into(), Json::num(self.seconds)),
            ("throughput_rps".into(), Json::num(self.throughput_rps())),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::num(self.percentile_us(0.50) as f64)),
                    ("p90".into(), Json::num(self.percentile_us(0.90) as f64)),
                    ("p99".into(), Json::num(self.percentile_us(0.99) as f64)),
                    (
                        "max".into(),
                        Json::num(self.latencies_us.iter().copied().max().unwrap_or(0) as f64),
                    ),
                ]),
            ),
            ("cache_hits".into(), Json::from_u64(self.hits)),
            ("cache_misses".into(), Json::from_u64(self.misses)),
            ("errors".into(), Json::from_u64(self.errors())),
            (
                "errors_by_cause".into(),
                Json::Obj(vec![
                    ("status_429".into(), Json::from_u64(self.errors_429)),
                    ("retried_429".into(), Json::from_u64(self.retried_429)),
                    ("status_503".into(), Json::from_u64(self.errors_503)),
                    ("transport".into(), Json::from_u64(self.errors_transport)),
                    ("other".into(), Json::from_u64(self.errors_other)),
                ]),
            ),
        ];
        if targets.len() > 1 {
            doc.push((
                "per_target".into(),
                Json::Arr(
                    targets
                        .iter()
                        .zip(&self.per_target)
                        .map(|(addr, row)| {
                            Json::Obj(vec![
                                ("addr".into(), Json::str(addr)),
                                ("requests".into(), Json::from_u64(row.requests)),
                                ("cache_hits".into(), Json::from_u64(row.hits)),
                                ("errors".into(), Json::from_u64(row.errors)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::Obj(doc)
    }
}

/// One keep-alive client connection driving `/solve` requests.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request (with an `X-Bi-Trace` header when `trace` is
    /// set); returns `(latency_us, status, cache_hit, retry_after_secs)`.
    fn solve(
        &mut self,
        path: &str,
        body: &[u8],
        trace: Option<u64>,
    ) -> std::io::Result<(u64, u16, bool, Option<u64>)> {
        let start = Instant::now();
        match trace {
            Some(id) => write_request_with(
                &mut self.writer,
                "POST",
                path,
                body,
                true,
                &[("X-Bi-Trace", id.to_string())],
            )?,
            None => write_request(&mut self.writer, "POST", path, body, true)?,
        }
        let response = read_response(&mut self.reader)?;
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let hit = response.header("x-cache") == Some("hit");
        let retry_after = response
            .header("retry-after")
            .and_then(|secs| secs.trim().parse::<u64>().ok());
        Ok((micros, response.status, hit, retry_after))
    }
}

/// Retries a 429 response grants before it counts as a terminal error.
const RETRY_429_MAX: u32 = 2;
/// Ceiling on the honored `Retry-After` sleep, so a pathological header
/// cannot stall the generator.
const RETRY_429_CAP_MS: u64 = 500;
/// Sleep before retrying a 429 that carried no `Retry-After` header.
const RETRY_429_DEFAULT_MS: u64 = 25;

/// One client thread's keep-alive connections, one slot per target,
/// connected lazily and dropped on transport error so the next request
/// reconnects fresh.
struct ClientSet<'a> {
    targets: &'a [String],
    conns: Vec<Option<Client>>,
}

impl<'a> ClientSet<'a> {
    fn new(targets: &'a [String]) -> ClientSet<'a> {
        ClientSet {
            targets,
            conns: (0..targets.len()).map(|_| None).collect(),
        }
    }

    /// Pre-opens the connection to `target` (used to keep connection
    /// setup out of the timed window and sequential across clients).
    fn warm(&mut self, target: usize) -> std::io::Result<()> {
        if self.conns[target].is_none() {
            self.conns[target] = Some(Client::connect(&self.targets[target])?);
        }
        Ok(())
    }

    /// One solve with shed-load handling: a 429 is retried up to
    /// [`RETRY_429_MAX`] times, honoring the server's `Retry-After`
    /// header (capped at [`RETRY_429_CAP_MS`]); each retry bumps
    /// `retried` so the report separates absorbed backpressure from
    /// terminal 429s.
    fn solve(
        &mut self,
        target: usize,
        path: &str,
        body: &[u8],
        trace: Option<u64>,
        retried: &mut u64,
    ) -> std::io::Result<(u64, u16, bool)> {
        let mut attempts_left = RETRY_429_MAX;
        loop {
            let (micros, status, hit, retry_after) = self.solve_once(target, path, body, trace)?;
            if status != 429 || attempts_left == 0 {
                return Ok((micros, status, hit));
            }
            attempts_left -= 1;
            *retried += 1;
            let wait_ms = retry_after
                .map(|secs| secs.saturating_mul(1000))
                .unwrap_or(RETRY_429_DEFAULT_MS)
                .min(RETRY_429_CAP_MS);
            std::thread::sleep(std::time::Duration::from_millis(wait_ms));
        }
    }

    fn solve_once(
        &mut self,
        target: usize,
        path: &str,
        body: &[u8],
        trace: Option<u64>,
    ) -> std::io::Result<(u64, u16, bool, Option<u64>)> {
        if self.conns[target].is_none() {
            self.conns[target] = Some(Client::connect(&self.targets[target])?);
        }
        let result = self.conns[target]
            .as_mut()
            .expect("connection just ensured")
            .solve(path, body, trace);
        if result.is_err() {
            self.conns[target] = None;
        }
        result
    }
}

/// Runs one phase: `schedule[c]` is client `c`'s sequence of
/// `(target, body)` requests; clients run concurrently, each with its
/// own keep-alive connection per target.
fn run_phase(
    targets: &[String],
    schedule: Vec<Vec<(usize, Arc<Vec<u8>>)>>,
    trace: bool,
) -> PhaseStats {
    let start = Instant::now();
    let per_client: Vec<PhaseStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .into_iter()
            .map(|requests| {
                scope.spawn(move || {
                    let mut stats = PhaseStats::with_targets(targets.len());
                    let mut clients = ClientSet::new(targets);
                    for (target, body) in requests {
                        let id = trace.then(next_trace_id);
                        let outcome =
                            clients.solve(target, "/solve", &body, id, &mut stats.retried_429);
                        stats.record(target, outcome);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let mut total = PhaseStats::with_targets(targets.len());
    for stats in per_client {
        total.absorb(stats);
    }
    total.seconds = start.elapsed().as_secs_f64();
    total
}

/// Requests each sweep client fires after the barrier drops.
const SWEEP_PER_CLIENT: usize = 4;

/// Replays the warm pool at a fixed concurrency level: every connection
/// is opened (sequentially, so the listen backlog never overflows a SYN
/// burst) and stays open, then all clients fire together off a barrier.
fn run_sweep_step(
    targets: &[String],
    clients: usize,
    bodies: &[Arc<Vec<u8>>],
    seed: u64,
) -> PhaseStats {
    // Draw each client's requests first so its connections can be
    // pre-opened to exactly the targets it will hit.
    let schedules: Vec<Vec<(usize, Arc<Vec<u8>>)>> = (0..clients)
        .map(|c| {
            let mut rng = seeded(derive_seed(seed, &format!("sweep{clients}c{c}")));
            (0..SWEEP_PER_CLIENT)
                .map(|_| {
                    let body = Arc::clone(&bodies[rng.random_range(0..bodies.len())]);
                    (target_of(&body, targets.len()), body)
                })
                .collect()
        })
        .collect();
    let mut ready = Vec::with_capacity(clients);
    let mut failed = PhaseStats::with_targets(targets.len());
    for requests in schedules {
        let mut set = ClientSet::new(targets);
        let mut connected = true;
        for &(target, _) in &requests {
            if set.warm(target).is_err() {
                connected = false;
                break;
            }
        }
        if connected {
            ready.push((set, requests));
        } else {
            for (target, _) in requests {
                failed.record(target, Err(std::io::Error::other("connect failed")));
            }
        }
    }
    let barrier = std::sync::Barrier::new(ready.len());
    let start = Instant::now();
    let per_client: Vec<PhaseStats> = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = ready
            .into_iter()
            .map(|(mut set, requests)| {
                // 1,024 default-sized stacks would be wasteful; the
                // client loop needs almost none.
                std::thread::Builder::new()
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, move || {
                        barrier.wait();
                        let mut stats = PhaseStats::with_targets(set.targets.len());
                        for (target, body) in requests {
                            let outcome =
                                set.solve(target, "/solve", &body, None, &mut stats.retried_429);
                            stats.record(target, outcome);
                        }
                        stats
                    })
                    .expect("spawn sweep client")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep client panicked"))
            .collect()
    });
    let mut total = failed;
    for stats in per_client {
        total.absorb(stats);
    }
    total.seconds = start.elapsed().as_secs_f64();
    total
}

/// Writes the report: whole-file by default, or merged under one
/// top-level key of the existing report with `--merge-section`.
fn write_report(out: &str, merge_section: Option<&str>, report: Json) -> std::io::Result<()> {
    let document = match merge_section {
        None => report,
        Some(key) => {
            let mut doc = match std::fs::read_to_string(out) {
                Ok(text) => match Json::parse(&text) {
                    Ok(Json::Obj(fields)) => fields,
                    _ => Vec::new(),
                },
                Err(_) => Vec::new(),
            };
            match doc.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = report,
                None => doc.push((key.into(), report)),
            }
            Json::Obj(doc)
        }
    };
    let mut file = std::fs::File::create(out)?;
    file.write_all(document.to_string().as_bytes())?;
    file.write_all(b"\n")
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            olog::error("bi-loadgen", "bad arguments", &[("detail", Json::str(msg))]);
            exit(2);
        }
    };
    olog::info(
        "bi-loadgen",
        "starting",
        &[
            ("targets", Json::str(args.targets.join(","))),
            ("seed", Json::from_u64(args.seed)),
            ("unique", Json::from_u64(args.unique as u64)),
            ("profile", Json::str(&args.profile)),
            ("hot", Json::from_u64(args.hot as u64)),
            ("clients", Json::from_u64(args.clients as u64)),
            ("trace", Json::Bool(args.trace)),
        ],
    );

    // Build the workload once; request bodies are shared across clients
    // and each body is pinned to its client-side shard up front.
    let games = if args.profile == "light" {
        light_workload(args.seed, args.unique)
    } else {
        mixed_workload(args.seed, args.unique)
    };
    let bodies: Vec<Arc<Vec<u8>>> = games
        .iter()
        .map(|game| {
            Arc::new(
                SolveRequest {
                    game: game.clone(),
                    config: SolverConfig::default(),
                }
                .canonical_bytes(),
            )
        })
        .collect();
    let sharded: Vec<(usize, Arc<Vec<u8>>)> = bodies
        .iter()
        .map(|body| (target_of(body, args.targets.len()), Arc::clone(body)))
        .collect();

    // Cold phase: every unique game exactly once, split across clients.
    let clients = args.clients.min(bodies.len());
    let mut cold_schedule: Vec<Vec<(usize, Arc<Vec<u8>>)>> = vec![Vec::new(); clients];
    for (i, request) in sharded.iter().enumerate() {
        cold_schedule[i % clients].push(request.clone());
    }
    let cold = run_phase(&args.targets, cold_schedule, args.trace);
    olog::info(
        "bi-loadgen",
        "cold phase done",
        &[
            ("requests", Json::from_u64(cold.requests() as u64)),
            ("seconds", Json::num(cold.seconds)),
            ("rps", Json::num(cold.throughput_rps())),
            ("errors", Json::from_u64(cold.errors())),
        ],
    );

    // Hot phase: seeded sampling over the now-cached pool.
    let hot_schedule: Vec<Vec<(usize, Arc<Vec<u8>>)>> = (0..args.clients)
        .map(|c| {
            let mut rng = seeded(derive_seed(args.seed, &format!("client{c}")));
            let count = args.hot / args.clients + usize::from(c < args.hot % args.clients);
            (0..count)
                .map(|_| sharded[rng.random_range(0..sharded.len())].clone())
                .collect()
        })
        .collect();
    let hot = run_phase(&args.targets, hot_schedule, args.trace);
    let hot_hit_rate = if hot.requests() > 0 {
        hot.hits as f64 / hot.requests() as f64
    } else {
        0.0
    };
    olog::info(
        "bi-loadgen",
        "hot phase done",
        &[
            ("requests", Json::from_u64(hot.requests() as u64)),
            ("seconds", Json::num(hot.seconds)),
            ("rps", Json::num(hot.throughput_rps())),
            ("hit_rate", Json::num(hot_hit_rate)),
            ("errors", Json::from_u64(hot.errors())),
        ],
    );

    // One batch over a slice of the pool (all cached by now). Sharded
    // like any other body: the batch lands on one node — or on the
    // router, which splits it server-side.
    let batch_games = games.iter().take(8.min(games.len())).cloned().collect();
    let batch_body = BatchRequest {
        games: batch_games,
        config: SolverConfig::default(),
    }
    .canonical_bytes();
    let batch_target = target_of(&batch_body, args.targets.len());
    let mut batch_ok = false;
    let mut batch_errors = 0u64;
    {
        let mut set = ClientSet::new(&args.targets);
        let id = args.trace.then(next_trace_id);
        let mut batch_retried = 0u64;
        match set.solve(
            batch_target,
            "/solve_batch",
            &batch_body,
            id,
            &mut batch_retried,
        ) {
            Ok((_, status, _)) => {
                batch_ok = (200..300).contains(&status);
                if !batch_ok {
                    batch_errors += 1;
                }
            }
            Err(_) => batch_errors += 1,
        }
    }

    // The scaling sweep: the pool is warm, so every request should be a
    // hit — what moves across levels is concurrency, not work.
    let mut sweep_errors = 0u64;
    let mut sweep_json = Vec::new();
    for &level in &args.sweep_clients {
        let step = run_sweep_step(&args.targets, level, &bodies, args.seed);
        let hit_rate = if step.requests() > 0 {
            step.hits as f64 / step.requests() as f64
        } else {
            0.0
        };
        olog::info(
            "bi-loadgen",
            "sweep step done",
            &[
                ("clients", Json::from_u64(level as u64)),
                ("requests", Json::from_u64(step.requests() as u64)),
                ("seconds", Json::num(step.seconds)),
                ("rps", Json::num(step.throughput_rps())),
                ("p50_us", Json::from_u64(step.percentile_us(0.50))),
                ("p99_us", Json::from_u64(step.percentile_us(0.99))),
                ("errors", Json::from_u64(step.errors())),
            ],
        );
        sweep_errors += step.errors();
        sweep_json.push(Json::Obj(vec![
            ("clients".into(), Json::num(level as f64)),
            ("requests".into(), Json::num(step.requests() as f64)),
            ("seconds".into(), Json::num(step.seconds)),
            ("throughput_rps".into(), Json::num(step.throughput_rps())),
            ("p50_us".into(), Json::num(step.percentile_us(0.50) as f64)),
            ("p99_us".into(), Json::num(step.percentile_us(0.99) as f64)),
            ("hit_rate".into(), Json::num(hit_rate)),
            ("errors".into(), Json::from_u64(step.errors())),
        ]));
    }

    // Scrape each target's own view for the report.
    let server_metrics = if args.targets.len() == 1 {
        scrape_metrics(&args.targets[0]).unwrap_or(Json::Null)
    } else {
        Json::Arr(
            args.targets
                .iter()
                .map(|addr| {
                    Json::Obj(vec![
                        ("addr".into(), Json::str(addr)),
                        ("metrics".into(), scrape_metrics(addr).unwrap_or(Json::Null)),
                    ])
                })
                .collect(),
        )
    };

    // With --trace, scrape the span flight recorders and fold every
    // stage's spans into a breakdown table (human-readable on stdout,
    // `trace_stages` in the report).
    let trace_stages = if args.trace {
        let breakdown = stage_breakdown(&args.targets);
        let mut table = TextTable::new(vec!["stage", "spans", "mean_us", "max_us"]);
        for row in &breakdown {
            table.add_row(vec![
                row.stage.clone(),
                row.spans.to_string(),
                format!("{:.1}", row.mean_us()),
                row.max_us.to_string(),
            ]);
        }
        if table.is_empty() {
            println!("bi-loadgen: no spans in any /debug/trace dump");
        } else {
            println!("bi-loadgen: per-stage span breakdown (recent window)");
            print!("{table}");
        }
        Json::Obj(
            breakdown
                .iter()
                .map(|row| {
                    (
                        row.stage.clone(),
                        Json::Obj(vec![
                            ("spans".into(), Json::from_u64(row.spans)),
                            ("mean_us".into(), Json::num(row.mean_us())),
                            ("max_us".into(), Json::from_u64(row.max_us)),
                        ]),
                    )
                })
                .collect(),
        )
    } else {
        Json::Null
    };

    let speedup = if cold.throughput_rps() > 0.0 {
        hot.throughput_rps() / cold.throughput_rps()
    } else {
        0.0
    };
    let report = Json::Obj(vec![
        (
            "workload".into(),
            Json::Obj(vec![
                ("seed".into(), Json::from_u64(args.seed)),
                ("profile".into(), Json::str(&args.profile)),
                ("unique_games".into(), Json::num(games.len() as f64)),
                ("clients".into(), Json::num(args.clients as f64)),
                (
                    "targets".into(),
                    Json::Arr(args.targets.iter().map(Json::str).collect()),
                ),
                (
                    "total_requests".into(),
                    Json::num((cold.requests() + hot.requests() + 1) as f64),
                ),
            ]),
        ),
        ("cold".into(), cold.to_json(&args.targets)),
        ("hot".into(), hot.to_json(&args.targets)),
        ("hot_hit_rate".into(), Json::num(hot_hit_rate)),
        ("hot_over_cold_throughput".into(), Json::num(speedup)),
        ("batch_2xx".into(), Json::Bool(batch_ok)),
        ("client_sweep".into(), Json::Arr(sweep_json)),
        ("trace_stages".into(), trace_stages),
        ("server_metrics".into(), server_metrics),
    ]);
    if let Err(e) = write_report(&args.out, args.merge_section.as_deref(), report) {
        olog::error(
            "bi-loadgen",
            "cannot write report",
            &[
                ("path", Json::str(&args.out)),
                ("error", Json::str(e.to_string())),
            ],
        );
        exit(1);
    }
    println!(
        "bi-loadgen: cold {:.0} rps | hot {:.0} rps | speedup {:.1}x | hit rate {:.3} -> {}",
        cold.throughput_rps(),
        hot.throughput_rps(),
        speedup,
        hot_hit_rate,
        args.out
    );

    let total_errors = cold.errors() + hot.errors() + batch_errors + sweep_errors;
    if total_errors > 0 {
        olog::error(
            "bi-loadgen",
            "requests failed",
            &[("failed", Json::from_u64(total_errors))],
        );
        exit(1);
    }
    if let Some(min) = args.min_hit_rate {
        if hot_hit_rate < min {
            olog::error(
                "bi-loadgen",
                "hot hit rate below threshold",
                &[
                    ("hit_rate", Json::num(hot_hit_rate)),
                    ("required", Json::num(min)),
                ],
            );
            exit(1);
        }
    }
    if let Some(max) = args.max_hot_p50_us {
        let p50 = hot.percentile_us(0.50);
        if p50 > max {
            olog::error(
                "bi-loadgen",
                "hot p50 over budget",
                &[
                    ("p50_us", Json::from_u64(p50)),
                    ("allowed_us", Json::from_u64(max)),
                ],
            );
            exit(1);
        }
    }
}

/// One stage's aggregate across every scraped `/debug/trace` dump.
struct StageRow {
    stage: String,
    spans: u64,
    total_us: u64,
    max_us: u64,
}

impl StageRow {
    fn mean_us(&self) -> f64 {
        if self.spans == 0 {
            0.0
        } else {
            self.total_us as f64 / self.spans as f64
        }
    }
}

/// Scrapes `/debug/trace` from every target and folds the span windows
/// into per-stage rows, ordered by the pipeline's stage order.
fn stage_breakdown(targets: &[String]) -> Vec<StageRow> {
    let mut rows: Vec<StageRow> = Vec::new();
    for addr in targets {
        let Some(doc) = scrape_debug_trace(addr) else {
            olog::warn(
                "bi-loadgen",
                "debug/trace scrape failed",
                &[("addr", Json::str(addr))],
            );
            continue;
        };
        let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
            continue;
        };
        for span in spans {
            let Some(event) = bi_obs::SpanEvent::from_json(span) else {
                continue;
            };
            let micros = event.t_end_ns.saturating_sub(event.t_start_ns) / 1_000;
            let name = event.stage.name();
            let row = match rows.iter_mut().find(|r| r.stage == name) {
                Some(row) => row,
                None => {
                    rows.push(StageRow {
                        stage: name.to_string(),
                        spans: 0,
                        total_us: 0,
                        max_us: 0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.spans += 1;
            row.total_us += micros;
            row.max_us = row.max_us.max(micros);
        }
    }
    rows.sort_by_key(|row| {
        bi_obs::Stage::ALL
            .iter()
            .position(|s| s.name() == row.stage)
            .unwrap_or(usize::MAX)
    });
    rows
}

fn scrape_debug_trace(addr: &str) -> Option<Json> {
    let mut client = Client::connect(addr).ok()?;
    write_request(&mut client.writer, "GET", "/debug/trace", b"", false).ok()?;
    let response = read_response(&mut client.reader).ok()?;
    Json::parse(std::str::from_utf8(&response.body).ok()?).ok()
}

fn scrape_metrics(addr: &str) -> Option<Json> {
    let mut client = Client::connect(addr).ok()?;
    write_request(&mut client.writer, "GET", "/metrics", b"", false).ok()?;
    let response = read_response(&mut client.reader).ok()?;
    Json::parse(std::str::from_utf8(&response.body).ok()?).ok()
}
