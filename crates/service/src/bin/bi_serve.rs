//! `bi-serve` — the solve server binary.
//!
//! Binds a TCP listener, prints the bound address (parse the
//! `listening on` line for ephemeral ports), and serves forever. One
//! reactor thread multiplexes every connection; `--workers` sizes the
//! solver pool that only cold cache misses cross into:
//!
//! ```text
//! bi-serve --addr 127.0.0.1:0 --workers 4 --queue 256 \
//!          --max-connections 8192 --cache-capacity 4096 --cache-shards 16
//! ```
//!
//! Endpoints: `POST /solve`, `POST /solve_batch`, `GET /metrics`,
//! `GET /healthz`, `GET /debug/trace` — see the `bi_service::server`
//! docs for wire formats.
//!
//! Diagnostics go to stderr as JSON lines (`bi_obs::log`, level filter
//! via `BI_LOG`); the only stdout line is the machine-readable
//! `listening on` address that CI and the load generator parse.

use std::io::Write;
use std::process::exit;
use std::time::Duration;

use bi_obs::log as olog;
use bi_service::{FaultPlan, Server, ServerConfig};
use bi_util::Json;

const USAGE: &str = "\
bi-serve — concurrent Bayesian-ignorance solve service

USAGE: bi-serve [OPTIONS]

OPTIONS:
  --addr HOST:PORT      bind address (default 127.0.0.1:0 = ephemeral port)
  --workers N           solver threads, 0 = one per core (default 0)
  --queue N             pending-solve queue bound; overflow gets 429 (default 128)
  --max-connections N   concurrent connection cap; overflow gets 503 (default 8192)
  --cache-capacity N    total solve-cache entries, 0 disables (default 4096)
  --cache-shards N      independently locked cache shards (default 16)
  --timeout-secs N      idle keep-alive timeout per connection (default 10)
  --disk-cache PATH     append-only disk cache log; reboots replay it warm
                        (default: memory-only)
  --compact-ratio N     rewrite the disk log once it exceeds N× its live
                        bytes; 0 disables compaction (default 2)
  --fault-plan SPEC     seeded deterministic fault injection, e.g.
                        `seed=42,rate=50000,kinds=refuse+err500,delay-ms=5`
                        (default: off; kinds also include disconnect,
                        short-read, short-write, delay)
  --trace-slow-us N     log the span tree of any request slower than N µs
                        (default: off)
  --help                print this help
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" {
            print!("{USAGE}");
            exit(0);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => config.workers = parse_num(&flag, &value)?,
            "--queue" => config.queue_capacity = parse_num(&flag, &value)?,
            "--max-connections" => config.max_connections = parse_num(&flag, &value)?,
            "--cache-capacity" => config.cache.capacity = parse_num(&flag, &value)?,
            "--cache-shards" => config.cache.shards = parse_num(&flag, &value)?,
            "--timeout-secs" => {
                config.read_timeout = Duration::from_secs(parse_num(&flag, &value)? as u64);
            }
            "--disk-cache" => config.disk_path = Some(value.into()),
            "--compact-ratio" => {
                config.disk.compact_ratio = parse_num(&flag, &value)? as u32;
            }
            "--fault-plan" => {
                config.fault = Some(std::sync::Arc::new(FaultPlan::parse(&value)?));
            }
            "--trace-slow-us" => {
                config.trace_slow_us = Some(parse_num(&flag, &value)? as u64);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    Ok(config)
}

fn parse_num(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("flag {flag} needs a non-negative integer, got `{value}`"))
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            olog::error("bi-serve", "bad arguments", &[("detail", Json::str(msg))]);
            exit(2);
        }
    };
    olog::info(
        "bi-serve",
        "starting",
        &[
            ("workers", Json::from_u64(config.workers as u64)),
            ("queue", Json::from_u64(config.queue_capacity as u64)),
            (
                "max_connections",
                Json::from_u64(config.max_connections as u64),
            ),
            (
                "cache_capacity",
                Json::from_u64(config.cache.capacity as u64),
            ),
            ("cache_shards", Json::from_u64(config.cache.shards as u64)),
            (
                "timeout_secs",
                Json::from_u64(config.read_timeout.as_secs()),
            ),
            (
                "disk",
                Json::str(
                    config
                        .disk_path
                        .as_deref()
                        .map_or("none".into(), |p| p.display().to_string()),
                ),
            ),
            (
                "compact_ratio",
                Json::from_u64(u64::from(config.disk.compact_ratio)),
            ),
            (
                "fault_plan",
                config
                    .fault
                    .as_ref()
                    .map_or(Json::Null, |plan| plan.to_json()),
            ),
            (
                "trace_slow_us",
                config.trace_slow_us.map_or(Json::Null, Json::from_u64),
            ),
        ],
    );
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            olog::error(
                "bi-serve",
                "bind failed",
                &[("error", Json::str(e.to_string()))],
            );
            exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    // The machine-readable line: CI and the load generator parse it to
    // discover ephemeral ports.
    println!("bi-serve listening on {addr}");
    std::io::stdout().flush().expect("stdout flush");
    if let Err(e) = server.run() {
        olog::error(
            "bi-serve",
            "serving failed",
            &[("error", Json::str(e.to_string()))],
        );
        exit(1);
    }
}
