//! `bi-router` — the consistent-hash cluster front door.
//!
//! Routes `POST /solve` and `POST /solve_batch` across a fleet of
//! `bi-serve` backends by the canonical cache key, so every distinct
//! game lands on exactly one backend's cache. Dead backends are
//! ejected by a health prober (and by forwarding failures) and their
//! arc of the key space fails over clockwise; the rest of the ring is
//! untouched.
//!
//! ```text
//! bi-router --addr 127.0.0.1:0 \
//!           --backends 127.0.0.1:4101,127.0.0.1:4102,127.0.0.1:4103 \
//!           --vnodes 64 --fallback local
//! ```
//!
//! Endpoints: `POST /solve`, `POST /solve_batch`, `GET /metrics`
//! (router + per-backend counters), `GET /healthz`, `GET /debug/trace`.
//!
//! Diagnostics go to stderr as JSON lines (`bi_obs::log`, level filter
//! via `BI_LOG`); the only stdout line is the machine-readable
//! `listening on` address that CI and the load generator parse.

use std::io::Write;
use std::process::exit;
use std::time::Duration;

use bi_obs::log as olog;
use bi_service::{FallbackMode, Router, RouterConfig};
use bi_util::Json;

const USAGE: &str = "\
bi-router — consistent-hash router over a bi-serve fleet

USAGE: bi-router --backends HOST:PORT,... [OPTIONS]

OPTIONS:
  --addr HOST:PORT      bind address (default 127.0.0.1:0 = ephemeral port)
  --backends LIST       comma-separated bi-serve addresses (required)
  --vnodes N            virtual nodes per backend on the ring (default 64)
  --fallback MODE       `local` solves on the router when no backend is
                        live, `503` refuses instead (default local)
  --probe-ms N          health-probe sweep interval in ms (default 500)
  --fail-threshold N    consecutive failures before eject (default 2)
  --replication N       replica owners per key: solved results are written
                        through to all N owners and dead owners are
                        read-repaired when they return (default 1)
  --deadline-ms N       per-request retry/backoff deadline budget
                        (default 30000)
  --retry-rounds N      retry rounds across live replicas per request
                        (default 3)
  --backoff-ms N        first-round retry backoff, doubled per round with
                        jitter (default 10)
  --backoff-max-ms N    retry backoff ceiling (default 500)
  --timeout-secs N      idle keep-alive timeout per client connection
                        (default 10)
  --trace-slow-us N     log the span tree of any request slower than N µs
                        (default: off)
  --help                print this help
";

fn parse_args() -> Result<RouterConfig, String> {
    let mut config = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" {
            print!("{USAGE}");
            exit(0);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--backends" => {
                config.backends = value
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--vnodes" => config.vnodes = parse_num(&flag, &value)?,
            "--fallback" => {
                config.fallback = match value.as_str() {
                    "local" => FallbackMode::Local,
                    "503" => FallbackMode::Unavailable,
                    other => return Err(format!("--fallback takes local|503, got `{other}`")),
                };
            }
            "--probe-ms" => {
                config.probe_interval = Duration::from_millis(parse_num(&flag, &value)? as u64);
            }
            "--fail-threshold" => {
                config.fail_threshold = parse_num(&flag, &value)?.max(1) as u32;
            }
            "--replication" => config.replication = parse_num(&flag, &value)?.max(1),
            "--deadline-ms" => {
                config.request_deadline = Duration::from_millis(parse_num(&flag, &value)? as u64);
            }
            "--retry-rounds" => {
                config.max_retry_rounds = parse_num(&flag, &value)?.max(1) as u32;
            }
            "--backoff-ms" => {
                config.retry_base_backoff = Duration::from_millis(parse_num(&flag, &value)? as u64);
            }
            "--backoff-max-ms" => {
                config.retry_max_backoff = Duration::from_millis(parse_num(&flag, &value)? as u64);
            }
            "--timeout-secs" => {
                config.read_timeout = Duration::from_secs(parse_num(&flag, &value)? as u64);
            }
            "--trace-slow-us" => {
                config.trace_slow_us = Some(parse_num(&flag, &value)? as u64);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    if config.backends.is_empty() {
        return Err("at least one --backends address is required".into());
    }
    Ok(config)
}

fn parse_num(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("flag {flag} needs a non-negative integer, got `{value}`"))
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            olog::error("bi-router", "bad arguments", &[("detail", Json::str(msg))]);
            exit(2);
        }
    };
    olog::info(
        "bi-router",
        "starting",
        &[
            ("backends", Json::str(config.backends.join(","))),
            ("vnodes", Json::from_u64(config.vnodes as u64)),
            ("fallback", Json::str(format!("{:?}", config.fallback))),
            (
                "probe_ms",
                Json::from_u64(config.probe_interval.as_millis() as u64),
            ),
            (
                "fail_threshold",
                Json::from_u64(u64::from(config.fail_threshold)),
            ),
            ("replication", Json::from_u64(config.replication as u64)),
            (
                "deadline_ms",
                Json::from_u64(config.request_deadline.as_millis() as u64),
            ),
            (
                "retry_rounds",
                Json::from_u64(u64::from(config.max_retry_rounds)),
            ),
            (
                "trace_slow_us",
                config.trace_slow_us.map_or(Json::Null, Json::from_u64),
            ),
        ],
    );
    let router = match Router::bind(config) {
        Ok(router) => router,
        Err(e) => {
            olog::error(
                "bi-router",
                "bind failed",
                &[("error", Json::str(e.to_string()))],
            );
            exit(1);
        }
    };
    let addr = router.local_addr().expect("bound listener has an address");
    // The machine-readable line: CI and the load generator parse it to
    // discover ephemeral ports.
    println!("bi-router listening on {addr}");
    std::io::stdout().flush().expect("stdout flush");
    if let Err(e) = router.run() {
        olog::error(
            "bi-router",
            "serving failed",
            &[("error", Json::str(e.to_string()))],
        );
        exit(1);
    }
}
