//! The disk-backed second cache tier: an append-only log of canonical
//! request bytes → response bytes, CRC-framed, with an in-memory FNV
//! index rebuilt by scanning on boot.
//!
//! The paper's measures are pure functions of the canonical request
//! bytes, so the cache key *is* the result identity — which makes a
//! persistent tier exact: replaying the log after a restart serves the
//! same bytes the engine computed before it. The in-memory LRU stays the
//! first tier; this log is the second, consulted on LRU misses (with
//! promotion back into the LRU) and appended **behind** the hot path by
//! a dedicated writer thread, so neither the reactor nor the solver pool
//! ever blocks on `write(2)`.
//!
//! # On-disk format
//!
//! The log is a sequence of frames, each:
//!
//! ```text
//! [key_len: u32 LE][val_len: u32 LE][crc32: u32 LE][key bytes][val bytes]
//! ```
//!
//! where the CRC-32 (IEEE, [`bi_util::crc32`]) covers `key ‖ val`. A
//! crash mid-append leaves a torn tail: on boot the scan stops at the
//! first incomplete or CRC-invalid frame, truncates the file back to the
//! last whole record, and keeps serving — recovery is never fatal. A key
//! appended twice keeps the last value (the scan overwrites the index
//! entry), though in practice the content-addressed keying makes every
//! re-append byte-identical.
//!
//! # Examples
//!
//! ```
//! use bi_service::persist::{DiskTier, DiskTierConfig};
//!
//! let path = std::env::temp_dir().join(format!("bi-doc-{}.log", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
//! tier.append(b"key", b"value");
//! tier.sync();
//! drop(tier);
//! // A reboot rebuilds the index by scanning the log.
//! let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
//! assert_eq!(tier.get(b"key").as_deref(), Some(&b"value"[..]));
//! # drop(tier);
//! # std::fs::remove_file(&path).unwrap();
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bi_util::{crc32, Crc32, FnvBuildHasher};

/// Frame header: `key_len`, `val_len`, `crc32`.
const HEADER_LEN: u64 = 12;

/// Sizing and back-pressure of a [`DiskTier`].
#[derive(Clone, Copy, Debug)]
pub struct DiskTierConfig {
    /// Bound of the write-behind queue; when full, appends are dropped
    /// (and counted) instead of blocking the hot path.
    pub queue_capacity: usize,
    /// Compaction trigger: rewrite the log once its on-disk size exceeds
    /// this multiple of the live (last-version) bytes. `0` disables
    /// compaction entirely.
    pub compact_ratio: u32,
    /// Logs smaller than this never compact — rewriting a few KiB to
    /// reclaim half of it is churn, not savings.
    pub compact_min_bytes: u64,
}

impl Default for DiskTierConfig {
    /// A 4096-append queue, compacting past 2× live bytes on logs of at
    /// least 64 KiB.
    fn default() -> Self {
        DiskTierConfig {
            queue_capacity: 4096,
            compact_ratio: 2,
            compact_min_bytes: 64 * 1024,
        }
    }
}

/// A point-in-time snapshot of the disk tier, reported by `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    /// Whole records recovered by the boot scan.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated by the boot scan (0 on a clean log).
    pub truncated_bytes: u64,
    /// `get` calls answered from disk.
    pub hits: u64,
    /// `get` calls that found no entry.
    pub misses: u64,
    /// Records durably appended since boot.
    pub appends: u64,
    /// Appends dropped because the write-behind queue was full.
    pub dropped_appends: u64,
    /// Log rewrites completed since boot.
    pub compactions: u64,
    /// Current on-disk log size in bytes.
    pub log_bytes: u64,
    /// Bytes of the live (last-version) records, headers included —
    /// what a compaction would shrink the log to.
    pub live_bytes: u64,
    /// Distinct keys currently indexed.
    pub entries: usize,
}

/// Where a value lives in the log.
#[derive(Clone, Copy, Debug)]
struct ValueLoc {
    offset: u64,
    len: u32,
}

/// Counters shared between the tier handle and its writer thread.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    dropped_appends: AtomicU64,
    compactions: AtomicU64,
    log_bytes: AtomicU64,
    live_bytes: AtomicU64,
}

/// Key bytes → value location; rebuilt by the boot scan, extended by
/// the writer thread as appends land.
type Index = HashMap<Arc<[u8]>, ValueLoc, FnvBuildHasher>;

/// One message to the write-behind thread.
enum WriteMsg {
    /// Append `key → value` to the log.
    Append(Vec<u8>, Arc<[u8]>),
    /// Flush everything queued so far and ack.
    Barrier(SyncSender<()>),
}

/// The disk-backed cache tier. Cheap to share behind an `Arc`; dropping
/// the last handle flushes and joins the writer thread.
pub struct DiskTier {
    index: Arc<Mutex<Index>>,
    /// Read handle. Lookups hold this lock across the index probe *and*
    /// the value read, and compaction swaps the handle (plus the index
    /// offsets) while holding the same lock — so a reader can never pair
    /// a pre-compaction offset with the post-compaction file. Normal
    /// appends only ever grow the file past every indexed offset, so
    /// they need no such coordination.
    reader: Arc<Mutex<File>>,
    tx: Option<SyncSender<WriteMsg>>,
    writer: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
    recovered_records: u64,
    truncated_bytes: u64,
    path: PathBuf,
}

impl DiskTier {
    /// Opens (or creates) the log at `path`, scanning it to rebuild the
    /// in-memory index. A torn tail — from a crash mid-append — is
    /// truncated, not fatal; every complete record is recovered.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (open, scan read, truncate).
    pub fn open(path: impl AsRef<Path>, config: DiskTierConfig) -> io::Result<DiskTier> {
        let path = path.as_ref().to_path_buf();
        // A leftover `.compact` file is a compaction that died before its
        // rename — the main log is still complete, so the half-written
        // rewrite is garbage.
        let _ = std::fs::remove_file(compact_path(&path));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let (index, end, recovered, file_len, live) = scan_log(&mut file)?;
        let truncated = file_len - end;
        if truncated > 0 {
            file.set_len(end)?;
        }
        let append_file = OpenOptions::new().append(true).open(&path)?;
        let index = Arc::new(Mutex::new(index));
        let counters = Arc::new(Counters::default());
        counters.log_bytes.store(end, Ordering::Relaxed);
        counters.live_bytes.store(live, Ordering::Relaxed);
        let reader = Arc::new(Mutex::new(file));
        let (tx, rx) = sync_channel(config.queue_capacity.max(1));
        let writer = {
            let index = Arc::clone(&index);
            let counters = Arc::clone(&counters);
            let reader = Arc::clone(&reader);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut state = WriterState {
                    out: BufWriter::new(append_file),
                    end,
                    live,
                    path,
                    config,
                };
                writer_loop(&rx, &mut state, &index, &reader, &counters);
            })
        };
        Ok(DiskTier {
            index,
            reader,
            tx: Some(tx),
            writer: Some(writer),
            counters,
            recovered_records: recovered,
            truncated_bytes: truncated,
            path,
        })
    }

    /// The log path this tier persists to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up `key`, reading the value bytes back off the log.
    /// Returns `None` when the key was never durably appended (including
    /// appends still queued behind the write-behind channel).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Lock order: reader, then index — the same order compaction
        // uses to swap both, so an offset looked up here is always read
        // against the file it indexes into.
        let mut file = self.reader.lock().expect("disk reader poisoned");
        let loc = {
            let index = self.index.lock().expect("disk index poisoned");
            index.get(key).copied()
        };
        let Some(loc) = loc else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let mut value = vec![0u8; loc.len as usize];
        if file
            .seek(SeekFrom::Start(loc.offset))
            .and_then(|_| file.read_exact(&mut value))
            .is_err()
        {
            // An indexed record must be readable; treat I/O decay as
            // a miss rather than serving partial bytes.
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        drop(file);
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Queues `key → value` for appending. Never blocks: when the
    /// write-behind queue is full the append is dropped and counted —
    /// the disk tier is an optimization, not a durability contract.
    pub fn append(&self, key: &[u8], value: &[u8]) {
        self.append_shared(key, Arc::from(value));
    }

    /// [`DiskTier::append`] taking the value as the shared `Arc` the
    /// cache already holds, avoiding a copy on the hot path.
    pub fn append_shared(&self, key: &[u8], value: Arc<[u8]>) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(WriteMsg::Append(key.to_vec(), value)) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.counters
                    .dropped_appends
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocks until every append queued before this call is durably on
    /// disk and indexed (tests and orderly shutdown; the serving path
    /// never calls this).
    pub fn sync(&self) {
        let Some(tx) = &self.tx else { return };
        let (ack_tx, ack_rx) = sync_channel(1);
        if tx.send(WriteMsg::Barrier(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// A point-in-time effectiveness snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskTierStats {
        DiskTierStats {
            recovered_records: self.recovered_records,
            truncated_bytes: self.truncated_bytes,
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            dropped_appends: self.counters.dropped_appends.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
            log_bytes: self.counters.log_bytes.load(Ordering::Relaxed),
            live_bytes: self.counters.live_bytes.load(Ordering::Relaxed),
            entries: self.index.lock().expect("disk index poisoned").len(),
        }
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnects the writer's recv
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Scans the log from the start, returning the rebuilt index, the byte
/// offset of the last whole record's end, the record count, the file
/// length, and the live bytes (last-version frames only). Stops (without
/// error) at the first torn or CRC-invalid frame.
fn scan_log(file: &mut File) -> io::Result<(Index, u64, u64, u64, u64)> {
    let file_len = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(0))?;
    let mut reader = io::BufReader::new(&mut *file);
    let mut index = Index::with_hasher(FnvBuildHasher);
    let mut pos = 0u64;
    let mut recovered = 0u64;
    let mut live = 0u64;
    loop {
        if file_len - pos < HEADER_LEN {
            break; // torn or empty header
        }
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        let key_len = u64::from(u32::from_le_bytes(
            header[0..4].try_into().expect("4 bytes"),
        ));
        let val_len = u64::from(u32::from_le_bytes(
            header[4..8].try_into().expect("4 bytes"),
        ));
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let payload = key_len + val_len;
        if file_len - pos - HEADER_LEN < payload {
            break; // torn payload (or a garbage length field — same thing)
        }
        let mut key = vec![0u8; key_len as usize];
        reader.read_exact(&mut key)?;
        let mut val = vec![0u8; val_len as usize];
        reader.read_exact(&mut val)?;
        let mut acc = Crc32::new();
        acc.update(&key);
        acc.update(&val);
        if acc.finish() != crc {
            break; // corrupt frame: treat as the new end of log
        }
        let val_offset = pos + HEADER_LEN + key_len;
        let replaced = index.insert(
            Arc::from(key),
            ValueLoc {
                offset: val_offset,
                len: u32::try_from(val_len).expect("val_len came from a u32"),
            },
        );
        live += HEADER_LEN + payload;
        if let Some(old) = replaced {
            // The superseded frame had the same key, so its dead weight
            // is the same header + key plus its own value length.
            live -= HEADER_LEN + key_len + u64::from(old.len);
        }
        recovered += 1;
        pos += HEADER_LEN + payload;
    }
    Ok((index, pos, recovered, file_len, live))
}

/// The writer thread's mutable view of the log: the append handle, the
/// current end offset, and the live-byte estimate compaction triggers on.
struct WriterState {
    out: BufWriter<File>,
    end: u64,
    live: u64,
    path: PathBuf,
    config: DiskTierConfig,
}

/// The sibling path a compaction rewrites into before the atomic rename.
#[must_use]
pub fn compact_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".compact");
    PathBuf::from(name)
}

/// The write-behind thread: frames and appends records, indexing each
/// one once it (and everything before it) is flushed, and compacting
/// the log when dead re-append weight crosses the configured ratio.
fn writer_loop(
    rx: &Receiver<WriteMsg>,
    state: &mut WriterState,
    index: &Mutex<Index>,
    reader: &Mutex<File>,
    counters: &Counters,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WriteMsg::Append(key, value) => {
                let key_len = u32::try_from(key.len()).unwrap_or(u32::MAX);
                let val_len = u32::try_from(value.len()).unwrap_or(u32::MAX);
                if key_len as usize != key.len() || val_len as usize != value.len() {
                    counters.dropped_appends.fetch_add(1, Ordering::Relaxed);
                    continue; // a >4 GiB frame cannot be framed; skip it
                }
                let mut acc = Crc32::new();
                acc.update(&key);
                acc.update(&value);
                let write = state
                    .out
                    .write_all(&key_len.to_le_bytes())
                    .and_then(|()| state.out.write_all(&val_len.to_le_bytes()))
                    .and_then(|()| state.out.write_all(&acc.finish().to_le_bytes()))
                    .and_then(|()| state.out.write_all(&key))
                    .and_then(|()| state.out.write_all(&value))
                    .and_then(|()| state.out.flush());
                if write.is_err() {
                    // The log is now suspect past `end`; stop appending
                    // (boot-scan truncation repairs the tail) but keep
                    // draining so the hot path's try_send never sees a
                    // dropped receiver mid-run.
                    counters.dropped_appends.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let val_offset = state.end + HEADER_LEN + u64::from(key_len);
                let frame = HEADER_LEN + u64::from(key_len) + u64::from(val_len);
                let replaced = index.lock().expect("disk index poisoned").insert(
                    Arc::from(key),
                    ValueLoc {
                        offset: val_offset,
                        len: val_len,
                    },
                );
                state.end += frame;
                state.live += frame;
                if let Some(old) = replaced {
                    state.live -= HEADER_LEN + u64::from(key_len) + u64::from(old.len);
                }
                counters.appends.fetch_add(1, Ordering::Relaxed);
                counters.log_bytes.store(state.end, Ordering::Relaxed);
                counters.live_bytes.store(state.live, Ordering::Relaxed);
                maybe_compact(state, index, reader, counters);
            }
            WriteMsg::Barrier(ack) => {
                let _ = state.out.flush();
                let _ = ack.try_send(());
            }
        }
    }
    let _ = state.out.flush();
}

/// Compacts when the log has outgrown the configured multiple of its
/// live bytes. All fallible work — rewriting the live records into a
/// sibling file, fsyncing it, opening the new read/append handles —
/// happens *before* the commit point, a single atomic rename; a crash
/// anywhere before it leaves the original log untouched (the leftover
/// `.compact` file is removed on the next boot), and a crash after it
/// leaves the fully-fsynced compacted log. Failures abort the attempt
/// and keep serving from the old log.
fn maybe_compact(
    state: &mut WriterState,
    index: &Mutex<Index>,
    reader: &Mutex<File>,
    counters: &Counters,
) {
    let ratio = u64::from(state.config.compact_ratio);
    if ratio == 0 || state.end < state.config.compact_min_bytes {
        return;
    }
    if state.end <= state.live.saturating_mul(ratio) {
        return;
    }
    // Snapshot the live set. Only this thread mutates the index, so the
    // snapshot cannot go stale before the swap below.
    let entries: Vec<(Arc<[u8]>, ValueLoc)> = {
        let index = index.lock().expect("disk index poisoned");
        index.iter().map(|(k, &loc)| (Arc::clone(k), loc)).collect()
    };
    let tmp = compact_path(&state.path);
    let rewritten = rewrite_live(&state.path, &tmp, &entries);
    let Ok((new_index, new_end)) = rewritten else {
        let _ = std::fs::remove_file(&tmp);
        return;
    };
    // Open both successor handles on the sibling file *before* the
    // rename — they stay valid across it (same inode), so once the
    // rename lands nothing can fail.
    let Ok(new_reader) = OpenOptions::new().read(true).open(&tmp) else {
        let _ = std::fs::remove_file(&tmp);
        return;
    };
    let Ok(new_append) = OpenOptions::new().append(true).open(&tmp) else {
        let _ = std::fs::remove_file(&tmp);
        return;
    };
    {
        // Same lock order as `DiskTier::get`: reader, then index. While
        // both are held, readers can neither look up an offset nor read
        // a value, so the offsets and the file swap together.
        let mut reader = reader.lock().expect("disk reader poisoned");
        let mut index = index.lock().expect("disk index poisoned");
        if std::fs::rename(&tmp, &state.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        *index = new_index;
        *reader = new_reader;
    }
    state.out = BufWriter::new(new_append);
    state.end = new_end;
    state.live = new_end;
    counters.compactions.fetch_add(1, Ordering::Relaxed);
    counters.log_bytes.store(new_end, Ordering::Relaxed);
    counters.live_bytes.store(new_end, Ordering::Relaxed);
}

/// Writes every live record of `src` into `dst` (fsynced), returning
/// the rebuilt index and the new log size. Records are re-framed from
/// the values read back off the old log, so the result is byte-identical
/// to a log that only ever saw the last version of each key.
fn rewrite_live(
    src: &Path,
    dst: &Path,
    entries: &[(Arc<[u8]>, ValueLoc)],
) -> io::Result<(Index, u64)> {
    let mut from = OpenOptions::new().read(true).open(src)?;
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(dst)?;
    let mut out = BufWriter::new(file);
    let mut new_index = Index::with_hasher(FnvBuildHasher);
    let mut pos = 0u64;
    for (key, loc) in entries {
        let mut value = vec![0u8; loc.len as usize];
        from.seek(SeekFrom::Start(loc.offset))?;
        from.read_exact(&mut value)?;
        let frame = frame_record(key, &value);
        out.write_all(&frame)?;
        new_index.insert(
            Arc::clone(key),
            ValueLoc {
                offset: pos + HEADER_LEN + key.len() as u64,
                len: loc.len,
            },
        );
        pos += frame.len() as u64;
    }
    out.flush()?;
    out.get_ref().sync_all()?;
    Ok((new_index, pos))
}

/// A CRC-framed record as [`DiskTier`] writes it — exposed so tests can
/// author and dissect log files byte-exactly.
#[must_use]
pub fn frame_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut acc = Crc32::new();
    acc.update(key);
    acc.update(value);
    let mut out = Vec::with_capacity(HEADER_LEN as usize + key.len() + value.len());
    out.extend_from_slice(
        &u32::try_from(key.len())
            .expect("test keys fit u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(
        &u32::try_from(value.len())
            .expect("test values fit u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&acc.finish().to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    debug_assert_eq!(crc32(&[key, value].concat()), acc.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bi-persist-{}-{tag}-{n}.log", std::process::id()))
    }

    #[test]
    fn appends_survive_a_reopen() {
        let path = temp_log("reopen");
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            tier.append(b"k1", b"v1");
            tier.append(b"k2", b"v2-longer");
            tier.sync();
            assert_eq!(tier.get(b"k1").as_deref(), Some(&b"v1"[..]));
            let stats = tier.stats();
            assert_eq!(stats.appends, 2);
            assert_eq!(stats.entries, 2);
            assert_eq!(stats.recovered_records, 0);
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.recovered_records, 2);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(tier.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(tier.get(b"k2").as_deref(), Some(&b"v2-longer"[..]));
        assert_eq!(tier.get(b"k3"), None);
        assert_eq!(tier.stats().hits, 2);
        assert_eq!(tier.stats().misses, 1);
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewritten_keys_keep_the_last_value() {
        let path = temp_log("rewrite");
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            tier.append(b"k", b"old");
            tier.append(b"k", b"new");
            tier.sync();
            assert_eq!(tier.get(b"k").as_deref(), Some(&b"new"[..]));
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.get(b"k").as_deref(), Some(&b"new"[..]));
        assert_eq!(tier.stats().recovered_records, 2, "both frames are whole");
        assert_eq!(tier.stats().entries, 1, "one key");
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_frame_truncates_everything_after_it() {
        let path = temp_log("corrupt");
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"a", b"1"));
        let corrupt_at = log.len() + HEADER_LEN as usize; // first key byte of frame 2
        log.extend_from_slice(&frame_record(b"b", b"2"));
        log.extend_from_slice(&frame_record(b"c", b"3"));
        log[corrupt_at] ^= 0xFF;
        std::fs::write(&path, &log).unwrap();
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        let stats = tier.stats();
        // The CRC failure on frame 2 ends the log there; frame 3 is
        // unreachable (the log is append-only, so bytes after a corrupt
        // frame have no trustworthy framing).
        assert_eq!(stats.recovered_records, 1);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(tier.get(b"b"), None);
        drop(tier);
        // The truncation is durable: a re-open sees a clean short log.
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().truncated_bytes, 0);
        assert_eq!(tier.stats().recovered_records, 1);
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_resume_cleanly_after_a_torn_tail() {
        let path = temp_log("resume");
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"a", b"1"));
        log.extend_from_slice(&frame_record(b"b", b"2"));
        log.truncate(log.len() - 1); // torn tail
        std::fs::write(&path, &log).unwrap();
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            assert_eq!(tier.stats().recovered_records, 1);
            tier.append(b"c", b"3");
            tier.sync();
            assert_eq!(tier.get(b"c").as_deref(), Some(&b"3"[..]));
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().recovered_records, 2);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(tier.get(b"b"), None, "the torn record stays gone");
        assert_eq!(tier.get(b"c").as_deref(), Some(&b"3"[..]));
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    /// A config that compacts aggressively (no minimum size) so tests
    /// can trigger rewrites with a handful of records.
    fn eager_compaction() -> DiskTierConfig {
        DiskTierConfig {
            compact_min_bytes: 1,
            ..DiskTierConfig::default()
        }
    }

    #[test]
    fn re_appends_trigger_compaction_and_bound_the_log() {
        let path = temp_log("compact");
        let tier = DiskTier::open(&path, eager_compaction()).unwrap();
        // 8 distinct keys, each overwritten 8 times: without compaction
        // the log holds 64 frames for 8 live records.
        for round in 0..8u8 {
            for k in 0..8u8 {
                tier.append(&[b'k', k], &[round; 100]);
            }
        }
        tier.sync();
        let stats = tier.stats();
        assert!(stats.compactions > 0, "overwrites must trigger a rewrite");
        assert!(
            stats.log_bytes <= 2 * stats.live_bytes,
            "log ({}) must stay within 2x live bytes ({})",
            stats.log_bytes,
            stats.live_bytes
        );
        // Every key still answers its last value, through the swap.
        for k in 0..8u8 {
            assert_eq!(tier.get(&[b'k', k]).as_deref(), Some(&[7u8; 100][..]));
        }
        drop(tier);
        // The compacted log replays clean: exactly the live records.
        let tier = DiskTier::open(&path, eager_compaction()).unwrap();
        assert_eq!(tier.stats().truncated_bytes, 0);
        assert_eq!(tier.stats().entries, 8);
        for k in 0..8u8 {
            assert_eq!(tier.get(&[b'k', k]).as_deref(), Some(&[7u8; 100][..]));
        }
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_after_compaction_land_in_the_new_log() {
        let path = temp_log("compact-append");
        let tier = DiskTier::open(&path, eager_compaction()).unwrap();
        for round in 0..4u8 {
            tier.append(b"hot", &[round; 64]);
        }
        tier.sync();
        assert!(tier.stats().compactions > 0);
        tier.append(b"fresh", b"post-compaction value");
        tier.sync();
        assert_eq!(
            tier.get(b"fresh").as_deref(),
            Some(&b"post-compaction value"[..])
        );
        drop(tier);
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.get(b"hot").as_deref(), Some(&[3u8; 64][..]));
        assert_eq!(
            tier.get(b"fresh").as_deref(),
            Some(&b"post-compaction value"[..])
        );
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_stale_compact_sibling_is_discarded_on_boot() {
        let path = temp_log("stale-sibling");
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"a", b"1"));
        log.extend_from_slice(&frame_record(b"b", b"2"));
        std::fs::write(&path, &log).unwrap();
        // A compaction that crashed pre-rename: a half-written sibling.
        std::fs::write(compact_path(&path), &frame_record(b"a", b"1")[..7]).unwrap();
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().recovered_records, 2);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(tier.get(b"b").as_deref(), Some(&b"2"[..]));
        assert!(
            !compact_path(&path).exists(),
            "the dead rewrite must be cleaned up"
        );
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn live_bytes_track_the_last_version_of_each_key() {
        let path = temp_log("live-bytes");
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        tier.append(b"k", b"four");
        tier.append(b"k", b"eight-by!");
        tier.sync();
        let stats = tier.stats();
        let frame = |val: usize| HEADER_LEN + 1 + val as u64;
        assert_eq!(stats.log_bytes, frame(4) + frame(9));
        assert_eq!(stats.live_bytes, frame(9));
        drop(tier);
        // The boot scan recomputes the same accounting.
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.log_bytes, frame(4) + frame(9));
        assert_eq!(stats.live_bytes, frame(9));
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_length_fields_are_a_torn_tail_not_an_allocation() {
        let path = temp_log("garbage");
        let mut log = frame_record(b"a", b"1");
        // A header claiming a 3 GiB payload that isn't there: must be
        // treated as torn (no allocation of the claimed size).
        log.extend_from_slice(&0xC000_0000u32.to_le_bytes());
        log.extend_from_slice(&0xC000_0000u32.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &log).unwrap();
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().recovered_records, 1);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }
}
