//! The disk-backed second cache tier: an append-only log of canonical
//! request bytes → response bytes, CRC-framed, with an in-memory FNV
//! index rebuilt by scanning on boot.
//!
//! The paper's measures are pure functions of the canonical request
//! bytes, so the cache key *is* the result identity — which makes a
//! persistent tier exact: replaying the log after a restart serves the
//! same bytes the engine computed before it. The in-memory LRU stays the
//! first tier; this log is the second, consulted on LRU misses (with
//! promotion back into the LRU) and appended **behind** the hot path by
//! a dedicated writer thread, so neither the reactor nor the solver pool
//! ever blocks on `write(2)`.
//!
//! # On-disk format
//!
//! The log is a sequence of frames, each:
//!
//! ```text
//! [key_len: u32 LE][val_len: u32 LE][crc32: u32 LE][key bytes][val bytes]
//! ```
//!
//! where the CRC-32 (IEEE, [`bi_util::crc32`]) covers `key ‖ val`. A
//! crash mid-append leaves a torn tail: on boot the scan stops at the
//! first incomplete or CRC-invalid frame, truncates the file back to the
//! last whole record, and keeps serving — recovery is never fatal. A key
//! appended twice keeps the last value (the scan overwrites the index
//! entry), though in practice the content-addressed keying makes every
//! re-append byte-identical.
//!
//! # Examples
//!
//! ```
//! use bi_service::persist::{DiskTier, DiskTierConfig};
//!
//! let path = std::env::temp_dir().join(format!("bi-doc-{}.log", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
//! tier.append(b"key", b"value");
//! tier.sync();
//! drop(tier);
//! // A reboot rebuilds the index by scanning the log.
//! let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
//! assert_eq!(tier.get(b"key").as_deref(), Some(&b"value"[..]));
//! # drop(tier);
//! # std::fs::remove_file(&path).unwrap();
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bi_util::{crc32, Crc32, FnvBuildHasher};

/// Frame header: `key_len`, `val_len`, `crc32`.
const HEADER_LEN: u64 = 12;

/// Sizing and back-pressure of a [`DiskTier`].
#[derive(Clone, Copy, Debug)]
pub struct DiskTierConfig {
    /// Bound of the write-behind queue; when full, appends are dropped
    /// (and counted) instead of blocking the hot path.
    pub queue_capacity: usize,
}

impl Default for DiskTierConfig {
    /// A 4096-append queue.
    fn default() -> Self {
        DiskTierConfig {
            queue_capacity: 4096,
        }
    }
}

/// A point-in-time snapshot of the disk tier, reported by `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    /// Whole records recovered by the boot scan.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated by the boot scan (0 on a clean log).
    pub truncated_bytes: u64,
    /// `get` calls answered from disk.
    pub hits: u64,
    /// `get` calls that found no entry.
    pub misses: u64,
    /// Records durably appended since boot.
    pub appends: u64,
    /// Appends dropped because the write-behind queue was full.
    pub dropped_appends: u64,
    /// Distinct keys currently indexed.
    pub entries: usize,
}

/// Where a value lives in the log.
#[derive(Clone, Copy, Debug)]
struct ValueLoc {
    offset: u64,
    len: u32,
}

/// Counters shared between the tier handle and its writer thread.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    dropped_appends: AtomicU64,
}

/// Key bytes → value location; rebuilt by the boot scan, extended by
/// the writer thread as appends land.
type Index = HashMap<Arc<[u8]>, ValueLoc, FnvBuildHasher>;

/// One message to the write-behind thread.
enum WriteMsg {
    /// Append `key → value` to the log.
    Append(Vec<u8>, Arc<[u8]>),
    /// Flush everything queued so far and ack.
    Barrier(SyncSender<()>),
}

/// The disk-backed cache tier. Cheap to share behind an `Arc`; dropping
/// the last handle flushes and joins the writer thread.
pub struct DiskTier {
    index: Arc<Mutex<Index>>,
    /// Read handle (seek + read under a lock; appends only ever grow the
    /// file past every indexed offset, so readers and the writer thread
    /// never conflict).
    reader: Mutex<File>,
    tx: Option<SyncSender<WriteMsg>>,
    writer: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
    recovered_records: u64,
    truncated_bytes: u64,
    path: PathBuf,
}

impl DiskTier {
    /// Opens (or creates) the log at `path`, scanning it to rebuild the
    /// in-memory index. A torn tail — from a crash mid-append — is
    /// truncated, not fatal; every complete record is recovered.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (open, scan read, truncate).
    pub fn open(path: impl AsRef<Path>, config: DiskTierConfig) -> io::Result<DiskTier> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let (index, end, recovered, file_len) = scan_log(&mut file)?;
        let truncated = file_len - end;
        if truncated > 0 {
            file.set_len(end)?;
        }
        let append_file = OpenOptions::new().append(true).open(&path)?;
        let index = Arc::new(Mutex::new(index));
        let counters = Arc::new(Counters::default());
        let (tx, rx) = sync_channel(config.queue_capacity.max(1));
        let writer = {
            let index = Arc::clone(&index);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || writer_loop(&rx, append_file, end, &index, &counters))
        };
        Ok(DiskTier {
            index,
            reader: Mutex::new(file),
            tx: Some(tx),
            writer: Some(writer),
            counters,
            recovered_records: recovered,
            truncated_bytes: truncated,
            path,
        })
    }

    /// The log path this tier persists to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up `key`, reading the value bytes back off the log.
    /// Returns `None` when the key was never durably appended (including
    /// appends still queued behind the write-behind channel).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let loc = {
            let index = self.index.lock().expect("disk index poisoned");
            index.get(key).copied()
        };
        let Some(loc) = loc else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let mut value = vec![0u8; loc.len as usize];
        {
            let mut file = self.reader.lock().expect("disk reader poisoned");
            if file
                .seek(SeekFrom::Start(loc.offset))
                .and_then(|_| file.read_exact(&mut value))
                .is_err()
            {
                // An indexed record must be readable; treat I/O decay as
                // a miss rather than serving partial bytes.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Queues `key → value` for appending. Never blocks: when the
    /// write-behind queue is full the append is dropped and counted —
    /// the disk tier is an optimization, not a durability contract.
    pub fn append(&self, key: &[u8], value: &[u8]) {
        self.append_shared(key, Arc::from(value));
    }

    /// [`DiskTier::append`] taking the value as the shared `Arc` the
    /// cache already holds, avoiding a copy on the hot path.
    pub fn append_shared(&self, key: &[u8], value: Arc<[u8]>) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(WriteMsg::Append(key.to_vec(), value)) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.counters
                    .dropped_appends
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocks until every append queued before this call is durably on
    /// disk and indexed (tests and orderly shutdown; the serving path
    /// never calls this).
    pub fn sync(&self) {
        let Some(tx) = &self.tx else { return };
        let (ack_tx, ack_rx) = sync_channel(1);
        if tx.send(WriteMsg::Barrier(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// A point-in-time effectiveness snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskTierStats {
        DiskTierStats {
            recovered_records: self.recovered_records,
            truncated_bytes: self.truncated_bytes,
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            dropped_appends: self.counters.dropped_appends.load(Ordering::Relaxed),
            entries: self.index.lock().expect("disk index poisoned").len(),
        }
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnects the writer's recv
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Scans the log from the start, returning the rebuilt index, the byte
/// offset of the last whole record's end, the record count, and the file
/// length. Stops (without error) at the first torn or CRC-invalid frame.
fn scan_log(file: &mut File) -> io::Result<(Index, u64, u64, u64)> {
    let file_len = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(0))?;
    let mut reader = io::BufReader::new(&mut *file);
    let mut index = Index::with_hasher(FnvBuildHasher);
    let mut pos = 0u64;
    let mut recovered = 0u64;
    loop {
        if file_len - pos < HEADER_LEN {
            break; // torn or empty header
        }
        let mut header = [0u8; HEADER_LEN as usize];
        reader.read_exact(&mut header)?;
        let key_len = u64::from(u32::from_le_bytes(
            header[0..4].try_into().expect("4 bytes"),
        ));
        let val_len = u64::from(u32::from_le_bytes(
            header[4..8].try_into().expect("4 bytes"),
        ));
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let payload = key_len + val_len;
        if file_len - pos - HEADER_LEN < payload {
            break; // torn payload (or a garbage length field — same thing)
        }
        let mut key = vec![0u8; key_len as usize];
        reader.read_exact(&mut key)?;
        let mut val = vec![0u8; val_len as usize];
        reader.read_exact(&mut val)?;
        let mut acc = Crc32::new();
        acc.update(&key);
        acc.update(&val);
        if acc.finish() != crc {
            break; // corrupt frame: treat as the new end of log
        }
        let val_offset = pos + HEADER_LEN + key_len;
        index.insert(
            Arc::from(key),
            ValueLoc {
                offset: val_offset,
                len: u32::try_from(val_len).expect("val_len came from a u32"),
            },
        );
        recovered += 1;
        pos += HEADER_LEN + payload;
    }
    Ok((index, pos, recovered, file_len))
}

/// The write-behind thread: frames and appends records, indexing each
/// one once it (and everything before it) is flushed.
fn writer_loop(
    rx: &Receiver<WriteMsg>,
    file: File,
    mut end: u64,
    index: &Mutex<Index>,
    counters: &Counters,
) {
    let mut out = BufWriter::new(file);
    while let Ok(msg) = rx.recv() {
        match msg {
            WriteMsg::Append(key, value) => {
                let key_len = u32::try_from(key.len()).unwrap_or(u32::MAX);
                let val_len = u32::try_from(value.len()).unwrap_or(u32::MAX);
                if key_len as usize != key.len() || val_len as usize != value.len() {
                    counters.dropped_appends.fetch_add(1, Ordering::Relaxed);
                    continue; // a >4 GiB frame cannot be framed; skip it
                }
                let mut acc = Crc32::new();
                acc.update(&key);
                acc.update(&value);
                let write = out
                    .write_all(&key_len.to_le_bytes())
                    .and_then(|()| out.write_all(&val_len.to_le_bytes()))
                    .and_then(|()| out.write_all(&acc.finish().to_le_bytes()))
                    .and_then(|()| out.write_all(&key))
                    .and_then(|()| out.write_all(&value))
                    .and_then(|()| out.flush());
                if write.is_err() {
                    // The log is now suspect past `end`; stop appending
                    // (boot-scan truncation repairs the tail) but keep
                    // draining so the hot path's try_send never sees a
                    // dropped receiver mid-run.
                    counters.dropped_appends.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let val_offset = end + HEADER_LEN + u64::from(key_len);
                index.lock().expect("disk index poisoned").insert(
                    Arc::from(key),
                    ValueLoc {
                        offset: val_offset,
                        len: val_len,
                    },
                );
                end += HEADER_LEN + u64::from(key_len) + u64::from(val_len);
                counters.appends.fetch_add(1, Ordering::Relaxed);
            }
            WriteMsg::Barrier(ack) => {
                let _ = out.flush();
                let _ = ack.try_send(());
            }
        }
    }
    let _ = out.flush();
}

/// A CRC-framed record as [`DiskTier`] writes it — exposed so tests can
/// author and dissect log files byte-exactly.
#[must_use]
pub fn frame_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut acc = Crc32::new();
    acc.update(key);
    acc.update(value);
    let mut out = Vec::with_capacity(HEADER_LEN as usize + key.len() + value.len());
    out.extend_from_slice(
        &u32::try_from(key.len())
            .expect("test keys fit u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(
        &u32::try_from(value.len())
            .expect("test values fit u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&acc.finish().to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    debug_assert_eq!(crc32(&[key, value].concat()), acc.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bi-persist-{}-{tag}-{n}.log", std::process::id()))
    }

    #[test]
    fn appends_survive_a_reopen() {
        let path = temp_log("reopen");
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            tier.append(b"k1", b"v1");
            tier.append(b"k2", b"v2-longer");
            tier.sync();
            assert_eq!(tier.get(b"k1").as_deref(), Some(&b"v1"[..]));
            let stats = tier.stats();
            assert_eq!(stats.appends, 2);
            assert_eq!(stats.entries, 2);
            assert_eq!(stats.recovered_records, 0);
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.recovered_records, 2);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(tier.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(tier.get(b"k2").as_deref(), Some(&b"v2-longer"[..]));
        assert_eq!(tier.get(b"k3"), None);
        assert_eq!(tier.stats().hits, 2);
        assert_eq!(tier.stats().misses, 1);
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewritten_keys_keep_the_last_value() {
        let path = temp_log("rewrite");
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            tier.append(b"k", b"old");
            tier.append(b"k", b"new");
            tier.sync();
            assert_eq!(tier.get(b"k").as_deref(), Some(&b"new"[..]));
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.get(b"k").as_deref(), Some(&b"new"[..]));
        assert_eq!(tier.stats().recovered_records, 2, "both frames are whole");
        assert_eq!(tier.stats().entries, 1, "one key");
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_frame_truncates_everything_after_it() {
        let path = temp_log("corrupt");
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"a", b"1"));
        let corrupt_at = log.len() + HEADER_LEN as usize; // first key byte of frame 2
        log.extend_from_slice(&frame_record(b"b", b"2"));
        log.extend_from_slice(&frame_record(b"c", b"3"));
        log[corrupt_at] ^= 0xFF;
        std::fs::write(&path, &log).unwrap();
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        let stats = tier.stats();
        // The CRC failure on frame 2 ends the log there; frame 3 is
        // unreachable (the log is append-only, so bytes after a corrupt
        // frame have no trustworthy framing).
        assert_eq!(stats.recovered_records, 1);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(tier.get(b"b"), None);
        drop(tier);
        // The truncation is durable: a re-open sees a clean short log.
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().truncated_bytes, 0);
        assert_eq!(tier.stats().recovered_records, 1);
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_resume_cleanly_after_a_torn_tail() {
        let path = temp_log("resume");
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"a", b"1"));
        log.extend_from_slice(&frame_record(b"b", b"2"));
        log.truncate(log.len() - 1); // torn tail
        std::fs::write(&path, &log).unwrap();
        {
            let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
            assert_eq!(tier.stats().recovered_records, 1);
            tier.append(b"c", b"3");
            tier.sync();
            assert_eq!(tier.get(b"c").as_deref(), Some(&b"3"[..]));
        }
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().recovered_records, 2);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(tier.get(b"b"), None, "the torn record stays gone");
        assert_eq!(tier.get(b"c").as_deref(), Some(&b"3"[..]));
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_length_fields_are_a_torn_tail_not_an_allocation() {
        let path = temp_log("garbage");
        let mut log = frame_record(b"a", b"1");
        // A header claiming a 3 GiB payload that isn't there: must be
        // treated as torn (no allocation of the claimed size).
        log.extend_from_slice(&0xC000_0000u32.to_le_bytes());
        log.extend_from_slice(&0xC000_0000u32.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &log).unwrap();
        let tier = DiskTier::open(&path, DiskTierConfig::default()).unwrap();
        assert_eq!(tier.stats().recovered_records, 1);
        assert_eq!(tier.get(b"a").as_deref(), Some(&b"1"[..]));
        drop(tier);
        std::fs::remove_file(&path).unwrap();
    }
}
