//! A minimal HTTP/1.1 layer over `std::io` streams: enough protocol for
//! the solve service and its load generator, and nothing more.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default) and `Connection: close`, and plain
//! status responses. Not supported (requests using them get `400`/`501`):
//! chunked transfer encoding, upgrades, continuations.
//!
//! Both sides of the repo speak this module: the server parses requests
//! with [`read_request`] and answers with [`Response::write`]; the load
//! generator writes requests with [`write_request`] and parses responses
//! with [`read_response`].

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line + header block, in bytes.
const MAX_HEAD: usize = 64 * 1024;

/// Largest accepted request/response body, in bytes (a wire-form game of
/// a few thousand states fits comfortably).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path + optional query), e.g. `/solve`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 default unless `Connection: close`).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A request parse failure, mapped to a status code by the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// The status the server should answer with (`400` or `501`).
    pub status: u16,
    /// What was wrong.
    pub msg: String,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.msg)
    }
}

impl std::error::Error for HttpError {}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError {
        status: 400,
        msg: msg.into(),
    }
}

/// Reads one request from `stream`.
///
/// Returns `Ok(None)` on clean end-of-stream before any byte of a
/// request (the keep-alive peer hung up), `Err(Ok(HttpError))`-style
/// protocol failures as the inner `Result`, and transport failures as
/// `io::Error`.
///
/// # Errors
///
/// `io::Error` for transport failures (including read timeouts).
pub fn read_request<S: BufRead>(stream: &mut S) -> io::Result<Option<Result<Request, HttpError>>> {
    let mut line = String::new();
    if read_limited_line(stream, &mut line, MAX_HEAD)? == 0 {
        return Ok(None); // clean EOF between requests
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Some(Err(bad("malformed request line"))));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Some(Err(bad("unsupported HTTP version"))));
    }
    let method = method.to_string();
    let path = path.to_string();
    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        line.clear();
        if read_limited_line(stream, &mut line, MAX_HEAD)? == 0 {
            return Ok(Some(Err(bad("connection closed inside headers"))));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Ok(Some(Err(bad("header block too large"))));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(Some(Err(bad("malformed header"))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(Some(Err(HttpError {
            status: 501,
            msg: "transfer encodings are not supported".into(),
        })));
    }
    let mut body = Vec::new();
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
    {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(Some(Err(bad("invalid Content-Length"))));
        };
        if len > MAX_BODY {
            return Ok(Some(Err(HttpError {
                status: 413,
                msg: "body too large".into(),
            })));
        }
        body = vec![0u8; len];
        stream.read_exact(&mut body)?;
    }
    Ok(Some(Ok(Request {
        method,
        path,
        headers,
        body,
    })))
}

/// One request head parsed **in place** from a connection buffer: all
/// text is addressed as ranges into the scanned bytes, so the reactor's
/// hot path allocates nothing.
#[derive(Clone, Debug)]
pub struct Head {
    /// Byte range of the method verb within the scanned slice.
    pub method: std::ops::Range<usize>,
    /// Byte range of the request target within the scanned slice.
    pub path: std::ops::Range<usize>,
    /// Length of the head (request line + headers + blank line).
    pub head_len: usize,
    /// Declared `Content-Length` (0 when absent).
    pub body_len: usize,
    /// Whether the connection stays open after this exchange.
    pub keep_alive: bool,
    /// The trace id adopted from an `X-Bi-Trace` header (decimal u64),
    /// if the peer sent one — how a router's trace id survives the hop
    /// into a backend. Malformed values are ignored, not errors.
    pub trace_id: Option<u64>,
    /// The parent span id from an `X-Bi-Parent` header (decimal u64):
    /// the upstream span this request's root span nests under.
    pub parent_span: Option<u64>,
}

impl Head {
    /// Total wire length of the request: head plus body.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.head_len + self.body_len
    }
}

/// Incremental head parse over a (possibly partial) buffer: the
/// nonblocking server's entry point, fed by the connection state machine
/// as bytes arrive.
///
/// Returns `Ok(None)` when the head terminator has not arrived yet
/// (read more), `Ok(Some(head))` once the request line and headers are
/// complete (the body may still be in flight — compare
/// [`Head::total_len`] with the buffered length), and `Err` on protocol
/// violations mapped to response statuses, exactly like [`read_request`].
///
/// # Errors
///
/// `400` malformed line/header/length, `413` oversized declared body,
/// `431` head larger than the protocol cap, `501` transfer encodings.
pub fn parse_head(buf: &[u8]) -> Result<Option<Head>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(HttpError {
                status: 431,
                msg: "header block too large".into(),
            });
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD {
        return Err(HttpError {
            status: 431,
            msg: "header block too large".into(),
        });
    }
    let head = &buf[..head_len];
    let line_end = find_crlf(head).ok_or_else(|| bad("malformed request line"))?;
    let mut parts = split_ws(&head[..line_end]);
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("malformed request line"));
    };
    if parts.next().is_some() || !buf[version.clone()].starts_with(b"HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut body_len = 0usize;
    let mut keep_alive = true;
    let mut trace_id = None;
    let mut parent_span = None;
    let mut pos = line_end + 2;
    while pos < head_len - 2 {
        let rel_end = find_crlf(&head[pos..]).ok_or_else(|| bad("malformed header"))?;
        let line = &head[pos..pos + rel_end];
        pos += rel_end + 2;
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or_else(|| bad("malformed header"))?;
        let name = trim_ascii(&line[..colon]);
        let value = trim_ascii(&line[colon + 1..]);
        if name.eq_ignore_ascii_case(b"content-length") {
            let text = std::str::from_utf8(value).map_err(|_| bad("invalid Content-Length"))?;
            body_len = text.parse().map_err(|_| bad("invalid Content-Length"))?;
            if body_len > MAX_BODY {
                return Err(HttpError {
                    status: 413,
                    msg: "body too large".into(),
                });
            }
        } else if name.eq_ignore_ascii_case(b"connection") {
            keep_alive = !value.eq_ignore_ascii_case(b"close");
        } else if name.eq_ignore_ascii_case(b"x-bi-trace") {
            trace_id = parse_decimal_u64(value);
        } else if name.eq_ignore_ascii_case(b"x-bi-parent") {
            parent_span = parse_decimal_u64(value);
        } else if name.eq_ignore_ascii_case(b"transfer-encoding")
            && !value.eq_ignore_ascii_case(b"identity")
        {
            return Err(HttpError {
                status: 501,
                msg: "transfer encodings are not supported".into(),
            });
        }
    }
    Ok(Some(Head {
        method,
        path,
        head_len,
        body_len,
        keep_alive,
        trace_id,
        parent_span,
    }))
}

/// A decimal `u64` header value, or `None` when malformed — trace
/// headers are advisory, so garbage degrades to "untraced" rather than
/// rejecting the request.
fn parse_decimal_u64(value: &[u8]) -> Option<u64> {
    std::str::from_utf8(value).ok()?.parse().ok()
}

/// Index just past the `\r\n\r\n` terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Index of the first `\r\n` in `buf`.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Whitespace-separated token ranges of `line` (relative to the buffer
/// `line` was sliced from — which is why the caller passes a prefix
/// slice, keeping offsets absolute).
fn split_ws(line: &[u8]) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        while pos < line.len() && line[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos >= line.len() {
            return None;
        }
        let start = pos;
        while pos < line.len() && !line[pos].is_ascii_whitespace() {
            pos += 1;
        }
        Some(start..pos)
    })
}

/// `slice` without leading/trailing ASCII whitespace.
fn trim_ascii(slice: &[u8]) -> &[u8] {
    let start = slice
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(slice.len());
    let end = slice
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |i| i + 1);
    &slice[start..end]
}

/// `read_line` with a byte cap (a peer streaming an endless header line
/// must not exhaust memory).
fn read_limited_line<S: BufRead>(
    stream: &mut S,
    line: &mut String,
    max: usize,
) -> io::Result<usize> {
    let mut taken = stream.take(max as u64 + 1);
    let n = taken.read_line(line)?;
    if n > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "line exceeds the protocol limit",
        ));
    }
    Ok(n)
}

/// An outgoing HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
    /// The `Content-Type` (the service always speaks JSON).
    pub content_type: &'static str,
    /// Extra `(name, value)` headers (e.g. `X-Cache`).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status and body.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// Adds an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Writes the response; `keep_alive` controls the `Connection`
    /// header.
    ///
    /// # Errors
    ///
    /// Returns transport failures.
    pub fn write<S: Write>(&self, stream: &mut S, keep_alive: bool) -> io::Result<()> {
        let mut head = Vec::with_capacity(128);
        let extra: Vec<(&str, &str)> = self
            .extra_headers
            .iter()
            .map(|(k, v)| (*k, v.as_str()))
            .collect();
        write_head_into(
            &mut head,
            self.status,
            self.content_type,
            self.body.len(),
            keep_alive,
            &extra,
        );
        stream.write_all(&head)?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Serializes a response head into `out` (cleared first) — the one head
/// writer both [`Response::write`] and the reactor's reusable
/// per-connection head buffer go through.
pub fn write_head_into(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra: &[(&str, &str)],
) {
    use std::io::Write as _;
    out.clear();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason_phrase(status),
        content_type,
        content_length,
        connection,
    )
    .expect("writing to a Vec cannot fail");
    for (name, value) in extra {
        write!(out, "{name}: {value}\r\n").expect("writing to a Vec cannot fail");
    }
    out.extend_from_slice(b"\r\n");
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one client request (used by the load generator and tests).
///
/// # Errors
///
/// Returns transport failures.
pub fn write_request<S: Write>(
    stream: &mut S,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_request_with(stream, method, path, body, keep_alive, &[])
}

/// [`write_request`] with extra `(name, value)` headers — how trace
/// context (`X-Bi-Trace`, `X-Bi-Parent`) rides along a forwarded
/// request without the router reserializing anything.
///
/// # Errors
///
/// Returns transport failures.
pub fn write_request_with<S: Write>(
    stream: &mut S,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, String)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bi-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len(),
    );
    for (name, value) in extra {
        use std::fmt::Write as _;
        write!(head, "{name}: {value}\r\n").expect("writing to a String cannot fail");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed client-side view of a response: status, headers, body.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one response (used by the load generator and tests).
///
/// # Errors
///
/// Returns `io::ErrorKind::InvalidData` on protocol violations and
/// transport failures as-is.
pub fn read_response<S: BufRead>(stream: &mut S) -> io::Result<ClientResponse> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    if read_limited_line(stream, &mut line, MAX_HEAD)? == 0 {
        return Err(invalid("connection closed before the status line"));
    }
    let mut parts = line.split_whitespace();
    let status = parts
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        line.clear();
        if read_limited_line(stream, &mut line, MAX_HEAD)? == 0 {
            return Err(invalid("connection closed inside headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .ok_or_else(|| invalid("response without Content-Length"))?;
    if len > MAX_BODY {
        return Err(invalid("response body too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// A keep-alive HTTP/1.1 client over one TCP connection: the shared
/// transport of the load generator, the router's upstream pools, and the
/// socket-level test suites.
///
/// One request is in flight at a time ([`HttpClient::request`] writes,
/// then blocks on the response). A transport error poisons the
/// connection — drop the client and connect a fresh one.
#[derive(Debug)]
pub struct HttpClient {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (blocking, OS default timeout).
    ///
    /// # Errors
    ///
    /// Propagates resolution and connect failures.
    pub fn connect(addr: &str) -> io::Result<HttpClient> {
        Self::from_stream(std::net::TcpStream::connect(addr)?)
    }

    /// Connects to `addr` with a connect deadline — the router's probe
    /// and forwarding path must not hang on a dead backend.
    ///
    /// # Errors
    ///
    /// Propagates resolution failures, connect failures, and the timeout.
    pub fn connect_timeout(addr: &str, timeout: std::time::Duration) -> io::Result<HttpClient> {
        use std::net::ToSocketAddrs;
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        Self::from_stream(std::net::TcpStream::connect_timeout(&resolved, timeout)?)
    }

    /// Wraps an already connected stream (nodelay is enabled here).
    ///
    /// # Errors
    ///
    /// Propagates socket option and clone failures.
    pub fn from_stream(stream: std::net::TcpStream) -> io::Result<HttpClient> {
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: std::io::BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Applies a read deadline to the connection (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one keep-alive request and blocks for the response.
    ///
    /// # Errors
    ///
    /// Returns transport failures (the connection should be discarded).
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        write_request(&mut self.writer, method, path, body, true)?;
        read_response(&mut self.reader)
    }

    /// [`HttpClient::request`] with extra headers (trace propagation).
    ///
    /// # Errors
    ///
    /// Returns transport failures (the connection should be discarded).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        extra: &[(&str, String)],
    ) -> io::Result<ClientResponse> {
        write_request_with(&mut self.writer, method, path, body, true, extra)?;
        read_response(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/solve", b"{\"x\":1}", true).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"{\"x\":1}");
        assert!(req.keep_alive());
        assert_eq!(req.header("content-type"), Some("application/json"));
    }

    #[test]
    fn connection_close_is_honored() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/healthz", b"", false).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_between_requests_is_clean() {
        let wire: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(wire)).unwrap().is_none());
    }

    #[test]
    fn responses_round_trip() {
        let mut wire = Vec::new();
        Response::json(200, br#"{"ok":true}"#.to_vec())
            .with_header("X-Cache", "hit")
            .write(&mut wire, true)
            .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, br#"{"ok":true}"#);
        assert_eq!(resp.header("x-cache"), Some("hit"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn malformed_requests_report_protocol_errors() {
        let cases: [(&[u8], u16); 4] = [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 400),
            (b"POST /solve HTTP/1.1\r\nContent-Length: nine\r\n\r\n", 400),
            (
                b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (wire, status) in cases {
            let err = read_request(&mut BufReader::new(wire))
                .unwrap()
                .unwrap()
                .unwrap_err();
            assert_eq!(
                err.status,
                status,
                "wire {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn oversized_bodies_are_rejected_cheaply() {
        let wire = format!(
            "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut BufReader::new(wire.as_bytes()))
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn incremental_parse_handles_partial_heads_byte_by_byte() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/solve", b"{\"x\":1}", true).unwrap();
        // Every strict prefix that lacks the head terminator is
        // Incomplete, never an error.
        let full = parse_head(&wire).unwrap().expect("complete head");
        for cut in 0..full.head_len {
            assert!(
                parse_head(&wire[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        assert_eq!(&wire[full.method.clone()], b"POST");
        assert_eq!(&wire[full.path.clone()], b"/solve");
        assert_eq!(full.body_len, 7);
        assert!(full.keep_alive);
        assert_eq!(full.total_len(), wire.len());
        // The body slice is addressable once total_len bytes arrived.
        assert_eq!(&wire[full.head_len..full.total_len()], b"{\"x\":1}");
    }

    #[test]
    fn incremental_parse_matches_the_blocking_parser_on_errors() {
        let cases: [(&[u8], u16); 5] = [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 400),
            (b"POST /solve HTTP/1.1\r\nContent-Length: nine\r\n\r\n", 400),
            (
                b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (b"POST / HTTP/1.1\r\nno-colon-header\r\n\r\n", 400),
        ];
        for (wire, status) in cases {
            let err = parse_head(wire).unwrap_err();
            assert_eq!(
                err.status,
                status,
                "wire {:?}",
                String::from_utf8_lossy(wire)
            );
        }
        let huge = format!(
            "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse_head(huge.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn incremental_parse_caps_unterminated_heads() {
        // A peer streaming endless header bytes without the terminator
        // must be rejected once the cap is crossed, not buffered forever.
        let mut wire = b"GET / HTTP/1.1\r\nX-Spam: ".to_vec();
        wire.resize(MAX_HEAD + 16, b'a');
        assert_eq!(parse_head(&wire).unwrap_err().status, 431);
        // Under the cap it is just incomplete.
        assert!(parse_head(&wire[..MAX_HEAD - 1]).unwrap().is_none());
    }

    #[test]
    fn incremental_parse_honors_connection_close() {
        let wire = b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let head = parse_head(wire).unwrap().unwrap();
        assert!(!head.keep_alive);
        assert_eq!(head.body_len, 0);
        assert_eq!(head.trace_id, None);
        assert_eq!(head.parent_span, None);
    }

    #[test]
    fn incremental_parse_adopts_trace_headers() {
        let wire =
            b"POST /solve HTTP/1.1\r\nX-Bi-Trace: 424242\r\nx-bi-parent: 7\r\nContent-Length: 0\r\n\r\n";
        let head = parse_head(wire).unwrap().unwrap();
        assert_eq!(head.trace_id, Some(424_242));
        assert_eq!(head.parent_span, Some(7));
        // Malformed values degrade to untraced, never to an error.
        let garbage = b"POST /solve HTTP/1.1\r\nX-Bi-Trace: zebra\r\nContent-Length: 0\r\n\r\n";
        let head = parse_head(garbage).unwrap().unwrap();
        assert_eq!(head.trace_id, None);
    }

    #[test]
    fn extra_request_headers_survive_the_round_trip() {
        let mut wire = Vec::new();
        write_request_with(
            &mut wire,
            "POST",
            "/solve",
            b"{}",
            true,
            &[
                ("X-Bi-Trace", "99".to_string()),
                ("X-Bi-Parent", "3".to_string()),
            ],
        )
        .unwrap();
        // Visible to the blocking parser as ordinary headers…
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(req.header("x-bi-trace"), Some("99"));
        assert_eq!(req.header("x-bi-parent"), Some("3"));
        // …and to the incremental parser as adopted trace context.
        let head = parse_head(&wire).unwrap().unwrap();
        assert_eq!(head.trace_id, Some(99));
        assert_eq!(head.parent_span, Some(3));
        // Without extras the writers emit byte-identical requests.
        let mut plain = Vec::new();
        let mut with_empty = Vec::new();
        write_request(&mut plain, "GET", "/healthz", b"", true).unwrap();
        write_request_with(&mut with_empty, "GET", "/healthz", b"", true, &[]).unwrap();
        assert_eq!(plain, with_empty);
    }

    #[test]
    fn head_writer_matches_response_write() {
        let mut via_response = Vec::new();
        Response::json(200, br#"{"ok":true}"#.to_vec())
            .with_header("X-Cache", "hit")
            .write(&mut via_response, true)
            .unwrap();
        let mut head = Vec::new();
        write_head_into(
            &mut head,
            200,
            "application/json",
            11,
            true,
            &[("X-Cache", "hit")],
        );
        head.extend_from_slice(br#"{"ok":true}"#);
        assert_eq!(via_response, head);
    }

    #[test]
    fn two_keep_alive_requests_parse_in_sequence() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/metrics", b"", true).unwrap();
        write_request(&mut wire, "GET", "/healthz", b"", true).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        let a = read_request(&mut reader).unwrap().unwrap().unwrap();
        let b = read_request(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(a.path, "/metrics");
        assert_eq!(b.path, "/healthz");
        assert!(read_request(&mut reader).unwrap().is_none());
    }
}
