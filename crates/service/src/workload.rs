//! Seeded random-game workloads for the load generator, benches, and
//! end-to-end tests.
//!
//! A workload is a deterministic function of `(seed, size)`: a mix of
//! matrix-form Bayesian potential games (three shapes, heavier strategy
//! spaces than the unit-test games so a cold solve meaningfully
//! outweighs HTTP overhead) and Bayesian NCS games (parallel-route
//! graphs with randomized costs and an independent travel prior).
//! Replaying the same seed reproduces the same request bytes, which is
//! what makes `BENCH_service.json` runs comparable across PRs.

use bi_core::random_games::random_bayesian_potential_game;
use bi_graph::{Direction, Graph};
use bi_ncs::{BayesianNcsGame, Prior};
use bi_util::rng::{derive_seed, seeded};
use rand::Rng;

use crate::service::GameSpec;

/// A deterministic matrix-form workload game. The shape cycles with the
/// seed so one workload exercises several strategy-space sizes
/// (16807–20736 profiles — big enough that a cold solve dominates
/// per-request transport cost, which is what makes the cache speedup
/// measurable, while wire bodies stay small: body size grows with
/// `actions²·states`, solve cost with `actions^slots`).
#[must_use]
pub fn matrix_game(seed: u64) -> GameSpec {
    let (types, actions, support): (&[usize], &[usize], usize) = match seed % 3 {
        0 => (&[2, 2], &[12, 12], 3),
        1 => (&[3, 2], &[7, 7], 3),
        _ => (&[2, 2], &[12, 12], 4),
    };
    let (game, _) =
        random_bayesian_potential_game(types, actions, support, derive_seed(seed, "matrix"));
    GameSpec::Matrix(game)
}

/// A deterministic NCS workload game: `routes` parallel two-hop routes
/// plus a direct edge, randomized costs, agent 0 always traveling and
/// agent 1 traveling with probability 1/2 (the diamond family of the
/// paper, scaled).
#[must_use]
pub fn ncs_game(seed: u64) -> GameSpec {
    let mut rng = seeded(derive_seed(seed, "ncs"));
    let routes = 5 + (seed % 3) as usize; // 5..=7 parallel routes
    let mut g = Graph::new(Direction::Directed);
    let s = g.add_node();
    let t = g.add_node();
    for _ in 0..routes {
        let mid = g.add_node();
        g.add_edge(s, mid, rng.random_range(0.5..2.0));
        g.add_edge(mid, t, rng.random_range(0.5..2.0));
    }
    g.add_edge(s, t, rng.random_range(2.0..4.0));
    let p = rng.random_range(0.3..0.7);
    let prior = Prior::independent(vec![
        vec![((s, t), 1.0)],
        vec![((s, t), p), ((s, s), 1.0 - p)],
    ]);
    GameSpec::Ncs(BayesianNcsGame::new(g, prior).expect("workload graphs are feasible"))
}

/// A deterministic *light* matrix game: 2×2 actions, 2×2 types, tiny
/// enough that generating and solving 100k of them stays in seconds.
/// Cluster benches use this profile so the unique-key count (which is
/// what exercises routing and the disk tier) can be pushed far past
/// what the heavyweight mixed profile affords.
#[must_use]
pub fn light_game(seed: u64) -> GameSpec {
    let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, derive_seed(seed, "light"));
    GameSpec::Matrix(game)
}

/// The light workload: `size` distinct tiny matrix games, fully
/// determined by `seed`. Every key is unique, so a replay of the same
/// seed is an all-hits pass and a fresh seed is an all-misses pass.
#[must_use]
pub fn light_workload(seed: u64, size: usize) -> Vec<GameSpec> {
    (0..size as u64)
        .map(|i| light_game(derive_seed(seed, &format!("light{i}"))))
        .collect()
}

/// The standard mixed workload: `size` distinct games, two thirds
/// matrix-form and one third NCS, fully determined by `seed`.
#[must_use]
pub fn mixed_workload(seed: u64, size: usize) -> Vec<GameSpec> {
    (0..size as u64)
        .map(|i| {
            let game_seed = derive_seed(seed, &format!("game{i}"));
            if i % 3 == 2 {
                ncs_game(game_seed)
            } else {
                matrix_game(game_seed)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_util::Encode;

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = mixed_workload(7, 6);
        let b = mixed_workload(7, 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.canonical_bytes(), y.canonical_bytes());
        }
        let c = mixed_workload(8, 6);
        assert_ne!(
            a[0].canonical_bytes(),
            c[0].canonical_bytes(),
            "different seeds give different games"
        );
    }

    #[test]
    fn workloads_mix_representations() {
        let games = mixed_workload(1, 9);
        let ncs = games
            .iter()
            .filter(|g| matches!(g, GameSpec::Ncs(_)))
            .count();
        assert_eq!(ncs, 3);
        assert_eq!(games.len(), 9);
    }

    #[test]
    fn workload_games_are_solvable() {
        use bi_core::solve::Solver;
        for game in mixed_workload(3, 3) {
            let report = match &game {
                GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
                GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
            };
            report.measures.verify_chain().unwrap();
        }
    }
}
