//! The transport-independent service core: typed requests, the
//! content-addressed cache keying, and the solve/batch handlers the HTTP
//! server (and any future transport) routes into.
//!
//! Request wire forms:
//!
//! * `POST /solve` — `{"game": {"kind": "matrix"|"ncs", "game": …},
//!   "config": SolverConfig}` (`config` optional, defaults to
//!   [`SolverConfig::default`]); the response body is the canonical
//!   [`SolveReport`] JSON — byte-identical to encoding an in-process
//!   [`Solver::solve`] result.
//! * `POST /solve_batch` — `{"games": [GameSpec, …], "config": …}`: one
//!   shared config, many games (e.g. a family of priors over one
//!   underlying graph). Uncached games go through
//!   [`Solver::solve_many`], so the batch parallelizes across games; the
//!   response is `{"reports": [{"report": …} | {"error": …}, …]}`,
//!   aligned by index.
//!
//! The cache key is the canonical bytes of `{game, backend, budget,
//! symmetry}` — the thread count is deliberately **excluded** (sweeps are
//! bit-for-bit identical across thread counts, so results are shareable
//! across differently-threaded clients), but the symmetry mode is
//! **included**: orbit-reduced reports carry different `orbit` stats and
//! `profiles_evaluated` counts than full sweeps, so the bodies differ.

use std::sync::Arc;

use bi_core::solve::{SolveError, SolveReport, Solver, SolverConfig};
use bi_core::BayesianGame;
use bi_ncs::BayesianNcsGame;
use bi_obs::{Recorder, Stage, TraceCtx};
use bi_util::json::field;
use bi_util::{CodecError, Decode, Encode, Json};

use crate::cache::{CacheConfig, CacheStats, ShardedLru};
use crate::metrics::ServiceMetrics;
use crate::persist::{DiskTier, DiskTierStats};

/// A solvable game in either representation the solver serves.
#[derive(Clone, Debug)]
pub enum GameSpec {
    /// A matrix-form Bayesian game (`bi-core`).
    Matrix(BayesianGame),
    /// A Bayesian network cost-sharing game (`bi-ncs`).
    Ncs(BayesianNcsGame),
}

impl Encode for GameSpec {
    fn encode(&self) -> Json {
        let (kind, game) = match self {
            GameSpec::Matrix(g) => ("matrix", g.encode()),
            GameSpec::Ncs(g) => ("ncs", g.encode()),
        };
        Json::Obj(vec![
            ("kind".into(), Json::str(kind)),
            ("game".into(), game),
        ])
    }
}

impl Decode for GameSpec {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        match bi_util::json::field_str(v, "kind")? {
            "matrix" => Ok(GameSpec::Matrix(
                BayesianGame::decode(field(v, "game")?).map_err(|e| e.context("game"))?,
            )),
            "ncs" => Ok(GameSpec::Ncs(
                BayesianNcsGame::decode(field(v, "game")?).map_err(|e| e.context("game"))?,
            )),
            other => Err(CodecError::new(format!("unknown game kind `{other}`"))),
        }
    }
}

/// One `POST /solve` request: a game plus the solver configuration.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The game to solve.
    pub game: GameSpec,
    /// How to solve it.
    pub config: SolverConfig,
}

impl Encode for SolveRequest {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("game".into(), self.game.encode()),
            ("config".into(), self.config.encode()),
        ])
    }
}

impl Decode for SolveRequest {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let game = GameSpec::decode(field(v, "game")?).map_err(|e| e.context("game"))?;
        let config = match v.get("config") {
            None | Some(Json::Null) => SolverConfig::default(),
            Some(c) => SolverConfig::decode(c).map_err(|e| e.context("config"))?,
        };
        Ok(SolveRequest { game, config })
    }
}

/// One `POST /solve_batch` request: many games, one shared configuration.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// The games to solve, answered in order.
    pub games: Vec<GameSpec>,
    /// The shared solver configuration.
    pub config: SolverConfig,
}

impl Encode for BatchRequest {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            (
                "games".into(),
                Json::Arr(self.games.iter().map(Encode::encode).collect()),
            ),
            ("config".into(), self.config.encode()),
        ])
    }
}

impl Decode for BatchRequest {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let games = bi_util::json::field_arr(v, "games")?
            .iter()
            .enumerate()
            .map(|(i, g)| GameSpec::decode(g).map_err(|e| e.context(&format!("games[{i}]"))))
            .collect::<Result<Vec<_>, _>>()?;
        let config = match v.get("config") {
            None | Some(Json::Null) => SolverConfig::default(),
            Some(c) => SolverConfig::decode(c).map_err(|e| e.context("config"))?,
        };
        Ok(BatchRequest { games, config })
    }
}

/// The result of routing one solve through the cache.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The canonical [`SolveReport`] JSON bytes (shared with the cache).
    pub body: Arc<[u8]>,
    /// Whether the cache answered (no engine work happened).
    pub cache_hit: bool,
}

/// A `POST /solve` answer the service produced without blocking the
/// transport: either a cache hit served inline or a completed solve.
#[derive(Clone, Debug)]
pub struct ServedResponse {
    /// The canonical [`SolveReport`] JSON bytes (shared with the cache).
    pub body: Arc<[u8]>,
    /// Whether the cache answered (no engine work happened).
    pub cache_hit: bool,
    /// Whether the answer came straight off the raw-byte index: the
    /// request body was already canonical and byte-identical to a prior
    /// one, so no JSON value tree was built at any point.
    pub zero_copy: bool,
}

/// A decoded cache miss, ready to cross into the solver pool. Produced by
/// [`SolveService::try_serve_fast`], consumed by
/// [`SolveService::complete_solve`] — the decode work happens exactly
/// once, on the transport thread, and only the solve itself moves.
#[derive(Debug)]
pub struct PreparedSolve {
    request: SolveRequest,
    key: Vec<u8>,
    /// The raw body bytes when they were canonical — inserted into the
    /// raw index on success so the next byte-identical body is zero-copy.
    raw: Option<Vec<u8>>,
    /// The trace context this miss was prepared under; the solver thread
    /// records its `solve`/`encode` spans into the same trace.
    ctx: TraceCtx,
}

impl PreparedSolve {
    /// The decoded request (for transports that need to inspect it).
    #[must_use]
    pub fn request(&self) -> &SolveRequest {
        &self.request
    }

    /// The trace context the miss carries into the solver pool.
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

/// What [`SolveService::try_serve_fast`] decided for one `POST /solve`
/// body.
#[derive(Debug)]
pub enum FastOutcome {
    /// Answered from cache — the transport can write the bytes
    /// immediately without involving the solver pool.
    Hit(ServedResponse),
    /// A cache miss: hand the prepared solve to a solver thread and
    /// finish with [`SolveService::complete_solve`].
    Miss(Box<PreparedSolve>),
}

/// The serving core: a solve cache plus service counters, shared by all
/// worker threads.
///
/// Two caches back the service. The primary cache is keyed by the
/// content address ([`SolveService::cache_key`]) and is what `solve` /
/// `solve_batch` consult. The **raw index** maps exact request-body
/// bytes (only bodies [`bi_util::json::canon_check`] accepts) to the
/// same shared response `Arc`s, giving the transport a zero-parse hit
/// path: byte-identical body ⟹ identical parse ⟹ identical result, so
/// exact-byte keying is correct regardless of how conservatively the
/// canonicality check classifies a body.
pub struct SolveService {
    cache: ShardedLru<Arc<[u8]>>,
    /// Exact request-body bytes → response bytes, canonical bodies only.
    raw_index: ShardedLru<Arc<[u8]>>,
    /// The second tier: LRU misses are looked up here (and promoted on a
    /// hit); every computed report is appended behind the hot path. A
    /// restarted node answers its old key space warm.
    disk: Option<DiskTier>,
    metrics: ServiceMetrics,
    /// The span flight recorder every stage of this node records into
    /// (`GET /debug/trace` dumps it). The router shares its recorder
    /// with its fallback service so local-serve spans land in the same
    /// dump as routing spans.
    recorder: Arc<Recorder>,
}

impl SolveService {
    /// Creates a service with the given cache sizing (the raw-byte index
    /// is sized identically) and no disk tier.
    #[must_use]
    pub fn new(cache: CacheConfig) -> Self {
        Self::with_disk(cache, None)
    }

    /// [`SolveService::new`] with an optional disk-backed second tier.
    #[must_use]
    pub fn with_disk(cache: CacheConfig, disk: Option<DiskTier>) -> Self {
        Self::with_recorder(cache, disk, Arc::new(Recorder::default()))
    }

    /// [`SolveService::with_disk`] recording spans into a caller-owned
    /// flight recorder (how the router and its local fallback service
    /// share one `/debug/trace` dump).
    #[must_use]
    pub fn with_recorder(
        cache: CacheConfig,
        disk: Option<DiskTier>,
        recorder: Arc<Recorder>,
    ) -> Self {
        SolveService {
            cache: ShardedLru::new(cache),
            raw_index: ShardedLru::new(cache),
            disk,
            metrics: ServiceMetrics::default(),
            recorder,
        }
    }

    /// The disk tier's snapshot (`None` when the node runs memory-only).
    #[must_use]
    pub fn disk_stats(&self) -> Option<DiskTierStats> {
        self.disk.as_ref().map(DiskTier::stats)
    }

    /// Blocks until every disk append queued so far is durable — orderly
    /// shutdown and the restart tests; the serving path never calls this.
    pub fn sync_disk(&self) {
        if let Some(disk) = &self.disk {
            disk.sync();
        }
    }

    /// Looks `key` up in the disk tier, promoting a hit into the LRU so
    /// the next lookup stays in memory. A hit records the promotion as
    /// a `disk_promote` stage (read + decompress + LRU insert).
    fn disk_lookup(&self, key: &[u8], ctx: TraceCtx) -> Option<Arc<[u8]>> {
        let disk = self.disk.as_ref()?;
        let t0 = self.recorder.now_ns();
        let bytes = disk.get(key)?;
        let body: Arc<[u8]> = Arc::from(bytes);
        self.cache.insert(key, Arc::clone(&body));
        self.finish_stage(ctx, Stage::DiskPromote, t0);
        Some(body)
    }

    /// Closes one pipeline stage: feeds the per-stage histogram always,
    /// and records a span when the request is traced.
    fn finish_stage(&self, ctx: TraceCtx, stage: Stage, t0: u64) {
        let t1 = self.recorder.now_ns();
        self.metrics
            .stages
            .record(stage, t1.saturating_sub(t0) / 1_000);
        if ctx.active() {
            self.recorder
                .record(ctx.trace_id, ctx.parent, stage, t0, t1);
        }
    }

    /// Closes a transport-side `encode` stage opened at `t0` (the hit
    /// path's response staging): histogram always, a span when traced.
    pub fn finish_encode_stage(&self, ctx: TraceCtx, t0: u64) {
        self.finish_stage(ctx, Stage::Encode, t0);
    }

    /// The span flight recorder this node records into.
    #[must_use]
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The `GET /debug/trace` document.
    #[must_use]
    pub fn trace_json(&self) -> Json {
        self.recorder.to_json()
    }

    /// The service counters (the server records statuses here too).
    #[must_use]
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The cache effectiveness snapshot.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The `GET /metrics` document.
    #[must_use]
    pub fn metrics_json(&self) -> Json {
        self.metrics.to_json(self.cache.stats(), self.disk_stats())
    }

    /// The content address of a request: canonical bytes of
    /// `{game, backend, budget, symmetry}` (threads excluded — they never
    /// change results; the symmetry mode is included because it changes
    /// the report's `orbit` stats and `profiles_evaluated`).
    #[must_use]
    pub fn cache_key(game: &GameSpec, config: &SolverConfig) -> Vec<u8> {
        Json::Obj(vec![
            ("game".into(), game.encode()),
            ("backend".into(), config.backend.encode()),
            ("budget".into(), config.budget.encode()),
            ("symmetry".into(), config.symmetry.encode()),
        ])
        .canonical_bytes()
    }

    /// Solves one request through the cache. On a miss the report is
    /// computed by [`Solver::solve`], encoded canonically, and inserted;
    /// on a hit the engine is never invoked.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`SolveError`] (never cached).
    pub fn solve(&self, request: &SolveRequest) -> Result<SolveOutcome, SolveError> {
        let key = Self::cache_key(&request.game, &request.config);
        if let Some(body) = self.cache.get(&key) {
            return Ok(SolveOutcome {
                body,
                cache_hit: true,
            });
        }
        if let Some(body) = self.disk_lookup(&key, TraceCtx::NONE) {
            return Ok(SolveOutcome {
                body,
                cache_hit: true,
            });
        }
        let solver = Solver::from_config(request.config);
        let started = std::time::Instant::now();
        let result = match &request.game {
            GameSpec::Matrix(g) => solver.solve(g),
            GameSpec::Ncs(g) => solver.solve(g),
        };
        // Recorded before the `?` so failed invocations count too, same
        // as the batch path: the histogram tracks engine invocations, not
        // successes.
        self.record_solve_time(started);
        let report = result?;
        self.record_computed(&report);
        Ok(SolveOutcome {
            body: self.insert_report(key, &report),
            cache_hit: false,
        })
    }

    /// The transport fast path for one `POST /solve` body. Canonical
    /// bodies are first looked up in the raw-byte index — a hit there is
    /// served without building any JSON value tree. Otherwise the body is
    /// decoded once, the primary cache consulted, and on a miss the
    /// decoded request comes back as a [`PreparedSolve`] for the solver
    /// pool; the transport never decodes twice.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] when the body is not valid UTF-8 or
    /// fails to decode as a solve request.
    pub fn try_serve_fast(&self, body: &[u8], ctx: TraceCtx) -> Result<FastOutcome, CodecError> {
        // The whole lookup — raw index, decode, LRU, disk probe — is the
        // `cache` stage of the request; the disk tier additionally
        // records a nested `disk_promote` on a second-tier hit.
        let t0 = self.recorder.now_ns();
        let canonical = bi_util::json::canon_check(body);
        if canonical {
            if let Some(cached) = self.raw_index.get(body) {
                self.metrics
                    .zero_copy_hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.finish_stage(ctx, Stage::Cache, t0);
                return Ok(FastOutcome::Hit(ServedResponse {
                    body: cached,
                    cache_hit: true,
                    zero_copy: true,
                }));
            }
        }
        let text = std::str::from_utf8(body)
            .map_err(|_| CodecError::new("request body is not valid UTF-8"))?;
        let request = SolveRequest::decode_str(text)?;
        let key = Self::cache_key(&request.game, &request.config);
        let raw = canonical.then(|| body.to_vec());
        let cached = self.cache.get(&key).or_else(|| self.disk_lookup(&key, ctx));
        if let Some(cached) = cached {
            self.metrics
                .parsed_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Warm the raw index so the next byte-identical body skips
            // the parse entirely.
            if let Some(raw) = &raw {
                self.raw_index.insert(raw, Arc::clone(&cached));
            }
            self.finish_stage(ctx, Stage::Cache, t0);
            return Ok(FastOutcome::Hit(ServedResponse {
                body: cached,
                cache_hit: true,
                zero_copy: false,
            }));
        }
        self.finish_stage(ctx, Stage::Cache, t0);
        Ok(FastOutcome::Miss(Box::new(PreparedSolve {
            request,
            key,
            raw,
            ctx,
        })))
    }

    /// Finishes a [`PreparedSolve`] on a solver thread: runs the engine,
    /// populates both caches, and returns the response bytes.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`SolveError`] (never cached).
    pub fn complete_solve(&self, prepared: PreparedSolve) -> Result<ServedResponse, SolveError> {
        let PreparedSolve {
            request,
            key,
            raw,
            ctx,
        } = prepared;
        let solver = Solver::from_config(request.config);
        let t_solve = self.recorder.now_ns();
        let started = std::time::Instant::now();
        let result = match &request.game {
            GameSpec::Matrix(g) => solver.solve(g),
            GameSpec::Ncs(g) => solver.solve(g),
        };
        self.record_solve_time(started);
        if ctx.active() {
            let t1 = self.recorder.now_ns();
            self.recorder
                .record(ctx.trace_id, ctx.parent, Stage::Solve, t_solve, t1);
        }
        let report = result?;
        self.record_computed(&report);
        let t_encode = self.recorder.now_ns();
        let body = self.insert_report(key, &report);
        if let Some(raw) = &raw {
            self.raw_index.insert(raw, Arc::clone(&body));
        }
        self.finish_stage(ctx, Stage::Encode, t_encode);
        Ok(ServedResponse {
            body,
            cache_hit: false,
            zero_copy: false,
        })
    }

    /// Solves a batch: answers cached games immediately, routes the
    /// misses of each representation through one [`Solver::solve_many`]
    /// call (games parallelize across the solver's threads), and returns
    /// per-game results aligned with the input order.
    pub fn solve_batch(&self, batch: &BatchRequest) -> Vec<Result<SolveOutcome, SolveError>> {
        let solver = Solver::from_config(batch.config);
        let mut results: Vec<Option<Result<SolveOutcome, SolveError>>> =
            batch.games.iter().map(|_| None).collect();
        let mut matrix_misses: Vec<(usize, Vec<u8>, &BayesianGame)> = Vec::new();
        let mut ncs_misses: Vec<(usize, Vec<u8>, &BayesianNcsGame)> = Vec::new();
        for (i, game) in batch.games.iter().enumerate() {
            let key = Self::cache_key(game, &batch.config);
            if let Some(body) = self
                .cache
                .get(&key)
                .or_else(|| self.disk_lookup(&key, TraceCtx::NONE))
            {
                results[i] = Some(Ok(SolveOutcome {
                    body,
                    cache_hit: true,
                }));
            } else {
                match game {
                    GameSpec::Matrix(g) => matrix_misses.push((i, key, g)),
                    GameSpec::Ncs(g) => ncs_misses.push((i, key, g)),
                }
            }
        }
        let matrix_refs: Vec<&BayesianGame> = matrix_misses.iter().map(|(_, _, g)| *g).collect();
        if !matrix_refs.is_empty() {
            let started = std::time::Instant::now();
            let matrix_results = solver.solve_many(&matrix_refs);
            self.record_solve_time(started);
            for ((i, key, _), result) in matrix_misses.into_iter().zip(matrix_results) {
                results[i] = Some(self.finish_miss(key, result));
            }
        }
        let ncs_refs: Vec<&BayesianNcsGame> = ncs_misses.iter().map(|(_, _, g)| *g).collect();
        if !ncs_refs.is_empty() {
            let started = std::time::Instant::now();
            let ncs_results = solver.solve_many(&ncs_refs);
            self.record_solve_time(started);
            for ((i, key, _), result) in ncs_misses.into_iter().zip(ncs_results) {
                results[i] = Some(self.finish_miss(key, result));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every game is either a hit or a routed miss"))
            .collect()
    }

    /// Feeds one engine invocation's wall-clock into the cold-path
    /// histogram (`solve_us` in `GET /metrics`) and the `solve` stage
    /// histogram.
    fn record_solve_time(&self, started: std::time::Instant) {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.solve_us.record(micros);
        self.metrics.stages.record(Stage::Solve, micros);
    }

    /// Bumps the per-solve counters for a freshly computed report,
    /// including the orbit-reduction counters when the sweep was
    /// symmetry-reduced.
    fn record_computed(&self, report: &SolveReport) {
        self.metrics
            .solves_computed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(orbit) = &report.orbit {
            self.metrics
                .record_orbit_sweep(orbit.orbits_evaluated, orbit.profiles_represented);
        }
    }

    fn finish_miss(
        &self,
        key: Vec<u8>,
        result: Result<SolveReport, SolveError>,
    ) -> Result<SolveOutcome, SolveError> {
        let report = result?;
        self.record_computed(&report);
        Ok(SolveOutcome {
            body: self.insert_report(key, &report),
            cache_hit: false,
        })
    }

    /// Installs a peer-shipped response without solving — the handler
    /// behind `POST /cache_put`, which a router uses for replication
    /// write-through and read-repair. The embedded solve request is
    /// decoded only to recompute the content address; the response
    /// bytes are stored verbatim, so a repaired node serves
    /// byte-identical answers to the node that solved them.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] when the embedded request is not a
    /// valid solve request (the response bytes are never validated —
    /// they are already canonical output of a peer's solve).
    pub fn cache_put(&self, request_body: &[u8], response_body: &[u8]) -> Result<(), CodecError> {
        let text = std::str::from_utf8(request_body)
            .map_err(|_| CodecError::new("cache_put request bytes are not valid UTF-8"))?;
        let request = SolveRequest::decode_str(text)?;
        let key = Self::cache_key(&request.game, &request.config);
        let body: Arc<[u8]> = Arc::from(response_body.to_vec());
        self.cache.insert(&key, Arc::clone(&body));
        if bi_util::json::canon_check(request_body) {
            // Canonical request bytes warm the zero-copy index too, so a
            // repaired node's next hit skips the parse entirely.
            self.raw_index.insert(request_body, Arc::clone(&body));
        }
        if let Some(disk) = &self.disk {
            disk.append_shared(&key, body);
        }
        self.metrics
            .cache_puts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn insert_report(&self, key: Vec<u8>, report: &SolveReport) -> Arc<[u8]> {
        let body: Arc<[u8]> = Arc::from(report.canonical_bytes());
        self.cache.insert(&key, Arc::clone(&body));
        if let Some(disk) = &self.disk {
            // Write-behind: the append is queued, never blocking a
            // solver or transport thread.
            disk.append_shared(&key, Arc::clone(&body));
        }
        body
    }
}

/// A JSON error body: `{"error": "..."}`.
#[must_use]
pub fn error_body(msg: &str) -> Vec<u8> {
    Json::Obj(vec![("error".into(), Json::str(msg))])
        .canonical_string()
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_core::random_games::random_bayesian_potential_game;
    use bi_core::solve::Backend;
    use bi_graph::{Direction, Graph};
    use bi_ncs::Prior;

    fn matrix_game(seed: u64) -> GameSpec {
        GameSpec::Matrix(random_bayesian_potential_game(&[2, 2], &[2, 2], 2, seed).0)
    }

    fn ncs_game() -> GameSpec {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, 1.0);
        g.add_edge(m, t, 1.0);
        g.add_edge(s, t, 3.0);
        let prior = Prior::independent(vec![
            vec![((s, t), 1.0)],
            vec![((s, t), 0.5), ((s, s), 0.5)],
        ]);
        GameSpec::Ncs(BayesianNcsGame::new(g, prior).unwrap())
    }

    fn request(game: GameSpec) -> SolveRequest {
        SolveRequest {
            game,
            config: SolverConfig::default(),
        }
    }

    #[test]
    fn solve_results_match_the_in_process_engine_exactly() {
        let service = SolveService::new(CacheConfig::default());
        for game in [matrix_game(1), ncs_game()] {
            let outcome = service.solve(&request(game.clone())).unwrap();
            assert!(!outcome.cache_hit);
            let direct = match &game {
                GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
                GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
            };
            assert_eq!(
                outcome.body.as_ref(),
                direct.canonical_bytes().as_slice(),
                "service bytes must be identical to the in-process report"
            );
        }
    }

    #[test]
    fn resubmission_hits_the_cache() {
        let service = SolveService::new(CacheConfig::default());
        let req = request(matrix_game(2));
        let cold = service.solve(&req).unwrap();
        let warm = service.solve(&req).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.body, warm.body);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn thread_count_does_not_split_the_cache() {
        let service = SolveService::new(CacheConfig::default());
        let game = matrix_game(3);
        let one = SolveRequest {
            game: game.clone(),
            config: SolverConfig {
                threads: 1,
                ..SolverConfig::default()
            },
        };
        let four = SolveRequest {
            game,
            config: SolverConfig {
                threads: 4,
                ..SolverConfig::default()
            },
        };
        assert_eq!(
            SolveService::cache_key(&one.game, &one.config),
            SolveService::cache_key(&four.game, &four.config)
        );
        service.solve(&one).unwrap();
        assert!(service.solve(&four).unwrap().cache_hit);
    }

    /// Three interchangeable binary agents — `Auto` symmetry reduces its
    /// 8-profile sweep to 4 orbits.
    fn symmetric_game() -> GameSpec {
        let g = bi_core::MatrixFormGame::from_fn(3, &[2, 2, 2], |_, a| {
            a.iter().map(|&x| (x + 1) as f64).sum()
        });
        GameSpec::Matrix(BayesianGame::new(vec![1, 1, 1], vec![(vec![0, 0, 0], 1.0, g)]).unwrap())
    }

    #[test]
    fn symmetry_mode_splits_the_cache_and_feeds_orbit_metrics() {
        let service = SolveService::new(CacheConfig::default());
        let game = symmetric_game();
        let off = SolveRequest {
            game: game.clone(),
            config: SolverConfig::default(),
        };
        let auto = SolveRequest {
            game,
            config: SolverConfig {
                symmetry: bi_core::SymmetryMode::Auto,
                ..SolverConfig::default()
            },
        };
        // Orbit-reduced reports carry different bytes, so the key must
        // differ — an `Auto` request after an `Off` one is a miss.
        assert_ne!(
            SolveService::cache_key(&off.game, &off.config),
            SolveService::cache_key(&auto.game, &auto.config)
        );
        let full = service.solve(&off).unwrap();
        let reduced = service.solve(&auto).unwrap();
        assert!(!reduced.cache_hit);
        assert_ne!(full.body, reduced.body);
        // Only the reduced solve feeds the orbit counters: 4 orbits
        // representing all 8 profiles.
        let m = service.metrics();
        assert_eq!(m.orbit_sweeps.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(
            m.orbits_evaluated
                .load(std::sync::atomic::Ordering::Relaxed),
            4
        );
        assert_eq!(
            m.orbit_profiles_represented
                .load(std::sync::atomic::Ordering::Relaxed),
            8
        );
        let doc = service.metrics_json();
        let orbit = doc.get("orbit").unwrap();
        assert_eq!(orbit.get("sweeps").unwrap().as_u64(), Some(1));
        // And both measures agree (the reduced body differs only in the
        // orbit/profiles fields).
        assert!(service.solve(&auto).unwrap().cache_hit);
    }

    #[test]
    fn different_backends_are_different_content() {
        let game = matrix_game(4);
        let exhaustive = request(game.clone());
        let sampled = SolveRequest {
            game,
            config: SolverConfig {
                backend: Backend::MonteCarloSampling {
                    samples: 16,
                    seed: 1,
                },
                ..SolverConfig::default()
            },
        };
        assert_ne!(
            SolveService::cache_key(&exhaustive.game, &exhaustive.config),
            SolveService::cache_key(&sampled.game, &sampled.config)
        );
    }

    #[test]
    fn batches_mix_hits_misses_and_representations() {
        let service = SolveService::new(CacheConfig::default());
        // Pre-warm one of the games.
        service.solve(&request(matrix_game(5))).unwrap();
        let batch = BatchRequest {
            games: vec![matrix_game(5), matrix_game(6), ncs_game()],
            config: SolverConfig::default(),
        };
        let results = service.solve_batch(&batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].as_ref().unwrap().cache_hit);
        assert!(!results[1].as_ref().unwrap().cache_hit);
        assert!(!results[2].as_ref().unwrap().cache_hit);
        // Each answer matches a direct solve.
        for (game, result) in batch.games.iter().zip(&results) {
            let direct = match game {
                GameSpec::Matrix(g) => Solver::default().solve(g).unwrap(),
                GameSpec::Ncs(g) => Solver::default().solve(g).unwrap(),
            };
            assert_eq!(
                result.as_ref().unwrap().body.as_ref(),
                direct.canonical_bytes().as_slice()
            );
        }
    }

    #[test]
    fn engine_errors_pass_through_and_are_not_cached() {
        let service = SolveService::new(CacheConfig::default());
        let req = SolveRequest {
            game: matrix_game(7),
            config: SolverConfig {
                budget: bi_core::solve::Budget {
                    max_profiles: 1,
                    max_iterations: 8,
                },
                ..SolverConfig::default()
            },
        };
        assert!(matches!(
            service.solve(&req),
            Err(SolveError::BudgetExceeded { .. })
        ));
        assert_eq!(service.cache_stats().insertions, 0);
        // Batch errors stay per-game.
        let results = service.solve_batch(&BatchRequest {
            games: vec![req.game.clone()],
            config: req.config,
        });
        assert!(matches!(results[0], Err(SolveError::BudgetExceeded { .. })));
    }

    #[test]
    fn cold_solves_feed_the_latency_histogram() {
        let service = SolveService::new(CacheConfig::default());
        let req = request(matrix_game(9));
        service.solve(&req).unwrap();
        assert_eq!(service.metrics().solve_us.count(), 1);
        // A cache hit never touches the engine or the histogram.
        service.solve(&req).unwrap();
        assert_eq!(service.metrics().solve_us.count(), 1);
        // A batch with misses records one engine sample per representation
        // batch; a fully-cached batch records none.
        let batch = BatchRequest {
            games: vec![req.game.clone(), matrix_game(10), ncs_game()],
            config: req.config,
        };
        service.solve_batch(&batch);
        assert_eq!(service.metrics().solve_us.count(), 3);
        service.solve_batch(&batch);
        assert_eq!(service.metrics().solve_us.count(), 3);
        // Failed engine invocations count too (same population as the
        // batch path).
        let unsolvable = SolveRequest {
            game: matrix_game(11),
            config: SolverConfig {
                budget: bi_core::solve::Budget {
                    max_profiles: 1,
                    max_iterations: 8,
                },
                ..SolverConfig::default()
            },
        };
        assert!(service.solve(&unsolvable).is_err());
        assert_eq!(service.metrics().solve_us.count(), 4);
        let doc = service.metrics_json();
        let solve = doc.get("solve_us").unwrap();
        assert_eq!(solve.get("count").unwrap().as_u64(), Some(4));
        assert!(solve.get("p99").unwrap().as_u64().is_some());
    }

    #[test]
    fn fast_path_goes_zero_copy_after_first_sighting() {
        let service = SolveService::new(CacheConfig::default());
        let req = request(matrix_game(12));
        let body = req.encode().canonical_bytes();
        // First sighting: decode once, miss, solve.
        let prepared = match service.try_serve_fast(&body, TraceCtx::NONE).unwrap() {
            FastOutcome::Miss(p) => p,
            other => panic!("expected a miss, got {other:?}"),
        };
        let cold = service.complete_solve(*prepared).unwrap();
        assert!(!cold.cache_hit && !cold.zero_copy);
        // Second sighting of the exact same canonical bytes: answered
        // off the raw index, no parse.
        let warm = match service.try_serve_fast(&body, TraceCtx::NONE).unwrap() {
            FastOutcome::Hit(r) => r,
            other => panic!("expected a hit, got {other:?}"),
        };
        assert!(warm.cache_hit && warm.zero_copy);
        assert_eq!(cold.body, warm.body);
        // A non-canonical spelling of the same request still hits — via
        // the parse path — and yields byte-identical response bytes.
        let mut spaced = b" ".to_vec();
        spaced.extend_from_slice(&body);
        let parsed = match service.try_serve_fast(&spaced, TraceCtx::NONE).unwrap() {
            FastOutcome::Hit(r) => r,
            other => panic!("expected a hit, got {other:?}"),
        };
        assert!(parsed.cache_hit && !parsed.zero_copy);
        assert_eq!(parsed.body, warm.body);
        // And the blocking path agrees byte-for-byte.
        assert_eq!(service.solve(&req).unwrap().body, warm.body);
        let m = service.metrics();
        assert_eq!(
            m.zero_copy_hits.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(m.parsed_hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn parsed_hits_warm_the_raw_index() {
        let service = SolveService::new(CacheConfig::default());
        let req = request(matrix_game(13));
        // Populate the primary cache through the blocking path — the raw
        // index has never seen these bytes.
        service.solve(&req).unwrap();
        let body = req.encode().canonical_bytes();
        let first = match service.try_serve_fast(&body, TraceCtx::NONE).unwrap() {
            FastOutcome::Hit(r) => r,
            other => panic!("expected a hit, got {other:?}"),
        };
        assert!(!first.zero_copy, "first sighting must take the parse path");
        let second = match service.try_serve_fast(&body, TraceCtx::NONE).unwrap() {
            FastOutcome::Hit(r) => r,
            other => panic!("expected a hit, got {other:?}"),
        };
        assert!(second.zero_copy, "the parsed hit must warm the raw index");
        assert_eq!(first.body, second.body);
    }

    #[test]
    fn traced_requests_record_cache_solve_and_encode_spans() {
        let service = SolveService::new(CacheConfig::default());
        let trace = service.recorder().new_trace_id();
        let root = service.recorder().next_span_id();
        let ctx = TraceCtx {
            trace_id: trace,
            parent: root,
        };
        let body = request(matrix_game(20)).encode().canonical_bytes();
        let prepared = match service.try_serve_fast(&body, ctx).unwrap() {
            FastOutcome::Miss(p) => p,
            other => panic!("expected a miss, got {other:?}"),
        };
        assert_eq!(prepared.ctx(), ctx);
        service.complete_solve(*prepared).unwrap();
        let spans = service.recorder().trace_spans(trace);
        let stages: Vec<&str> = spans.iter().map(|s| s.stage.name()).collect();
        assert!(stages.contains(&"cache"), "stages: {stages:?}");
        assert!(stages.contains(&"solve"), "stages: {stages:?}");
        assert!(stages.contains(&"encode"), "stages: {stages:?}");
        assert!(
            spans.iter().all(|s| s.parent == root),
            "every service span nests under the request root"
        );
        // The stage histograms fill regardless of tracing.
        let m = service.metrics();
        assert_eq!(m.stages.get(bi_obs::Stage::Cache).count(), 1);
        assert_eq!(m.stages.get(bi_obs::Stage::Solve).count(), 1);
        assert_eq!(m.stages.get(bi_obs::Stage::Encode).count(), 1);
        // An untraced request fills histograms but records no spans.
        let before = service.recorder().spans().len();
        let warm = request(matrix_game(20)).encode().canonical_bytes();
        match service.try_serve_fast(&warm, TraceCtx::NONE).unwrap() {
            FastOutcome::Hit(r) => assert!(r.cache_hit),
            other => panic!("expected a hit, got {other:?}"),
        }
        assert_eq!(service.recorder().spans().len(), before);
        assert_eq!(m.stages.get(bi_obs::Stage::Cache).count(), 2);
    }

    #[test]
    fn fast_path_rejects_malformed_bodies_without_solving() {
        let service = SolveService::new(CacheConfig::default());
        assert!(service.try_serve_fast(b"not json", TraceCtx::NONE).is_err());
        assert!(service
            .try_serve_fast(&[0xff, 0xfe], TraceCtx::NONE)
            .is_err());
        let err = service
            .try_serve_fast(br#"{"game":{"kind":"cubic"}}"#, TraceCtx::NONE)
            .unwrap_err();
        assert!(err.to_string().contains("unknown game kind"));
        assert_eq!(service.cache_stats().insertions, 0);
    }

    #[test]
    fn requests_round_trip_on_the_wire() {
        let req = request(matrix_game(8));
        let decoded = SolveRequest::decode(&req.encode()).unwrap();
        assert_eq!(
            SolveService::cache_key(&decoded.game, &decoded.config),
            SolveService::cache_key(&req.game, &req.config)
        );
        // Config defaults when omitted.
        let bare = Json::Obj(vec![("game".into(), req.game.encode())]);
        let decoded = SolveRequest::decode(&bare).unwrap();
        assert_eq!(decoded.config, SolverConfig::default());
        let batch = BatchRequest {
            games: vec![matrix_game(8), ncs_game()],
            config: SolverConfig::default(),
        };
        let decoded = BatchRequest::decode(&batch.encode()).unwrap();
        assert_eq!(decoded.games.len(), 2);
    }

    #[test]
    fn malformed_requests_name_the_offending_field() {
        let err = SolveRequest::decode_str(r#"{"game":{"kind":"cubic"}}"#).unwrap_err();
        assert!(err.to_string().contains("unknown game kind"));
        let err = SolveRequest::decode_str(r#"{}"#).unwrap_err();
        assert!(err.to_string().contains("missing field `game`"));
        let err = BatchRequest::decode_str(r#"{"games":[{"kind":"cubic"}]}"#).unwrap_err();
        assert!(err.to_string().contains("games[0]"));
    }
}
