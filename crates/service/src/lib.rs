//! # bi-service
//!
//! The serving layer of the `bayesian-ignorance` workspace: everything
//! between the unified solver engine (`bi_core::solve::Solver`) and a
//! TCP socket, built on `std` alone.
//!
//! The paper's six ignorance measures are **pure functions of a game
//! description** — the same request always has the same answer — which
//! makes solve results perfectly content-addressable. This crate turns
//! that observation into a subsystem:
//!
//! ```text
//!   client ──► bi-router ──(consistent-hash ring over canonical key)──►
//!                  │                         bi-serve node 1..N, each:
//!                  │ all dead → fallback
//!                  ▼
//!             local solve / 503
//!
//!                    reactor thread (poll-based, nonblocking)
//!   client ──► read ──► canon_check ──► raw-byte index ──► hit: bytes out
//!     ▲                    │ non-canonical  │ miss              (zero parse)
//!     │                    ▼                ▼
//!     │               decode once ──► sharded LRU cache ──► hit: bytes out
//!     │                                     │ miss
//!     │                                     ▼
//!     │                            disk tier (append-only log)
//!     │                              │ hit: promote to LRU
//!     │                              │ miss
//!     │                              bounded try_send ──► solver pool
//!     │                                 │ full                 │
//!     └── 429 + Retry-After ◄───────────┘      wake pipe +     │
//!     └── SolveReport bytes ◄── completion queue ◄─────────────┘
//! ```
//!
//! * [`cache`] — the content-addressed solve cache: 64-bit FNV-1a over
//!   canonical request bytes into a sharded, capacity-bounded, exact-LRU
//!   store with hit/miss/eviction counters;
//! * [`service`] — the transport-independent core: [`GameSpec`] (matrix
//!   or NCS games), [`SolveRequest`]/[`BatchRequest`] wire types, and
//!   [`SolveService`] routing every solve through the cache (with the
//!   raw-byte zero-copy index in front) and [`Solver::solve_many`] for
//!   batches;
//! * [`http`] — a minimal HTTP/1.1 layer over `std::io`, including the
//!   allocation-free incremental head parser the reactor feeds;
//! * [`reactor`] — the readiness layer: a `ppoll(2)` syscall shim (no
//!   libc) with a portable fallback, plus the loopback wake channel;
//! * [`server`] — the `bi-serve` engine: a single reactor thread
//!   multiplexing every connection, a solver pool that only cache misses
//!   cross into, `429` + `Retry-After` backpressure on the bounded
//!   pending-solve queue, endpoints `POST /solve`, `POST /solve_batch`,
//!   `GET /metrics`, `GET /healthz`, `GET /debug/trace`;
//! * [`metrics`] — the relaxed-atomic counters `GET /metrics` reports,
//!   including the reactor's zero-copy/parsed hit split and the
//!   per-stage latency histograms ([`bi_obs::StageTimings`]);
//! * [`persist`] — the disk-backed second cache tier: an append-only log
//!   of canonical-request-bytes → response-bytes with CRC-framed
//!   records, rebuilt by a torn-tail-tolerant boot scan, appended behind
//!   the hot path — a restarted node answers its old key space warm;
//! * [`cluster`] — the `bi-router` engine: a consistent-hash ring
//!   (virtual nodes over the same FNV-1a key space the cache uses)
//!   routing `/solve` bodies by canonical cache key across N `bi-serve`
//!   backends over keep-alive upstream pools, with `/healthz` probing,
//!   automatic eject/readmit, and batch split/re-merge.
//!
//! Every request is traced end to end through the `bi_obs` flight
//! recorder: the router (or server) adopts an `X-Bi-Trace` id or mints
//! one, stage spans (`route`/`ring_lookup`/`upstream` on the router;
//! `request`/`parse`/`cache`/`disk_promote`/`solve`/`encode`/`write` on
//! a backend) nest under it, and `GET /debug/trace` dumps the recent
//! span window as JSON. The commonly needed tracing types are
//! re-exported here as [`Recorder`], [`Stage`], and [`TraceCtx`].
//!
//! The three binaries are thin wrappers: `bi-serve` runs [`Server`];
//! `bi-router` runs [`Router`] in front of N of them; `bi-loadgen`
//! replays seeded random-game workloads against a running server (or a
//! `--targets` list, or a router) and writes `BENCH_service.json`
//! (throughput, latency percentiles, cache-hit rate, per-status errors).
//!
//! [`Solver::solve_many`]: bi_core::solve::Solver::solve_many
//!
//! # Examples
//!
//! In-process use of the service core (no sockets):
//!
//! ```
//! use bi_core::random_games::random_bayesian_potential_game;
//! use bi_core::solve::SolverConfig;
//! use bi_service::{CacheConfig, GameSpec, SolveRequest, SolveService};
//!
//! let service = SolveService::new(CacheConfig::default());
//! let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, 7);
//! let request = SolveRequest {
//!     game: GameSpec::Matrix(game),
//!     config: SolverConfig::default(),
//! };
//! let cold = service.solve(&request).unwrap();
//! let warm = service.solve(&request).unwrap();
//! assert!(!cold.cache_hit && warm.cache_hit);
//! assert_eq!(cold.body, warm.body);
//! ```

pub mod cache;
pub mod cluster;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod persist;
pub mod reactor;
pub mod server;
pub mod service;
pub mod workload;

pub use bi_obs::{Recorder, SpanEvent, Stage, TraceCtx};
pub use cache::{CacheConfig, CacheStats, ShardedLru};
pub use cluster::{FallbackMode, HashRing, Router, RouterConfig, RouterHandle};
pub use fault::{FaultKind, FaultPlan};
pub use metrics::ServiceMetrics;
pub use persist::{DiskTier, DiskTierConfig, DiskTierStats};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{
    BatchRequest, FastOutcome, GameSpec, PreparedSolve, ServedResponse, SolveOutcome, SolveRequest,
    SolveService,
};
