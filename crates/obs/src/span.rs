//! The span flight recorder: a fixed-capacity, overwrite-oldest ring of
//! [`SpanEvent`]s written with relaxed atomics and **zero allocation**
//! on the record path.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path must not notice.** A `POST /solve` zero-copy hit is
//!    ~53 µs end to end; recording a span is a thread-local shard pick,
//!    one `fetch_add` on the shard cursor, and seven relaxed stores into
//!    preallocated slots — no locks, no heap, no syscalls.
//! 2. **Always on.** There is no sampling decision on the write side;
//!    the ring simply overwrites its oldest entries, so the recorder is
//!    a flight recorder in the aviation sense: it always holds the most
//!    recent window of activity, and `GET /debug/trace` dumps it.
//! 3. **Readers never block writers.** Snapshots validate each slot with
//!    a sequence counter (odd = mid-write) read before and after the
//!    payload; a slot that changed underneath the reader is simply
//!    skipped. The payload fields are themselves atomics, so a torn read
//!    is a *discarded* event, never undefined behavior. The one
//!    unguarded case — a full ring lap completing inside a single
//!    reader's slot visit so the sequence returns to the same value — is
//!    astronomically unlikely at realistic capacities and costs one
//!    mixed event in a diagnostic dump, nothing more.
//!
//! Trace ids and span ids are 64-bit. Span ids are unique per process
//! (a per-recorder random salt mixed with a counter), trace ids carry
//! the same salt so ids minted by a router and a backend never collide;
//! id `0` is reserved as "none" in both namespaces.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use bi_util::Json;

/// A named stage of the serving pipeline, the unit spans are tagged
/// with. The same enum covers both tiers: the router records
/// [`Stage::Route`]/[`Stage::RingLookup`]/[`Stage::Upstream`], a backend
/// records the rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// A backend request end to end (first parsed byte to last written
    /// byte) — the root span on `bi-serve`.
    Request = 0,
    /// A router request end to end — the root span on `bi-router`.
    Route = 1,
    /// HTTP head parsing on the reactor.
    Parse = 2,
    /// Consistent-hash key derivation + ring walk on the router.
    RingLookup = 3,
    /// One forward attempt to an upstream backend (includes the retry
    /// economics: a failed attempt is its own span).
    Upstream = 4,
    /// Cache lookup: raw-byte index, primary LRU, and disk tier probe.
    Cache = 5,
    /// Promotion of a disk-tier hit into the in-memory LRU.
    DiskPromote = 6,
    /// The engine solve (or a whole batch on the solver pool).
    Solve = 7,
    /// Canonical JSON encoding of a freshly computed report (miss path)
    /// or staging the cached bytes (hit path).
    Encode = 8,
    /// Writing the staged response to the socket (staged → flushed).
    Write = 9,
}

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; 10] = [
        Stage::Request,
        Stage::Route,
        Stage::Parse,
        Stage::RingLookup,
        Stage::Upstream,
        Stage::Cache,
        Stage::DiskPromote,
        Stage::Solve,
        Stage::Encode,
        Stage::Write,
    ];

    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = Stage::ALL.len();

    /// The stable wire name of the stage (used in `/debug/trace` dumps
    /// and as the `"stages"` histogram keys of `GET /metrics`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Route => "route",
            Stage::Parse => "parse",
            Stage::RingLookup => "ring_lookup",
            Stage::Upstream => "upstream",
            Stage::Cache => "cache",
            Stage::DiskPromote => "disk_promote",
            Stage::Solve => "solve",
            Stage::Encode => "encode",
            Stage::Write => "write",
        }
    }

    /// The inverse of [`Stage::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    fn from_u64(v: u64) -> Option<Stage> {
        Stage::ALL.get(usize::try_from(v).ok()?).copied()
    }
}

/// The trace context a request carries across layers (and, as
/// `X-Bi-Trace`/`X-Bi-Parent` headers, across processes): which trace
/// the work belongs to and which span is its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The 64-bit trace id correlating every span of one request; `0`
    /// means "untraced" (in-process callers that skip span recording).
    pub trace_id: u64,
    /// The span id child spans attach to; `0` means "no parent".
    pub parent: u64,
}

impl TraceCtx {
    /// The inactive context: spans are not recorded, histograms still
    /// are.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent: 0,
    };

    /// Whether spans should be recorded under this context.
    #[must_use]
    pub fn active(self) -> bool {
        self.trace_id != 0
    }

    /// The context a child stage should pass further down: same trace,
    /// `span` as the parent.
    #[must_use]
    pub fn child(self, span: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent: span,
        }
    }
}

/// One recorded span: a `[t_start_ns, t_end_ns]` interval of a named
/// pipeline stage, keyed by trace and linked to its parent span.
///
/// Timestamps are nanoseconds since the owning [`Recorder`]'s epoch
/// (its construction instant), so intervals recorded by one process are
/// mutually comparable; cross-process alignment is by trace id and
/// parent links, not by clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The trace this span belongs to (never 0 in a recorded event).
    pub trace_id: u64,
    /// This span's own id (unique per process, never 0).
    pub span_id: u64,
    /// The parent span id (`0` for a root span).
    pub parent: u64,
    /// The pipeline stage the interval covers.
    pub stage: Stage,
    /// Interval start, ns since the recorder epoch.
    pub t_start_ns: u64,
    /// Interval end, ns since the recorder epoch.
    pub t_end_ns: u64,
}

impl SpanEvent {
    /// The `/debug/trace` wire form of one span. u64 ids and timestamps
    /// are decimal strings, the workspace-wide convention for values
    /// beyond exact-`f64` range ([`Json::from_u64`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trace".into(), Json::from_u64(self.trace_id)),
            ("span".into(), Json::from_u64(self.span_id)),
            ("parent".into(), Json::from_u64(self.parent)),
            ("stage".into(), Json::str(self.stage.name())),
            ("start_ns".into(), Json::from_u64(self.t_start_ns)),
            ("end_ns".into(), Json::from_u64(self.t_end_ns)),
        ])
    }

    /// Parses the wire form back (the inverse of [`SpanEvent::to_json`]);
    /// `None` when a field is missing or malformed.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<SpanEvent> {
        Some(SpanEvent {
            trace_id: v.get("trace")?.as_u64()?,
            span_id: v.get("span")?.as_u64()?,
            parent: v.get("parent")?.as_u64()?,
            stage: Stage::from_name(v.get("stage")?.as_str()?)?,
            t_start_ns: v.get("start_ns")?.as_u64()?,
            t_end_ns: v.get("end_ns")?.as_u64()?,
        })
    }
}

/// Slots per shard below which a shard is not worth having.
const MIN_SHARD_SLOTS: usize = 16;

/// Write shards (threads are spread across them round-robin; 8 covers
/// the reactor + a typical solver pool without contention).
const SHARDS: usize = 8;

/// One ring slot: a sequence word plus the six payload words. The
/// sequence is `2·ticket + 1` while the writer is mid-store and
/// `2·ticket + 2` once the payload is complete, so readers can both
/// skip in-progress slots (odd) and detect a slot that was overwritten
/// underneath them (value changed between the pre- and post-read).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    stage: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
        }
    }
}

/// One write shard: a ticket counter and its slice of the ring.
#[derive(Debug)]
struct Shard {
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

/// Threads are assigned shard indices round-robin from this process-wide
/// counter on first record (thread ids are not stably numeric on stable
/// Rust).
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The flight recorder: a sharded ring of [`SpanEvent`] slots plus the
/// id mints. See the module docs for the write/read protocol.
#[derive(Debug)]
pub struct Recorder {
    shards: [Shard; SHARDS],
    epoch: Instant,
    /// Per-process salt mixed into every minted id so two processes'
    /// recorders never mint colliding trace or span ids.
    salt: u64,
    next_span: AtomicU64,
    next_trace: AtomicU64,
}

impl Recorder {
    /// A recorder holding (at least) `capacity` most-recent spans,
    /// rounded up so every shard gets the same power-of-two slot count.
    #[must_use]
    pub fn new(capacity: usize) -> Recorder {
        let per_shard = capacity
            .div_ceil(SHARDS)
            .next_power_of_two()
            .max(MIN_SHARD_SLOTS);
        Recorder {
            shards: std::array::from_fn(|_| Shard {
                cursor: AtomicU64::new(0),
                slots: (0..per_shard).map(|_| Slot::empty()).collect(),
            }),
            epoch: Instant::now(),
            salt: process_salt(),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Total slot count (≥ the requested capacity).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Nanoseconds since this recorder's construction — the timebase of
    /// every span it holds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Mints a fresh, never-zero trace id (process-salted, so router and
    /// backend mints never collide).
    #[must_use]
    pub fn new_trace_id(&self) -> u64 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        mix(self.salt ^ n.rotate_left(17)).max(1)
    }

    /// Mints a fresh, never-zero span id. Allocate the root span id
    /// *before* recording children so their `parent` field can point at
    /// it, then close the root with [`Recorder::record_span`].
    #[must_use]
    pub fn next_span_id(&self) -> u64 {
        let n = self.next_span.fetch_add(1, Ordering::Relaxed);
        mix(self.salt ^ n).max(1)
    }

    /// Records a span under a freshly minted id and returns that id (so
    /// the caller can parent further spans under it).
    pub fn record(
        &self,
        trace_id: u64,
        parent: u64,
        stage: Stage,
        t_start_ns: u64,
        t_end_ns: u64,
    ) -> u64 {
        let span_id = self.next_span_id();
        self.record_span(span_id, trace_id, parent, stage, t_start_ns, t_end_ns);
        span_id
    }

    /// Records a span under a pre-allocated id (see
    /// [`Recorder::next_span_id`]). The record path: one thread-local
    /// read, one `fetch_add`, seven atomic stores — no locks, no heap.
    pub fn record_span(
        &self,
        span_id: u64,
        trace_id: u64,
        parent: u64,
        stage: Stage,
        t_start_ns: u64,
        t_end_ns: u64,
    ) {
        let shard = &self.shards[thread_shard_index() % SHARDS];
        let ticket = shard.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[(ticket as usize) & (shard.slots.len() - 1)];
        // Odd = mid-write: readers arriving now skip the slot. Release
        // so the payload stores below are not reordered before it.
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.trace.store(trace_id, Ordering::Relaxed);
        slot.span.store(span_id, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.stage.store(u64::from(stage as u8), Ordering::Relaxed);
        slot.start.store(t_start_ns, Ordering::Relaxed);
        slot.end.store(t_end_ns, Ordering::Relaxed);
        // Even = complete; Release publishes the payload with it.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Every consistent event currently in the ring, ordered by start
    /// time (ties by span id). In-progress and torn slots are skipped.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == 0 || seq % 2 == 1 {
                    continue; // never written, or a writer is mid-store
                }
                let event = SpanEvent {
                    trace_id: slot.trace.load(Ordering::Relaxed),
                    span_id: slot.span.load(Ordering::Relaxed),
                    parent: slot.parent.load(Ordering::Relaxed),
                    stage: match Stage::from_u64(slot.stage.load(Ordering::Relaxed)) {
                        Some(stage) => stage,
                        None => continue,
                    },
                    t_start_ns: slot.start.load(Ordering::Relaxed),
                    t_end_ns: slot.end.load(Ordering::Relaxed),
                };
                if slot.seq.load(Ordering::Acquire) != seq {
                    continue; // overwritten underneath us: discard
                }
                out.push(event);
            }
        }
        out.sort_unstable_by_key(|e| (e.t_start_ns, e.span_id));
        out
    }

    /// The events of one trace, ordered by start time — what the
    /// slow-request sampler logs.
    #[must_use]
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanEvent> {
        let mut spans = self.spans();
        spans.retain(|e| e.trace_id == trace_id);
        spans
    }

    /// The `GET /debug/trace` document: `{"capacity": …, "spans": […]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("capacity".into(), Json::num(self.capacity() as f64)),
            (
                "spans".into(),
                Json::Arr(self.spans().iter().map(SpanEvent::to_json).collect()),
            ),
        ])
    }
}

impl Default for Recorder {
    /// A 4096-slot recorder — a few seconds of history at full hot-path
    /// throughput, which is what a `/debug/trace` scrape or a
    /// slow-request dump needs.
    fn default() -> Self {
        Recorder::new(4096)
    }
}

/// The calling thread's stable shard index (assigned round-robin on
/// first use).
fn thread_shard_index() -> usize {
    THREAD_SHARD.with(|cell| {
        let assigned = cell.get();
        if assigned != usize::MAX {
            return assigned;
        }
        let fresh = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        cell.set(fresh);
        fresh
    })
}

/// SplitMix64's finalizer: a bijective avalanche over `u64`, so distinct
/// counter values always mint distinct ids within one process.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A per-process salt: pid mixed with a coarse wall-clock reading, so
/// two processes started at the same moment still separate by pid.
fn process_salt() -> u64 {
    let pid = u64::from(std::process::id());
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    mix(pid.rotate_left(32) ^ clock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(Stage::from_u64(u64::from(stage as u8)), Some(stage));
        }
        assert_eq!(Stage::from_name("nonsense"), None);
        assert_eq!(Stage::from_u64(255), None);
    }

    #[test]
    fn trace_ctx_threads_parents() {
        assert!(!TraceCtx::NONE.active());
        let ctx = TraceCtx {
            trace_id: 7,
            parent: 0,
        };
        assert!(ctx.active());
        let child = ctx.child(42);
        assert_eq!(child.trace_id, 7);
        assert_eq!(child.parent, 42);
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let r = Recorder::new(64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = r.next_span_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "span id minted twice");
        }
        for _ in 0..10_000 {
            let id = r.new_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace id collided");
        }
    }

    #[test]
    fn recorded_spans_come_back_ordered() {
        let r = Recorder::new(64);
        let trace = r.new_trace_id();
        let root = r.next_span_id();
        let parse = r.record(trace, root, Stage::Parse, 10, 20);
        let cache = r.record(trace, root, Stage::Cache, 20, 30);
        // Start the root strictly before its children: the sort is by
        // (t_start_ns, span_id) and span ids are random, so a start-time
        // tie would make the order nondeterministic.
        r.record_span(root, trace, 0, Stage::Request, 5, 40);
        let spans = r.trace_spans(trace);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].span_id, root, "root starts first");
        assert_eq!(spans[0].stage, Stage::Request);
        assert!(spans.iter().any(|s| s.span_id == parse && s.parent == root));
        assert!(spans.iter().any(|s| s.span_id == cache && s.parent == root));
        // An unrelated trace id filters to nothing.
        assert!(r.trace_spans(trace ^ 1).is_empty());
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        // Single-threaded: everything lands in one shard, whose slot
        // count is 16 (the minimum). Recording 100 spans must retain
        // exactly the newest 16.
        let r = Recorder::new(1);
        let trace = r.new_trace_id();
        for i in 0..100u64 {
            r.record(trace, 0, Stage::Solve, i, i + 1);
        }
        let spans = r.trace_spans(trace);
        assert_eq!(spans.len(), 16, "one full shard survives");
        let starts: Vec<u64> = spans.iter().map(|s| s.t_start_ns).collect();
        assert_eq!(
            starts,
            (84..100).collect::<Vec<u64>>(),
            "the survivors are exactly the newest events"
        );
    }

    #[test]
    fn concurrent_recording_keeps_trace_correlation() {
        // Reactor + workers all record under their own trace ids while a
        // reader snapshots; no event may ever carry a mixed-up pairing
        // of trace id and payload. Trace `t` only ever records start
        // times `start % THREADS == t-index`, so any cross-thread tear
        // would be visible.
        let r = Recorder::new(4096);
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let traces: Vec<u64> = (0..THREADS as u64).map(|i| 1 + i).collect();
        std::thread::scope(|scope| {
            for (idx, &trace) in traces.iter().enumerate() {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let start = i * THREADS as u64 + idx as u64;
                        r.record(trace, trace, Stage::Solve, start, start + 1);
                    }
                });
            }
            // Concurrent snapshots must stay internally consistent.
            let r = &r;
            scope.spawn(move || {
                for _ in 0..50 {
                    for span in r.spans() {
                        assert_eq!(span.t_end_ns, span.t_start_ns + 1);
                    }
                }
            });
        });
        for (idx, &trace) in traces.iter().enumerate() {
            let spans = r.trace_spans(trace);
            assert!(!spans.is_empty(), "trace {trace} lost every span");
            for span in spans {
                assert_eq!(
                    span.t_start_ns % THREADS as u64,
                    idx as u64,
                    "a span's payload was torn across traces"
                );
                assert_eq!(span.parent, trace, "parent field torn");
            }
        }
    }

    #[test]
    fn json_dump_round_trips_through_bi_util_json() {
        let r = Recorder::new(64);
        let trace = r.new_trace_id();
        let root = r.next_span_id();
        r.record(trace, root, Stage::Cache, 100, 250);
        r.record(trace, root, Stage::Write, 250, 300);
        r.record_span(root, trace, 0, Stage::Request, 100, 300);
        let dump = r.to_json().to_string();
        let parsed = Json::parse(&dump).expect("the dump is valid JSON");
        let spans = parsed.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 3);
        let decoded: Vec<SpanEvent> = spans
            .iter()
            .map(|s| SpanEvent::from_json(s).unwrap())
            .collect();
        assert_eq!(decoded, r.spans(), "wire form round-trips losslessly");
        assert_eq!(
            parsed.get("capacity").and_then(Json::as_usize),
            Some(r.capacity())
        );
    }
}
