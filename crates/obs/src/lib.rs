//! # bi-obs
//!
//! The observability substrate of the `bayesian-ignorance` serving tier,
//! built on `std` alone like everything else in the workspace.
//!
//! A request now crosses a router, a consistent-hash ring, a backend
//! reactor, an LRU + disk cache, and a solver pool. This crate is how we
//! see *where time goes per request and per stage*, correlated across
//! hops, without perturbing the ~53 µs zero-copy hot path:
//!
//! * [`span`] — a lock-free flight recorder of [`SpanEvent`]s: fixed
//!   capacity, overwrite-oldest, relaxed atomics, **zero allocation on
//!   the record path**. One 64-bit trace id (assigned by `bi-serve`, or
//!   adopted from an `X-Bi-Trace` header so `bi-router` can originate
//!   it) correlates the router hop, ring lookup, upstream forward, and
//!   the backend's parse/cache/solve/encode/write stages.
//! * [`hist`] — the log₂-bucketed [`LatencyHistogram`] (moved here from
//!   `bi-service` so router and backend share it) with a tear-free
//!   [`LatencyHistogram::snapshot`], and [`StageTimings`]: one histogram
//!   per pipeline [`Stage`], surfaced under `"stages"` in `GET /metrics`.
//! * [`log`] — a structured JSON-lines logger for the binaries' stderr
//!   diagnostics: level filter via the `BI_LOG` environment variable,
//!   one write syscall per line, never on the hot path unless a request
//!   trips a `--trace-slow-us` threshold.
//!
//! The recorder is exposed over HTTP as `GET /debug/trace`; its JSON
//! uses the same conventions as the rest of the workspace (u64 values
//! are decimal strings, [`bi_util::Json::from_u64`]), so dumps from the
//! router and every backend can be joined on `trace` in a few lines of
//! scripting.
//!
//! # Examples
//!
//! Recording and reading back a two-span trace:
//!
//! ```
//! use bi_obs::{Recorder, Stage};
//!
//! let recorder = Recorder::new(64);
//! let trace = recorder.new_trace_id();
//! let root = recorder.next_span_id();
//! let t0 = recorder.now_ns();
//! let t1 = recorder.now_ns();
//! recorder.record(trace, root, Stage::Parse, t0, t1);
//! recorder.record_span(root, trace, 0, Stage::Request, t0, t1);
//! let spans = recorder.trace_spans(trace);
//! assert_eq!(spans.len(), 2);
//! assert!(spans.iter().any(|s| s.parent == root));
//! ```

pub mod hist;
pub mod log;
pub mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram, StageTimings, HISTOGRAM_BUCKETS};
pub use log::Level;
pub use span::{Recorder, SpanEvent, Stage, TraceCtx};
