//! The log₂-bucketed [`LatencyHistogram`] (moved here from
//! `bi-service` so router and backend share one implementation) and
//! [`StageTimings`], its per-[`Stage`] array surfaced under `"stages"`
//! in `GET /metrics`.
//!
//! # The tearing fix
//!
//! The original histogram kept a separate `count` atomic, bumped by a
//! third `fetch_add` in `record`; a reader interleaving with a writer
//! could observe a `count` that disagreed with the bucket total (read
//! `count` after the writer's bucket increment but the buckets before
//! it, or vice versa). The fix is structural: **the count is no longer
//! stored at all** — a [`HistogramSnapshot`] reads the buckets first
//! and *derives* the count as their sum, so within any snapshot
//! `count == Σ buckets[i]` holds by construction, for every possible
//! interleaving. `sum_us` is read after the buckets and is documented
//! as approximate (the mean can be off by the handful of samples that
//! landed between the two reads — fine for observability, which is all
//! this is).

use std::sync::atomic::{AtomicU64, Ordering};

use bi_util::Json;

use crate::span::Stage;

/// Number of log₂ buckets of [`LatencyHistogram`]: covers `0 µs` to
/// `2³⁹ µs` (≈ 6.4 days), clamping anything larger into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed latency histogram (relaxed atomics — the
/// numbers are observability, not synchronization).
///
/// Bucket `i > 0` counts samples in `[2^(i−1), 2^i)` µs; bucket 0 counts
/// `0 µs`. Percentile queries walk the cumulative counts and report the
/// matched bucket's inclusive upper bound (`2^i − 1`), so quantiles are
/// conservative within a factor of 2 — plenty to observe cold-path
/// improvements on a running service.
///
/// All reads go through [`LatencyHistogram::snapshot`], which is
/// tear-free by construction: see the module docs.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample, in microseconds. Two relaxed `fetch_add`s,
    /// nothing else — there is deliberately no separate count to keep
    /// in agreement with the buckets.
    pub fn record(&self, micros: u64) {
        let bucket = (u64::BITS - micros.leading_zeros()) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram, internally consistent:
    /// the buckets are read first and the count is their sum, so
    /// `snapshot.count() == Σ snapshot.buckets` for every interleaving
    /// with concurrent [`LatencyHistogram::record`] calls.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Buckets FIRST; sum_us after. The derived count then matches
        // the buckets exactly, and only the mean is approximate.
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }

    /// Number of recorded samples (via a fresh snapshot).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the matched bucket's upper
    /// bound in µs, or 0 with no samples (via a fresh snapshot; take
    /// one [`LatencyHistogram::snapshot`] yourself to query several
    /// quantiles consistently).
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        self.snapshot().percentile_us(p)
    }

    /// The histogram summary document: `count`, `mean_us`, and the
    /// p50/p90/p99 bucket upper bounds — all derived from one snapshot.
    #[must_use]
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

/// A consistent point-in-time copy of a [`LatencyHistogram`]. The
/// count is not stored: it is the bucket sum, which is what makes the
/// snapshot un-tearable (module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i > 0` covers
    /// `[2^(i−1), 2^i)` µs).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total microseconds recorded — read *after* the buckets, so the
    /// derived mean is approximate under concurrent writes.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Number of samples: the bucket sum, by definition.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the matched bucket's upper
    /// bound in µs, or 0 with no samples.
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (((count - 1) as f64) * p).round() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen > rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        (1u64 << (HISTOGRAM_BUCKETS - 1)) - 1
    }

    /// Mean sample in µs (approximate under concurrent writes — see
    /// [`HistogramSnapshot::sum_us`]), or 0 with no samples.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us as f64 / count as f64
        }
    }

    /// The summary document: `count`, `mean_us`, p50/p90/p99.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count())),
            ("mean_us".into(), Json::num(self.mean_us())),
            ("p50".into(), Json::from_u64(self.percentile_us(0.50))),
            ("p90".into(), Json::from_u64(self.percentile_us(0.90))),
            ("p99".into(), Json::from_u64(self.percentile_us(0.99))),
        ])
    }
}

/// One [`LatencyHistogram`] per pipeline [`Stage`] — the `"stages"`
/// section of `GET /metrics`. Stage timings are recorded on every
/// request regardless of tracing, so the histograms are complete while
/// the span ring holds only the recent window.
#[derive(Debug, Default)]
pub struct StageTimings {
    hists: [LatencyHistogram; Stage::COUNT],
}

impl StageTimings {
    /// Records one sample for `stage`, in microseconds.
    pub fn record(&self, stage: Stage, micros: u64) {
        self.hists[stage as usize].record(micros);
    }

    /// The histogram of one stage.
    #[must_use]
    pub fn get(&self, stage: Stage) -> &LatencyHistogram {
        &self.hists[stage as usize]
    }

    /// The `"stages"` document: one summary per stage, **every** stage
    /// always present (CI asserts the schema, so the key set must not
    /// depend on traffic).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            Stage::ALL
                .into_iter()
                .map(|s| (s.name().to_string(), self.get(s).to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_percentiles_match_the_original_semantics() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.5), 0);
        // 90 fast samples in [64, 128) µs, 10 slow ones in [8192, 16384).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(0.50), 127);
        assert_eq!(h.percentile_us(0.90), 127);
        assert_eq!(h.percentile_us(0.99), 16_383);
        // Zero and huge samples clamp into the terminal buckets.
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 102);
        let doc = h.to_json();
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(102));
        assert!(doc.get("p99").is_some());
    }

    #[test]
    fn snapshot_count_always_equals_bucket_sum() {
        // Hammer one histogram from several threads while snapshotting;
        // the derived count must equal the bucket sum in every snapshot
        // (trivially true by construction) and monotonically approach
        // the final total.
        let h = LatencyHistogram::default();
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 50_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record((t * 17 + i) % 5_000);
                    }
                });
            }
            let h = &h;
            scope.spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let snap = h.snapshot();
                    let derived = snap.count();
                    assert_eq!(
                        derived,
                        snap.buckets.iter().sum::<u64>(),
                        "snapshot invariant broken"
                    );
                    assert!(derived >= last, "count went backwards");
                    last = derived;
                }
            });
        });
        assert_eq!(h.count(), THREADS * PER_THREAD);
    }

    #[test]
    fn stage_timings_emit_every_stage() {
        let stages = StageTimings::default();
        stages.record(Stage::Parse, 3);
        stages.record(Stage::Solve, 900);
        let doc = stages.to_json();
        for stage in Stage::ALL {
            let hist = doc
                .get(stage.name())
                .unwrap_or_else(|| panic!("stage {:?} missing from the stages document", stage));
            assert!(hist.get("count").is_some());
            assert!(hist.get("p99").is_some());
        }
        assert_eq!(
            doc.get("parse").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("solve").unwrap().get("p50").unwrap().as_u64(),
            Some(1023)
        );
        assert_eq!(
            doc.get("write").unwrap().get("count").unwrap().as_u64(),
            Some(0)
        );
    }
}
