//! A structured JSON-lines logger for the binaries' stderr
//! diagnostics.
//!
//! One log call produces exactly one line of JSON and exactly one
//! `write` syscall (the line is assembled in a `String` first and
//! written through a single locked handle), so concurrent threads never
//! interleave fragments. The level filter comes from the `BI_LOG`
//! environment variable — `error`, `warn`, `info` (the default),
//! `debug`, or `off` — read once per process.
//!
//! The logger is **never** invoked on the zero-copy hot path: the
//! serving layer only logs at startup, on error paths, and when a
//! request trips a `--trace-slow-us` threshold (slow-request sampling),
//! so steady-state hit traffic performs zero logging work beyond one
//! branch on the threshold.
//!
//! Line shape (stdout stays free for machine-readable reports):
//!
//! ```text
//! {"ts_ms":"1754650000123","level":"info","component":"bi-serve","msg":"listening","addr":"127.0.0.1:8080"}
//! ```

use std::io::Write as _;
use std::sync::OnceLock;

use bi_util::Json;

/// Log severity, most severe first so `Ord` matches "is at least as
/// severe as".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what it was asked to.
    Error,
    /// Degraded but proceeding (failover, eject, dropped append).
    Warn,
    /// Lifecycle and slow-request samples. The default threshold.
    Info,
    /// Per-decision detail (probe results, pool churn).
    Debug,
}

impl Level {
    /// The wire name of the level.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// The process-wide threshold: `None` means logging is off entirely.
/// Parsed from `BI_LOG` once, on the first log call.
fn threshold() -> Option<Level> {
    static THRESHOLD: OnceLock<Option<Level>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| match std::env::var("BI_LOG") {
        Ok(raw) => Level::parse(&raw).unwrap_or(Some(Level::Info)),
        Err(_) => Some(Level::Info),
    })
}

/// Whether a message at `level` would be emitted — check before
/// assembling expensive fields (like a span tree dump).
#[must_use]
pub fn enabled(level: Level) -> bool {
    threshold().is_some_and(|t| level <= t)
}

/// Builds one log line as a JSON document (no trailing newline). Pure,
/// so tests can pin the format without capturing stderr.
#[must_use]
pub fn format_line(
    ts_ms: u64,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, Json)],
) -> String {
    let mut doc = vec![
        ("ts_ms".to_string(), Json::from_u64(ts_ms)),
        ("level".to_string(), Json::str(level.name())),
        ("component".to_string(), Json::str(component)),
        ("msg".to_string(), Json::str(msg)),
    ];
    doc.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    Json::Obj(doc).to_string()
}

/// Emits one structured line to stderr (level-filtered; a single
/// `write_all` on the locked handle, so lines never interleave).
pub fn log(level: Level, component: &str, msg: &str, fields: &[(&str, Json)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let mut line = format_line(ts_ms, level, component, msg, fields);
    line.push('\n');
    // A failed stderr write has nowhere better to report itself.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// [`log`] at [`Level::Error`].
pub fn error(component: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Error, component, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(component: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Warn, component, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(component: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Info, component, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(component: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Debug, component, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn level_parsing_accepts_the_documented_spellings() {
        assert_eq!(Level::parse("error"), Some(Some(Level::Error)));
        assert_eq!(Level::parse(" WARN "), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("warning"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("none"), Some(None));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn format_line_is_one_parseable_json_object() {
        let line = format_line(
            1_754_650_000_123,
            Level::Warn,
            "bi-router",
            "backend ejected",
            &[
                ("backend", Json::str("127.0.0.1:9001")),
                ("failures", Json::num(3.0)),
            ],
        );
        assert!(!line.contains('\n'), "one line, always");
        let doc = Json::parse(&line).expect("a log line is valid JSON");
        assert_eq!(doc.get("ts_ms").unwrap().as_u64(), Some(1_754_650_000_123));
        assert_eq!(doc.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(doc.get("component").unwrap().as_str(), Some("bi-router"));
        assert_eq!(doc.get("msg").unwrap().as_str(), Some("backend ejected"));
        assert_eq!(doc.get("backend").unwrap().as_str(), Some("127.0.0.1:9001"));
        assert_eq!(doc.get("failures").unwrap().as_usize(), Some(3));
    }

    #[test]
    fn format_line_escapes_hostile_messages() {
        let line = format_line(0, Level::Error, "bi-serve", "path \"a\\b\"\nnext", &[]);
        assert!(!line.contains('\n'), "newlines in messages are escaped");
        let doc = Json::parse(&line).unwrap();
        assert_eq!(
            doc.get("msg").unwrap().as_str(),
            Some("path \"a\\b\"\nnext")
        );
    }
}
