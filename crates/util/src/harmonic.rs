//! Harmonic numbers `H(n) = 1 + 1/2 + … + 1/n`.
//!
//! The Rosenthal potential of a network cost-sharing game charges each edge
//! `c(e)·H(load)`, and the paper's Lemma 3.8 bound is `best-eqP ≤ H(k)·optP`,
//! so harmonic numbers appear throughout the workspace.

/// Returns the `n`-th harmonic number `H(n)`; `H(0) = 0` by convention.
///
/// Computed by direct summation from the small end for accuracy; for the
/// instance sizes used in this workspace (`n ≤ 10^7`) this is exact to
/// within a few ulps.
///
/// # Examples
///
/// ```
/// assert_eq!(bi_util::harmonic(0), 0.0);
/// assert_eq!(bi_util::harmonic(1), 1.0);
/// assert!((bi_util::harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
/// ```
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    // Summing from 1/n upward adds the small terms first, which keeps the
    // floating-point error at the ulp level.
    (1..=n).rev().map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_hand_computation() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(3) - 11.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn is_monotone() {
        let mut prev = 0.0;
        for n in 1..200 {
            let h = harmonic(n);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    fn grows_like_ln_n() {
        // H(n) = ln n + γ + O(1/n) with γ ≈ 0.5772.
        let n = 100_000;
        let gamma = 0.577_215_664_901_532_9;
        let approx = (n as f64).ln() + gamma + 1.0 / (2.0 * n as f64);
        assert!((harmonic(n) - approx).abs() < 1e-9);
    }
}
