//! Plain-text table rendering for experiment harnesses.
//!
//! The `table1` binary and the Criterion benches print measured analogues of
//! the paper's Table 1; [`TextTable`] renders aligned ASCII tables without
//! pulling in a formatting dependency.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// let mut t = bi_util::table::TextTable::new(vec!["k", "ratio"]);
/// t.add_row(vec!["4".to_string(), "3.20".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("ratio"));
/// assert!(s.contains("3.20"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 4 significant digits, used consistently in harness
/// output so tables stay narrow.
///
/// # Examples
///
/// ```
/// assert_eq!(bi_util::table::fmt_f64(1234.5678), "1235");
/// assert_eq!(bi_util::table::fmt_f64(0.0125), "0.01250");
/// ```
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let digits = 4i32;
    let magnitude = x.abs().log10().floor() as i32;
    let decimals = (digits - 1 - magnitude).max(0) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_is_empty_track_rows() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_handles_extremes() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert!(fmt_f64(123.456).starts_with("123.5"));
    }
}
