//! Summary statistics and growth-rate fitting for the experiment harnesses.
//!
//! The benches reproduce *asymptotic shapes* (linear in `k`, logarithmic in
//! `n`, …). [`log_log_slope`] fits `y ≈ c·x^α` on a log–log scale so a
//! measured ratio series can be classified: `α ≈ 1` means linear growth,
//! `α ≈ 0` with positive [`linear_fit`] slope against `ln x` means
//! logarithmic growth, `α ≈ -1` means inverse-linear decay.

/// Summary statistics (count, mean, min, max, standard deviation) of a
/// sample.
///
/// # Examples
///
/// ```
/// let s = bi_util::Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum value (+∞ for an empty sample).
    pub min: f64,
    /// Maximum value (−∞ for an empty sample).
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        let count = xs.len();
        if count == 0 {
            return Summary {
                count,
                mean: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                std_dev: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std_dev: var.sqrt(),
        }
    }
}

/// Ordinary least-squares fit `y ≈ a + b·x`; returns `(a, b)`.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length, have fewer than two points, or
/// all `xs` coincide (the slope is then undefined).
///
/// # Examples
///
/// ```
/// let (a, b) = bi_util::linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((a - 1.0).abs() < 1e-12);
/// assert!((b - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "all x values coincide; slope undefined");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Fits `y ≈ c·x^α` by regressing `ln y` on `ln x`; returns the exponent `α`.
///
/// Used by the benches to classify measured ratio growth: a ratio that is
/// `Θ(k)` fits `α ≈ 1`, a `Θ(1/k)` ratio fits `α ≈ -1`, and a `Θ(log n)`
/// ratio fits a small positive `α` that shrinks as `n` grows (the benches
/// additionally regress against `ln x` directly in that case).
///
/// # Panics
///
/// Panics if any sample is non-positive or fewer than two points are given.
///
/// # Examples
///
/// ```
/// let xs = [2.0, 4.0, 8.0, 16.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
/// let alpha = bi_util::log_log_slope(&xs, &ys);
/// assert!((alpha - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "log-log fit requires positive samples"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample_is_neutral() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_computes_std_dev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| -2.0 + 0.5 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a + 2.0).abs() < 1e-12);
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn linear_fit_rejects_mismatched_lengths() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn log_log_slope_detects_inverse_growth() {
        let xs = [2.0, 4.0, 8.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 / x).collect();
        assert!((log_log_slope(&xs, &ys) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_log_slope_of_logarithmic_series_is_sublinear() {
        let xs: Vec<f64> = (3..12).map(|i| (1u64 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let alpha = log_log_slope(&xs, &ys);
        assert!(alpha > 0.0 && alpha < 0.5, "alpha = {alpha}");
    }
}
