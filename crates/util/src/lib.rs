//! Shared numeric and reporting utilities for the `bayesian-ignorance`
//! workspace.
//!
//! This crate deliberately stays tiny: a totally ordered [`f64`] wrapper
//! ([`TotalF64`]), harmonic numbers ([`harmonic`]), tolerance-based float
//! comparison ([`approx_eq`], [`approx_le`]), summary statistics and
//! log–log growth fitting ([`stats`]), seeded RNG construction
//! ([`rng::seeded`]), plain-text table rendering for the experiment
//! harnesses ([`table::TextTable`]), the canonical JSON wire codec of the
//! solve service ([`json`]), the FNV-1a content-address hash
//! ([`hash`]), and the CRC-32 frame checksum of the disk cache tier
//! ([`crc`]).
//!
//! # Examples
//!
//! ```
//! use bi_util::{harmonic, TotalF64};
//!
//! assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
//! let mut xs = vec![TotalF64::new(2.0), TotalF64::new(1.0)];
//! xs.sort();
//! assert_eq!(xs[0].get(), 1.0);
//! ```

pub mod crc;
pub mod float;
// Private module: its single item is re-exported below, and rustdoc rejects
// a root-level module and function sharing the name `harmonic`.
mod harmonic;
pub mod hash;
pub mod json;
pub mod rng;
pub mod stats;
pub mod table;

pub use crc::{crc32, Crc32};
pub use float::{approx_eq, approx_le, TotalF64, EPS};
pub use harmonic::harmonic;
pub use hash::{fnv1a, FnvBuildHasher};
pub use json::{CodecError, Decode, Encode, Json};
pub use stats::{linear_fit, log_log_slope, Summary};
