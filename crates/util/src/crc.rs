//! CRC-32 (IEEE 802.3) — the frame checksum of the disk cache tier.
//!
//! The service's append-only cache log frames every record with a CRC of
//! its payload so a torn tail (crash mid-append) is detected on boot and
//! truncated instead of served. The polynomial is the reflected IEEE one
//! (`0xEDB88320`), table-driven, fully deterministic across platforms —
//! the same properties that made FNV-1a ([`crate::hash`]) the cache's
//! content address.
//!
//! # Examples
//!
//! ```
//! use bi_util::crc32;
//!
//! // The classic check value of the IEEE polynomial.
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//! assert_eq!(crc32(b""), 0);
//! ```

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry table of the byte-at-a-time reflected algorithm, built
/// at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// An incremental CRC-32 accumulator, for checksumming a frame that is
/// written in pieces (key bytes then value bytes) without concatenating.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32 { state: !0 }
    }
}

impl Crc32 {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32::default()
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut acc = Crc32::new();
        acc.update(b"key-bytes");
        acc.update(b"");
        acc.update(b"value-bytes");
        assert_eq!(acc.finish(), crc32(b"key-bytesvalue-bytes"));
    }

    #[test]
    fn corruption_is_detected() {
        let frame = b"canonical-request-bytes".to_vec();
        let good = crc32(&frame);
        for i in 0..frame.len() {
            let mut torn = frame.clone();
            torn[i] ^= 0x01;
            assert_ne!(
                crc32(&torn),
                good,
                "bit flip at byte {i} must change the CRC"
            );
        }
        let mut truncated = frame;
        truncated.pop();
        assert_ne!(crc32(&truncated), good);
    }
}
