//! A minimal, dependency-free JSON value with a parser, a compact
//! printer, and a **canonical** printer — the wire format of the solve
//! service (`bi-service`).
//!
//! The grammar is standard JSON extended with the bare tokens `Infinity`
//! and `-Infinity` (NCS games charge `∞` for infeasible actions, so the
//! codec must round-trip infinite costs). NaN is rejected everywhere.
//!
//! Canonical form — produced by [`Json::canonical_string`] — is the
//! deterministic byte representation the content-addressed cache hashes:
//! no whitespace, object keys sorted lexicographically, numbers printed
//! by Rust's shortest-round-trip `f64` formatter. Two values compare
//! equal iff their canonical bytes are equal.
//!
//! The [`Encode`]/[`Decode`] traits connect domain types to [`Json`];
//! implementations live next to the types they serialize (`bi-core`,
//! `bi-graph`, `bi-ncs`).
//!
//! # Examples
//!
//! ```
//! use bi_util::json::Json;
//!
//! let v = Json::parse(r#"{"b": 1, "a": [true, null, Infinity]}"#).unwrap();
//! assert_eq!(v.canonical_string(), r#"{"a":[true,null,Infinity],"b":1}"#);
//! assert_eq!(v.get("b").unwrap().as_f64().unwrap(), 1.0);
//! ```

use std::error::Error;
use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// Largest integer exactly representable in an `f64`: `2^53`.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0;

/// A JSON value.
///
/// Objects preserve insertion order for readable compact printing; the
/// canonical printer sorts keys, so key order never affects canonical
/// bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (finite or `±Infinity`, never NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN (the wire format has no NaN).
    #[must_use]
    pub fn num(v: f64) -> Json {
        assert!(!v.is_nan(), "JSON numbers must not be NaN");
        Json::Num(v)
    }

    /// A `u64` encoded as a decimal **string** (u64 exceeds exact `f64`
    /// range, so numbers would silently lose precision).
    #[must_use]
    pub fn from_u64(v: u64) -> Json {
        Json::Str(v.to_string())
    }

    /// A `u128` encoded as a decimal **string**.
    #[must_use]
    pub fn from_u128(v: u128) -> Json {
        Json::Str(v.to_string())
    }

    /// The value of `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative exact integer, if this is an integral
    /// number in `[0, 2^53]`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= MAX_SAFE_INT && v.fract() == 0.0 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The `u64` encoded as a decimal string (see [`Json::from_u64`]).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The `u128` encoded as a decimal string (see [`Json::from_u128`]).
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the failure.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// The canonical byte form: compact, object keys sorted, shortest
    /// round-trip number formatting. This is what content addressing
    /// hashes.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    /// Canonical bytes — [`Json::canonical_string`] as a byte vector.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.canonical_string().into_bytes()
    }

    fn write(&self, out: &mut String, canonical: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out, canonical);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                if canonical {
                    order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
                }
                for (n, &i) in order.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    write_escaped(&pairs[i].0, out);
                    out.push(':');
                    pairs[i].1.write(out, canonical);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact printing in insertion order (canonical printing sorts keys
    /// — use [`Json::canonical_string`] for hashing).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, false);
        f.write_str(&out)
    }
}

fn write_num(v: f64, out: &mut String) {
    debug_assert!(!v.is_nan());
    if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's Display for f64 is the shortest decimal that round-trips,
        // which makes it a deterministic canonical form.
        use fmt::Write;
        write!(out, "{v}").expect("writing to a String cannot fail");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub pos: usize,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'I') => self.eat("Infinity", Json::Num(f64::INFINITY)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `{`
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening `"`
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8; copy the whole sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0xC0 == 0x80 /* continuation byte */)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a low surrogate pair if
    /// needed); `self.pos` is on the first hex digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                self.pos = start;
                return self.eat("-Infinity", Json::Num(f64::NEG_INFINITY));
            }
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        match text.parse::<f64>() {
            Ok(v) if v.is_nan() => Err(self.err("NaN is not a valid number")),
            Ok(v) => Ok(Json::Num(v)),
            Err(_) => Err(self.err(format!("invalid number `{text}`"))),
        }
    }
}

/// Single-pass check that `bytes` are already in canonical form — the
/// exact byte representation [`Json::canonical_string`] produces: one
/// JSON value, no whitespace, object keys strictly sorted, minimal
/// string escapes, and plainly formatted numbers.
///
/// This is the gate of the serving tier's **zero-copy hot path**: a
/// `POST /solve` body that passes can be content-addressed by its raw
/// bytes (no value-tree construction, no re-encode) because canonical
/// bytes are a bijection onto values. The check is *conservative where
/// cheapness demands it*:
///
/// * **False negatives are harmless** — a canonical body misjudged
///   non-canonical (e.g. an object key containing escape sequences,
///   where escaped-byte order can differ from decoded-character order)
///   just falls back to the parse → canonicalize path.
/// * **False positives are harmless too** — the scanner validates the
///   full JSON grammar but only the *shape* of canonical numbers (no
///   leading zeros, no exponent, no trailing fractional zeros), not
///   shortest-round-trip digits, so `0.3000000000000000444` passes
///   although the canonical printer would emit `0.30000000000000004`.
///   Callers key caches by the **exact bytes**, so two near-canonical
///   spellings simply occupy two cache entries; they can never alias.
///
/// The scan allocates nothing and touches each byte once.
#[must_use]
pub fn canon_check(bytes: &[u8]) -> bool {
    let mut s = CanonScanner { bytes, pos: 0 };
    s.value(0) && s.pos == bytes.len()
}

/// The `canon_check` cursor: a no-alloc recursive-descent validator over
/// raw bytes.
struct CanonScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl CanonScanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> bool {
        if depth > MAX_DEPTH {
            return false;
        }
        match self.peek() {
            Some(b'n') => self.eat(b"null"),
            Some(b't') => self.eat(b"true"),
            Some(b'f') => self.eat(b"false"),
            Some(b'I') => self.eat(b"Infinity"),
            Some(b'"') => self.string().is_some(),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn array(&mut self, depth: usize) -> bool {
        self.pos += 1; // `[`
        if self.peek() == Some(b']') {
            self.pos += 1;
            return true;
        }
        loop {
            if !self.value(depth + 1) {
                return false;
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return true;
                }
                _ => return false,
            }
        }
    }

    fn object(&mut self, depth: usize) -> bool {
        self.pos += 1; // `{`
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return true;
        }
        // Raw key bytes of the previous entry, for the sortedness check.
        // Comparing raw (escaped) bytes equals comparing decoded keys
        // only when no escapes are involved, so `string()` reports
        // whether the key contained a backslash and we bail to the parse
        // path in that (never produced by our own codecs) case.
        let mut prev: Option<(usize, usize)> = None;
        loop {
            if self.peek() != Some(b'"') {
                return false;
            }
            let start = self.pos + 1;
            let Some(escaped) = self.string() else {
                return false;
            };
            let end = self.pos - 1;
            if escaped {
                return false; // conservative: defer escape-order cases
            }
            if let Some((ps, pe)) = prev {
                // Strictly increasing also rejects duplicate keys.
                if self.bytes[ps..pe] >= self.bytes[start..end] {
                    return false;
                }
            }
            prev = Some((start, end));
            if self.peek() != Some(b':') {
                return false;
            }
            self.pos += 1;
            if !self.value(depth + 1) {
                return false;
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return true;
                }
                _ => return false,
            }
        }
    }

    /// Validates one canonical string; returns `Some(contained_escape)`
    /// or `None` on a violation. Canonical escapes are exactly what the
    /// printer emits: `\" \\ \n \r \t` and `\u00xx` (lowercase hex) for
    /// the remaining control characters.
    fn string(&mut self) -> Option<bool> {
        self.pos += 1; // opening `"`
        let mut escaped = false;
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(escaped);
                }
                b'\\' => {
                    escaped = true;
                    self.pos += 1;
                    match self.peek()? {
                        b'"' | b'\\' | b'n' | b'r' | b't' => self.pos += 1,
                        b'u' => {
                            // Only `\u00xx` for control chars that lack a
                            // short escape; anything else would not have
                            // been produced by the canonical printer.
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            if hex[0] != b'0' || hex[1] != b'0' {
                                return None;
                            }
                            let lo = |b: u8| match b {
                                b'0'..=b'9' => Some(u32::from(b - b'0')),
                                b'a'..=b'f' => Some(u32::from(b - b'a') + 10),
                                _ => None, // uppercase hex is non-canonical
                            };
                            let v = lo(hex[2])? * 16 + lo(hex[3])?;
                            if v >= 0x20 || matches!(v, 0x09 | 0x0a | 0x0d) {
                                return None; // short escape or raw char exists
                            }
                            self.pos += 5;
                        }
                        _ => return None,
                    }
                }
                c if c < 0x20 => return None, // raw control char
                _ => self.pos += 1,
            }
        }
    }

    /// Canonical number shape: `-?(0|[1-9][0-9]*)(\.[0-9]*[1-9])?` or
    /// `-Infinity`. Rust's shortest-round-trip `f64` formatter (the
    /// canonical printer) never emits exponents, leading zeros, a bare
    /// leading `.`, or trailing fractional zeros.
    fn number(&mut self) -> bool {
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                return self.eat(b"Infinity");
            }
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        if int_len == 0 || (int_len > 1 && self.bytes[int_start] == b'0') {
            return false;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start || self.bytes[self.pos - 1] == b'0' {
                return false; // empty fraction or trailing zero
            }
        }
        // An exponent (`e`/`E`) is simply not consumed: the caller then
        // sees an unexpected byte and the check fails.
        true
    }
}

/// A domain type with a [`Json`] wire form.
pub trait Encode {
    /// The JSON representation of `self`.
    fn encode(&self) -> Json;

    /// The canonical wire bytes of `self` — deterministic, suitable for
    /// content addressing ([`crate::fnv1a`] of these bytes is the cache
    /// key of the solve service).
    fn canonical_bytes(&self) -> Vec<u8> {
        self.encode().canonical_bytes()
    }
}

/// A domain type constructible from its [`Json`] wire form.
pub trait Decode: Sized {
    /// Rebuilds a value from its JSON representation, validating as the
    /// type's constructor would.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first mismatch.
    fn decode(v: &Json) -> Result<Self, CodecError>;

    /// Parses a JSON document and decodes it in one step.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for both parse and decode failures.
    fn decode_str(input: &str) -> Result<Self, CodecError> {
        let v = Json::parse(input).map_err(|e| CodecError::new(e.to_string()))?;
        Self::decode(&v)
    }
}

/// A decode failure: a message naming the offending field or shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    msg: String,
}

impl CodecError {
    /// Creates a decode error.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError { msg: msg.into() }
    }

    /// Prefixes the message with a path segment (`ctx: msg`), for
    /// decoders recursing into fields.
    #[must_use]
    pub fn context(self, ctx: &str) -> Self {
        CodecError {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.msg)
    }
}

impl Error for CodecError {}

/// The `key` field of an object, or an error naming the missing key.
///
/// # Errors
///
/// Returns a [`CodecError`] when `v` is not an object or lacks `key`.
pub fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CodecError> {
    match v {
        Json::Obj(_) => v
            .get(key)
            .ok_or_else(|| CodecError::new(format!("missing field `{key}`"))),
        _ => Err(CodecError::new(format!(
            "expected an object with field `{key}`"
        ))),
    }
}

/// The `key` field as a number.
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not a number.
pub fn field_f64(v: &Json, key: &str) -> Result<f64, CodecError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a number")))
}

/// The `key` field as an exact non-negative integer.
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not an integer in `[0, 2^53]`.
pub fn field_usize(v: &Json, key: &str) -> Result<usize, CodecError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a non-negative integer")))
}

/// The `key` field as a boolean.
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not a boolean.
pub fn field_bool(v: &Json, key: &str) -> Result<bool, CodecError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a boolean")))
}

/// The `key` field as a string.
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not a string.
pub fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, CodecError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a string")))
}

/// The `key` field as an array.
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not an array.
pub fn field_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], CodecError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be an array")))
}

/// The `key` field as a decimal-string `u64` (see [`Json::from_u64`]).
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not a decimal string.
pub fn field_u64(v: &Json, key: &str) -> Result<u64, CodecError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a decimal string (u64)")))
}

/// The `key` field as a decimal-string `u128` (see [`Json::from_u128`]).
///
/// # Errors
///
/// Returns a [`CodecError`] when missing or not a decimal string.
pub fn field_u128(v: &Json, key: &str) -> Result<u128, CodecError> {
    field(v, key)?
        .as_u128()
        .ok_or_else(|| CodecError::new(format!("field `{key}` must be a decimal string (u128)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact_printing() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1000000000000000000000000000000",
            "Infinity",
            "-Infinity",
            r#""hello""#,
            r#"["a",1,null,{"k":true}]"#,
            r#"{"a":1,"b":[2,3]}"#,
        ];
        for case in cases {
            let v = Json::parse(case).unwrap();
            assert_eq!(v.to_string(), case, "case {case}");
        }
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let v = Json::parse(r#"{"z": {"b": 1, "a": 2}, "a": 3}"#).unwrap();
        assert_eq!(v.canonical_string(), r#"{"a":3,"z":{"a":2,"b":1}}"#);
    }

    #[test]
    fn canonical_is_invariant_under_reparse() {
        let v = Json::parse(r#"{ "x": [1.0, 2.50, 1e2], "s": "a\nb" }"#).unwrap();
        let canon = v.canonical_string();
        let reparsed = Json::parse(&canon).unwrap();
        // Key order differs after the canonical sort, so compare canonical
        // bytes (the equality content addressing relies on), not `==`.
        assert_eq!(reparsed.canonical_string(), canon);
    }

    #[test]
    fn numbers_print_shortest_form() {
        assert_eq!(Json::num(3.0).to_string(), "3");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "Infinity");
        assert_eq!(Json::num(f64::NEG_INFINITY).to_string(), "-Infinity");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected_at_construction() {
        let _ = Json::num(f64::NAN);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode é∞";
        let v = Json::Str(s.to_string());
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        // Explicit escape sequences parse too.
        let parsed = Json::parse(r#""éA 😀""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "éA 😀");
    }

    #[test]
    fn u64_and_u128_go_through_strings() {
        let v = Json::from_u64(u64::MAX);
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::from_u128(u128::MAX);
        assert_eq!(v.as_u128(), Some(u128::MAX));
        assert_eq!(Json::num(3.0).as_u64(), None, "numbers are not u64 fields");
    }

    #[test]
    fn as_usize_requires_exact_integers() {
        assert_eq!(Json::num(7.0).as_usize(), Some(7));
        assert_eq!(Json::num(7.5).as_usize(), None);
        assert_eq!(Json::num(-1.0).as_usize(), None);
        assert_eq!(Json::num(1e300).as_usize(), None);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let cases = [
            ("", "end of input"),
            ("{", "string object key"),
            ("[1,]", "expected a JSON value"),
            ("[1 2]", "expected `,` or `]`"),
            (r#"{"a":1,"a":2}"#, "duplicate"),
            (r#"{"a" 1}"#, "expected `:`"),
            ("tru", "expected `true`"),
            ("NaN", "expected a JSON value"),
            ("1.5.5", "invalid number"),
            (r#""unterminated"#, "unterminated"),
            (r#""bad \q escape""#, "invalid escape"),
            (r#""\ud800 alone""#, "surrogate"),
            ("[1] []", "trailing"),
            ("\x01", "expected a JSON value"),
        ];
        for (input, want) in cases {
            let err = Json::parse(input).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "input {input:?}: got {err}, wanted {want:?}"
            );
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut input = String::new();
        for _ in 0..200 {
            input.push('[');
        }
        assert!(Json::parse(&input)
            .unwrap_err()
            .to_string()
            .contains("nesting"));
    }

    #[test]
    fn canon_check_accepts_every_canonical_printing() {
        let cases = [
            "null",
            "true",
            "0",
            "-1.5",
            "Infinity",
            "-Infinity",
            r#""hello""#,
            r#"{ "z": {"b": 1, "a": 2}, "a": [3, 0.25, 1e2] }"#,
            r#""quote\" slash\\ nl\n tab\t ctrl\u0001 é∞""#,
            "[[[[[]]]]]",
            r#"{"game":{"kind":"matrix"},"config":null}"#,
        ];
        for case in cases {
            let canon = Json::parse(case).unwrap().canonical_string();
            assert!(
                canon_check(canon.as_bytes()),
                "canonical bytes must pass: {canon}"
            );
        }
    }

    #[test]
    fn canon_check_rejects_non_canonical_spellings() {
        let cases: &[&[u8]] = &[
            b"",
            b" null",
            b"null ",
            b"[1, 2]",
            br#"{"b":1,"a":2}"#, // unsorted keys
            br#"{"a":1,"a":2}"#, // duplicate keys
            br#"{"a" :1}"#,      // whitespace
            b"01",               // leading zero
            b"1.50",             // trailing fractional zero
            b"1.",               // empty fraction
            b"-0.5e3",           // exponent form
            b"+1",               // sign
            b"NaN",
            b"\"\\u0041\"", // printable char as \u escape
            b"\"\\u000A\"", // uppercase hex
            b"\"\\u0009\"", // short escape `\t` exists
            b"\"\n\"",      // raw control character
            br#""\/""#,     // non-canonical escape
            b"\"raw\x01ctrl\"",
            b"[1][2]", // trailing value
            br#"{"a":}"#,
            b"[1,]",
            b"tru",
        ];
        for case in cases {
            assert!(
                !canon_check(case),
                "must reject: {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn canon_check_defers_escaped_object_keys() {
        // Escaped-byte order can differ from decoded-character order, so
        // keys containing escapes conservatively fail the check (the
        // caller falls back to parse + canonicalize).
        let v = Json::Obj(vec![("a\nb".into(), Json::Null)]);
        let canon = v.canonical_string();
        assert!(!canon_check(canon.as_bytes()));
        // But escapes in *values* are fine.
        let v = Json::Obj(vec![("k".into(), Json::str("a\nb"))]);
        assert!(canon_check(v.canonical_string().as_bytes()));
    }

    #[test]
    fn canon_check_depth_limit_matches_the_parser() {
        let mut deep = String::new();
        for _ in 0..200 {
            deep.push('[');
        }
        for _ in 0..200 {
            deep.push(']');
        }
        assert!(!canon_check(deep.as_bytes()));
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(canon_check(ok.as_bytes()));
    }

    #[test]
    fn field_helpers_report_names() {
        let v = Json::parse(r#"{"n": 2, "s": "x", "b": true, "a": [], "big": "123"}"#).unwrap();
        assert_eq!(field_usize(&v, "n").unwrap(), 2);
        assert_eq!(field_f64(&v, "n").unwrap(), 2.0);
        assert_eq!(field_str(&v, "s").unwrap(), "x");
        assert!(field_bool(&v, "b").unwrap());
        assert!(field_arr(&v, "a").unwrap().is_empty());
        assert_eq!(field_u64(&v, "big").unwrap(), 123);
        assert_eq!(field_u128(&v, "big").unwrap(), 123);
        let err = field(&v, "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = field_usize(&v, "s").unwrap_err().context("outer");
        assert!(err.to_string().contains("outer: field `s`"));
        assert!(field(&Json::Null, "k").is_err());
    }
}
