//! FNV-1a hashing — the content-address function of the solve cache.
//!
//! The service layer hashes the canonical wire bytes of a solve request
//! (see [`crate::json`]) with 64-bit FNV-1a to pick a cache shard and a
//! bucket. FNV is tiny, allocation-free, and fully deterministic across
//! processes and platforms — exactly what a content-addressed cache key
//! needs (`std`'s default `SipHash` is randomly keyed per process).
//!
//! # Examples
//!
//! ```
//! use bi_util::fnv1a;
//!
//! // The well-known FNV-1a test vectors.
//! assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
//! assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
//! ```

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`std::hash::Hasher`] running 64-bit FNV-1a, for deterministic
/// `HashMap`s keyed by wire bytes.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A [`std::hash::BuildHasher`] producing [`FnvHasher`]s (deterministic,
/// unseeded — unlike `RandomState`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn known_vectors() {
        // Classic FNV-1a 64 test vectors (Noll's reference tables).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_matches_free_function() {
        let mut h = FnvBuildHasher.build_hasher();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a(b"solve:1"), fnv1a(b"solve:2"));
    }
}
