//! Seeded random-number generation helpers.
//!
//! Every randomized component in the workspace (instance generators, FRT
//! embeddings, adversary distributions) takes an explicit seed and builds its
//! generator through [`seeded`], so all experiments are reproducible
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Returns a [`StdRng`] deterministically derived from `seed`.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = bi_util::rng::seeded(7);
/// let mut b = bi_util::rng::seeded(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a fresh seed for a named sub-component from a master seed.
///
/// This keeps independent components (e.g. "graph generation" vs "prior
/// sampling") decorrelated even when driven from one master seed, without
/// the caller having to invent seed arithmetic.
///
/// # Examples
///
/// ```
/// let s1 = bi_util::rng::derive_seed(42, "graph");
/// let s2 = bi_util::rng::derive_seed(42, "prior");
/// assert_ne!(s1, s2);
/// assert_eq!(s1, bi_util::rng::derive_seed(42, "graph"));
/// ```
#[must_use]
pub fn derive_seed(master: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the master seed via splitmix64-style
    // finalization. Not cryptographic; just stable and well-spread.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u32> = (0..5).map(|_| seeded(1).random::<u32>()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded(1).random::<u64>(), seeded(2).random::<u64>());
    }

    #[test]
    fn derive_seed_separates_labels_and_masters() {
        assert_ne!(derive_seed(0, "a"), derive_seed(0, "b"));
        assert_ne!(derive_seed(0, "a"), derive_seed(1, "a"));
        assert_eq!(derive_seed(9, "frt"), derive_seed(9, "frt"));
    }
}
