//! Totally ordered floats and tolerance-based comparisons.

use std::cmp::Ordering;
use std::fmt;

/// Default absolute tolerance used across the workspace for equilibrium and
/// optimality comparisons.
///
/// The paper's constructions use cost gaps of order `1/k`; all instances in
/// this workspace keep meaningful gaps well above `1e-6`, so `1e-9` cleanly
/// separates "equal up to floating-point noise" from "strictly better".
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most [`EPS`] (absolutely or
/// relative to the larger magnitude).
///
/// # Examples
///
/// ```
/// assert!(bi_util::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!bi_util::approx_eq(1.0, 1.001));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

/// Returns `true` when `a <= b` up to [`EPS`] slack.
///
/// # Examples
///
/// ```
/// assert!(bi_util::approx_le(1.0 + 1e-12, 1.0));
/// assert!(!bi_util::approx_le(1.1, 1.0));
/// ```
#[must_use]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// An [`f64`] wrapper with a total order (via [`f64::total_cmp`]) so that
/// floating-point keys can live in ordered collections and be sorted.
///
/// NaN sorts after every other value, matching `total_cmp` semantics.
///
/// # Examples
///
/// ```
/// use bi_util::TotalF64;
/// use std::collections::BTreeSet;
///
/// let mut set = BTreeSet::new();
/// set.insert(TotalF64::new(0.5));
/// set.insert(TotalF64::new(0.25));
/// assert_eq!(set.iter().next().unwrap().get(), 0.25);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TotalF64(f64);

impl TotalF64 {
    /// Wraps a raw `f64`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        TotalF64(value)
    }

    /// Returns the wrapped value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<f64> for TotalF64 {
    fn from(value: f64) -> Self {
        TotalF64(value)
    }
}

impl From<TotalF64> for f64 {
    fn from(value: TotalF64) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 5e-13));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12)));
    }

    #[test]
    fn approx_eq_rejects_meaningful_differences() {
        assert!(!approx_eq(1.0, 1.0001));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn approx_le_allows_slack() {
        assert!(approx_le(2.0, 2.0));
        assert!(approx_le(2.0 + 1e-12, 2.0));
        assert!(!approx_le(2.1, 2.0));
    }

    #[test]
    fn total_f64_orders_like_f64_on_normal_values() {
        let mut xs = vec![TotalF64::new(3.5), TotalF64::new(-1.0), TotalF64::new(0.0)];
        xs.sort();
        let raw: Vec<f64> = xs.into_iter().map(TotalF64::get).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.5]);
    }

    #[test]
    fn total_f64_handles_nan_deterministically() {
        let mut xs = [TotalF64::new(f64::NAN), TotalF64::new(1.0)];
        xs.sort();
        assert_eq!(xs[0].get(), 1.0);
        assert!(xs[1].get().is_nan());
    }

    #[test]
    fn total_f64_roundtrips_through_from() {
        let x: TotalF64 = 2.25.into();
        let y: f64 = x.into();
        assert_eq!(y, 2.25);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", TotalF64::new(1.0)).is_empty());
    }
}
