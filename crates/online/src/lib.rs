//! Online Steiner trees and the Imase–Waxman lower-bound machinery.
//!
//! Lemma 3.5 of *Bayesian ignorance* reduces the `Ω(log n)` lower bound on
//! `optP/optC` for undirected Bayesian NCS games to the classical
//! Imase–Waxman `Ω(log n)` lower bound for online Steiner trees on
//! *diamond graphs*: strategies of the Bayesian game correspond to online
//! algorithms, the common prior to the adversary's distribution over
//! request sequences. This crate provides:
//!
//! * [`steiner::OnlineSteiner`] — the online Steiner tree problem and the
//!   canonical greedy algorithm (connect each request by a cheapest path
//!   to the tree built so far, bought edges become free);
//! * [`diamond::DiamondGraph`] — the recursive diamond graphs `D_j`
//!   (each level replaces every edge by two parallel two-edge paths);
//! * [`adversary::DiamondAdversary`] — the randomized adversary that walks
//!   one midpoint choice per diamond down the levels, producing request
//!   sequences with offline optimum 1 but expected online cost `Ω(j)`.
//!
//! # Examples
//!
//! ```
//! use bi_online::diamond::DiamondGraph;
//! use bi_online::adversary::DiamondAdversary;
//! use bi_online::steiner::OnlineSteiner;
//!
//! let d = DiamondGraph::new(2);
//! let adversary = DiamondAdversary::new(&d);
//! let seq = adversary.sample(&mut bi_util::rng::seeded(5));
//! let run = OnlineSteiner::greedy(d.graph(), d.source(), &seq.requests);
//! assert!(run.total_cost >= 1.0 - 1e-9); // OPT(σ) = 1 exactly
//! ```

pub mod adversary;
pub mod diamond;
pub mod steiner;
