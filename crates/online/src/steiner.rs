//! The online Steiner tree problem and the greedy algorithm.

use bi_graph::{EdgeId, Graph, NodeId};

/// The trace of one online Steiner run.
#[derive(Clone, Debug)]
pub struct OnlineSteiner {
    /// Total cost of all bought edges.
    pub total_cost: f64,
    /// All bought edges, in purchase order (deduplicated).
    pub bought: Vec<EdgeId>,
    /// Incremental cost paid at each request step.
    pub step_costs: Vec<f64>,
}

impl OnlineSteiner {
    /// Runs the greedy online Steiner algorithm: each request is connected
    /// to the component of `root` by a cheapest path in which already
    /// bought edges are free.
    ///
    /// Greedy is `O(log n)`-competitive (Imase–Waxman), which is optimal
    /// up to constants; the diamond adversary in this crate realizes the
    /// matching lower bound.
    ///
    /// # Panics
    ///
    /// Panics if the graph is directed, a node is out of range, or some
    /// request is unreachable from the root.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = bi_graph::generators::path_graph(bi_graph::Direction::Undirected, 3, 1.0);
    /// let run = bi_online::steiner::OnlineSteiner::greedy(
    ///     &g,
    ///     bi_graph::NodeId::new(0),
    ///     &[bi_graph::NodeId::new(2), bi_graph::NodeId::new(1)],
    /// );
    /// assert_eq!(run.total_cost, 2.0);
    /// assert_eq!(run.step_costs, vec![2.0, 0.0]);
    /// ```
    #[must_use]
    pub fn greedy(graph: &Graph, root: NodeId, requests: &[NodeId]) -> Self {
        assert!(
            !graph.is_directed(),
            "online Steiner runs on undirected graphs"
        );
        let mut bought_flags = vec![false; graph.edge_count()];
        let mut bought = Vec::new();
        let mut step_costs = Vec::with_capacity(requests.len());
        let mut total = 0.0;
        for &r in requests {
            let sp = bi_graph::dijkstra(graph, r, |e| {
                if bought_flags[e.index()] {
                    0.0
                } else {
                    graph.edge(e).cost()
                }
            });
            // Connect to the cheapest vertex of the current tree (root
            // component). The tree contains the root and all endpoints of
            // bought edges.
            let path = sp
                .path_edges(root)
                .expect("request must be able to reach the root");
            let mut step = 0.0;
            for e in path {
                if !bought_flags[e.index()] {
                    bought_flags[e.index()] = true;
                    bought.push(e);
                    step += graph.edge(e).cost();
                }
            }
            total += step;
            step_costs.push(step);
        }
        OnlineSteiner {
            total_cost: total,
            bought,
            step_costs,
        }
    }
}

/// The offline optimum for a request set: an exact Steiner tree when the
/// terminal count permits, otherwise the metric-closure 2-approximation.
/// Returns `(cost, is_exact)`.
///
/// # Panics
///
/// Panics if the graph is directed or the terminals are disconnected.
#[must_use]
pub fn offline_optimum(graph: &Graph, root: NodeId, requests: &[NodeId]) -> (f64, bool) {
    let mut terminals = vec![root];
    terminals.extend_from_slice(requests);
    terminals.sort();
    terminals.dedup();
    if terminals.len() <= bi_graph::steiner::MAX_EXACT_TERMINALS {
        let tree = bi_graph::steiner::steiner_tree(graph, &terminals)
            .expect("terminals must be connected");
        (tree.cost, true)
    } else {
        let tree = bi_graph::steiner::metric_closure_approx(graph, &terminals)
            .expect("terminals must be connected");
        (tree.cost, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::{generators, Direction};

    #[test]
    fn greedy_reuses_bought_edges() {
        let g = generators::path_graph(Direction::Undirected, 5, 1.0);
        let run = OnlineSteiner::greedy(
            &g,
            NodeId::new(0),
            &[NodeId::new(4), NodeId::new(2), NodeId::new(3)],
        );
        // First request buys the whole path; later ones are free.
        assert_eq!(run.total_cost, 4.0);
        assert_eq!(run.step_costs, vec![4.0, 0.0, 0.0]);
        assert_eq!(run.bought.len(), 4);
    }

    #[test]
    fn greedy_on_star_buys_each_spoke() {
        let g = generators::star_graph(Direction::Undirected, 4, 2.0);
        let reqs: Vec<NodeId> = (1..=4).map(NodeId::new).collect();
        let run = OnlineSteiner::greedy(&g, NodeId::new(0), &reqs);
        assert_eq!(run.total_cost, 8.0);
        assert!(run.step_costs.iter().all(|&c| c == 2.0));
    }

    #[test]
    fn greedy_is_within_log_factor_of_optimum_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnp_connected(Direction::Undirected, 20, 0.2, (0.5, 2.0), seed);
            let reqs: Vec<NodeId> = (1..8).map(NodeId::new).collect();
            let run = OnlineSteiner::greedy(&g, NodeId::new(0), &reqs);
            let (opt, exact) = offline_optimum(&g, NodeId::new(0), &reqs);
            assert!(exact);
            // H(7) ≈ 2.59; allow the theoretical O(log k) room.
            assert!(
                run.total_cost <= 4.0 * opt + 1e-9,
                "seed {seed}: greedy {} vs opt {opt}",
                run.total_cost
            );
            assert!(run.total_cost >= opt - 1e-9);
        }
    }

    #[test]
    fn repeat_requests_cost_nothing() {
        let g = generators::path_graph(Direction::Undirected, 3, 1.0);
        let r = NodeId::new(2);
        let run = OnlineSteiner::greedy(&g, NodeId::new(0), &[r, r, r]);
        assert_eq!(run.total_cost, 2.0);
        assert_eq!(run.step_costs[1], 0.0);
    }

    #[test]
    fn requesting_the_root_is_free() {
        let g = generators::path_graph(Direction::Undirected, 2, 1.0);
        let run = OnlineSteiner::greedy(&g, NodeId::new(0), &[NodeId::new(0)]);
        assert_eq!(run.total_cost, 0.0);
    }
}
