//! The Imase–Waxman adversary distribution on diamond graphs.
//!
//! The adversary maintains an *active path* from `s` to `t`: initially the
//! base edge; at each level it picks, uniformly and independently, one of
//! the two midpoints of every diamond sitting on the active path, requests
//! those midpoints, and recurses on the refined path. Every sequence in
//! the support has offline optimum exactly 1 (the final active path), yet
//! any online algorithm — knowing the distribution but not the coin flips
//! — pays `Ω(levels)` in expectation, because at each level half of its
//! already-bought edges miss the freshly chosen midpoints.

use rand::rngs::StdRng;
use rand::Rng;

use bi_graph::NodeId;

use crate::diamond::DiamondGraph;

/// One sampled request sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestSequence {
    /// The requested vertices: the sink, then the chosen midpoints level
    /// by level (level ℓ contributes `2^{ℓ-1}` requests).
    pub requests: Vec<NodeId>,
    /// The midpoint choice (0/1) per diamond per level.
    pub choices: Vec<Vec<u8>>,
    /// The probability of this sequence under the adversary distribution.
    pub probability: f64,
}

/// The adversary distribution for a given diamond graph.
///
/// # Examples
///
/// ```
/// use bi_online::{adversary::DiamondAdversary, diamond::DiamondGraph};
///
/// let d = DiamondGraph::new(3);
/// let adv = DiamondAdversary::new(&d);
/// let seq = adv.sample(&mut bi_util::rng::seeded(1));
/// // sink + 1 + 2 + 4 midpoints
/// assert_eq!(seq.requests.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct DiamondAdversary {
    diamond: DiamondGraph,
}

impl DiamondAdversary {
    /// Creates the adversary for `diamond` (cloned; diamond graphs in the
    /// experiments are small).
    #[must_use]
    pub fn new(diamond: &DiamondGraph) -> Self {
        DiamondAdversary {
            diamond: diamond.clone(),
        }
    }

    /// Number of random bits (= total midpoint choices) a sequence uses.
    #[must_use]
    pub fn num_choices(&self) -> u32 {
        let j = self.diamond.levels();
        (1u32 << j) - 1 // 1 + 2 + … + 2^{j-1}
    }

    /// Samples a request sequence.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> RequestSequence {
        let j = self.diamond.levels();
        let choices: Vec<Vec<u8>> = (1..=j)
            .map(|level| {
                let count = 1usize << (level - 1);
                (0..count).map(|_| u8::from(rng.random_bool(0.5))).collect()
            })
            .collect();
        self.realize(choices)
    }

    /// Enumerates the entire support (all `2^(2^j − 1)` sequences).
    ///
    /// # Panics
    ///
    /// Panics if the diamond has more than 4 levels (the support would
    /// exceed 32768 sequences).
    #[must_use]
    pub fn enumerate_all(&self) -> Vec<RequestSequence> {
        let bits = self.num_choices();
        assert!(
            bits <= 15,
            "support of size 2^{bits} too large to enumerate"
        );
        let j = self.diamond.levels();
        (0..(1u32 << bits))
            .map(|mask| {
                let mut choices = Vec::with_capacity(j as usize);
                let mut bit = 0;
                for level in 1..=j {
                    let count = 1usize << (level - 1);
                    choices.push(
                        (0..count)
                            .map(|_| {
                                let c = ((mask >> bit) & 1) as u8;
                                bit += 1;
                                c
                            })
                            .collect(),
                    );
                }
                self.realize(choices)
            })
            .collect()
    }

    /// Materializes the request sequence determined by explicit midpoint
    /// choices.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong shape (`2^{ℓ-1}` entries of 0/1
    /// per level `ℓ`).
    #[must_use]
    pub fn realize(&self, choices: Vec<Vec<u8>>) -> RequestSequence {
        let j = self.diamond.levels();
        assert_eq!(choices.len(), j as usize, "one choice vector per level");
        let mut requests = vec![self.diamond.sink()];
        // Active diamonds at level 1: the single top diamond (index 0).
        let mut active: Vec<usize> = if j >= 1 { vec![0] } else { Vec::new() };
        for level in 1..=j {
            let level_choices = &choices[(level - 1) as usize];
            assert_eq!(
                level_choices.len(),
                active.len(),
                "level {level} needs one choice per active diamond"
            );
            let diamonds = self.diamond.diamonds_at(level);
            let mut next_active = Vec::with_capacity(active.len() * 2);
            for (&d_idx, &c) in active.iter().zip(level_choices) {
                assert!(c <= 1, "choices are binary");
                let d = &diamonds[d_idx];
                requests.push(NodeId::new(d.mids[c as usize]));
                if level < j {
                    next_active.extend_from_slice(&d.child_edges[c as usize]);
                }
            }
            active = next_active;
        }
        let probability = 0.5f64.powi(self.num_choices() as i32);
        RequestSequence {
            requests,
            choices,
            probability,
        }
    }

    /// The diamond graph this adversary plays on.
    #[must_use]
    pub fn diamond(&self) -> &DiamondGraph {
        &self.diamond
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::{offline_optimum, OnlineSteiner};

    #[test]
    fn sequence_shape_matches_levels() {
        let d = DiamondGraph::new(3);
        let adv = DiamondAdversary::new(&d);
        let seq = adv.sample(&mut bi_util::rng::seeded(0));
        assert_eq!(seq.requests.len(), 1 + 1 + 2 + 4);
        assert!((seq.probability - 0.5f64.powi(7)).abs() < 1e-15);
    }

    #[test]
    fn every_sequence_has_offline_optimum_one() {
        let d = DiamondGraph::new(2);
        let adv = DiamondAdversary::new(&d);
        for seq in adv.enumerate_all() {
            let (opt, exact) = offline_optimum(d.graph(), d.source(), &seq.requests);
            assert!(exact);
            assert!(
                (opt - 1.0).abs() < 1e-9,
                "sequence {:?}: opt {opt}",
                seq.choices
            );
        }
    }

    #[test]
    fn support_probabilities_sum_to_one() {
        let d = DiamondGraph::new(3);
        let adv = DiamondAdversary::new(&d);
        let total: f64 = adv.enumerate_all().iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_greedy_cost_grows_with_depth() {
        // The heart of Imase–Waxman: expected online cost grows linearly
        // in the number of levels while OPT stays 1.
        let mut expected = Vec::new();
        for j in 1..=4u32 {
            let d = DiamondGraph::new(j);
            let adv = DiamondAdversary::new(&d);
            let mut rng = bi_util::rng::seeded(17);
            let samples = 64;
            let total: f64 = (0..samples)
                .map(|_| {
                    let seq = adv.sample(&mut rng);
                    OnlineSteiner::greedy(d.graph(), d.source(), &seq.requests).total_cost
                })
                .sum();
            expected.push(total / f64::from(samples));
        }
        // Strictly increasing and roughly additive in j.
        for w in expected.windows(2) {
            assert!(w[1] > w[0] + 0.05, "{expected:?}");
        }
        assert!(
            expected[3] >= 1.5,
            "depth 4 should cost well above OPT=1: {expected:?}"
        );
    }

    #[test]
    fn realize_rejects_malformed_choices() {
        let d = DiamondGraph::new(2);
        let adv = DiamondAdversary::new(&d);
        let result = std::panic::catch_unwind(|| adv.realize(vec![vec![0]]));
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_choices_reproduce() {
        let d = DiamondGraph::new(2);
        let adv = DiamondAdversary::new(&d);
        let a = adv.realize(vec![vec![1], vec![0, 1]]);
        let b = adv.realize(vec![vec![1], vec![0, 1]]);
        assert_eq!(a, b);
    }
}
