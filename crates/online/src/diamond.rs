//! Recursive diamond graphs.
//!
//! `D_0` is a single unit-cost edge `s–t`; `D_{j+1}` replaces every edge of
//! `D_j` (of cost `c`) by two parallel length-2 paths through fresh
//! midpoints, each new edge costing `c/2`. Every "canonical" `s–t` path
//! that picks one midpoint per traversed diamond has total length exactly
//! 1, which is what makes these graphs the classical hard instance for
//! online Steiner trees (Imase–Waxman) and, through Lemma 3.5, for
//! Bayesian ignorance.

use bi_graph::{Direction, Graph, NodeId};

/// One diamond: the split of a previous-level edge `top–bottom` into two
/// parallel paths via `mids[0]` and `mids[1]`.
#[derive(Clone, Debug)]
pub struct Diamond {
    /// Upper endpoint of the split edge.
    pub top: usize,
    /// Lower endpoint of the split edge.
    pub bottom: usize,
    /// The two fresh midpoints.
    pub mids: [usize; 2],
    /// For each midpoint choice, the indices (into the next level's edge
    /// list) of the two edges `top–mid` and `mid–bottom`.
    pub child_edges: [[usize; 2]; 2],
}

/// A fully built diamond graph `D_j` with its per-level diamond structure.
///
/// # Examples
///
/// ```
/// let d = bi_online::diamond::DiamondGraph::new(2);
/// assert_eq!(d.levels(), 2);
/// assert_eq!(d.graph().node_count(), 12); // 2 + 2 + 8
/// assert_eq!(d.graph().edge_count(), 16); // 4²
/// ```
#[derive(Clone, Debug)]
pub struct DiamondGraph {
    graph: Graph,
    source: usize,
    sink: usize,
    /// `diamonds[ℓ-1][i]` is the `i`-th diamond created at level `ℓ`; it
    /// splits the `i`-th edge of level `ℓ-1`.
    diamonds: Vec<Vec<Diamond>>,
}

impl DiamondGraph {
    /// Builds `D_j`.
    ///
    /// # Panics
    ///
    /// Panics if `levels > 8` (the graph would have > 87 thousand nodes,
    /// beyond anything the experiments need).
    #[must_use]
    pub fn new(levels: u32) -> Self {
        assert!(levels <= 8, "diamond depth {levels} too large");
        let mut node_count = 2usize; // s = 0, t = 1
        let source = 0usize;
        let sink = 1usize;
        // Edge lists per level, as (u, v) node pairs; level 0 is the base
        // edge.
        let mut current: Vec<(usize, usize)> = vec![(source, sink)];
        let mut diamonds: Vec<Vec<Diamond>> = Vec::with_capacity(levels as usize);
        for _ in 0..levels {
            let mut next: Vec<(usize, usize)> = Vec::with_capacity(current.len() * 4);
            let mut level_diamonds = Vec::with_capacity(current.len());
            for &(u, v) in &current {
                let m1 = node_count;
                let m2 = node_count + 1;
                node_count += 2;
                let base = next.len();
                next.push((u, m1));
                next.push((m1, v));
                next.push((u, m2));
                next.push((m2, v));
                level_diamonds.push(Diamond {
                    top: u,
                    bottom: v,
                    mids: [m1, m2],
                    child_edges: [[base, base + 1], [base + 2, base + 3]],
                });
            }
            diamonds.push(level_diamonds);
            current = next;
        }
        let mut graph = Graph::with_nodes(Direction::Undirected, node_count);
        let edge_cost = 0.5f64.powi(levels as i32);
        for &(u, v) in &current {
            graph.add_edge(NodeId::new(u), NodeId::new(v), edge_cost);
        }
        DiamondGraph {
            graph,
            source,
            sink,
            diamonds,
        }
    }

    /// The underlying undirected graph (only the final-level edges exist).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The source vertex `s`.
    #[must_use]
    pub fn source(&self) -> NodeId {
        NodeId::new(self.source)
    }

    /// The sink vertex `t`.
    #[must_use]
    pub fn sink(&self) -> NodeId {
        NodeId::new(self.sink)
    }

    /// Number of subdivision levels `j`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.diamonds.len() as u32
    }

    /// The diamonds created at level `ℓ` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`DiamondGraph::levels`].
    #[must_use]
    pub fn diamonds_at(&self, level: u32) -> &[Diamond] {
        assert!(level >= 1 && level <= self.levels(), "level out of range");
        &self.diamonds[(level - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_the_recursion() {
        for j in 0..5u32 {
            let d = DiamondGraph::new(j);
            let expected_edges = 4usize.pow(j);
            assert_eq!(d.graph().edge_count(), expected_edges, "level {j}");
            let expected_nodes = 2 + 2 * (4usize.pow(j) - 1) / 3;
            assert_eq!(d.graph().node_count(), expected_nodes, "level {j}");
        }
    }

    #[test]
    fn source_to_sink_distance_is_one_at_every_level() {
        for j in 0..5u32 {
            let d = DiamondGraph::new(j);
            let (dist, _) = bi_graph::shortest_path(d.graph(), d.source(), d.sink()).unwrap();
            assert!((dist - 1.0).abs() < 1e-12, "level {j}: {dist}");
        }
    }

    #[test]
    fn level_one_diamond_splits_the_base_edge() {
        let d = DiamondGraph::new(1);
        let ds = d.diamonds_at(1);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].top, 0);
        assert_eq!(ds[0].bottom, 1);
        assert_eq!(ds[0].mids, [2, 3]);
    }

    #[test]
    fn child_edges_reference_the_next_level() {
        let d = DiamondGraph::new(2);
        // Level-1 diamond's child edges index into level-1's edge list,
        // which level-2 diamonds split one-to-one.
        let top = &d.diamonds_at(1)[0];
        for choice in 0..2 {
            for &edge_idx in &top.child_edges[choice] {
                let child = &d.diamonds_at(2)[edge_idx];
                // The child diamond splits an edge incident to the chosen
                // midpoint.
                let m = top.mids[choice];
                assert!(child.top == m || child.bottom == m);
            }
        }
    }

    #[test]
    fn midpoint_path_through_every_level_has_length_one() {
        let d = DiamondGraph::new(3);
        // Always choose midpoint 0: the resulting canonical path must have
        // total length 1 (verified via shortest path through the forced
        // midpoint of the top diamond and the structure below it).
        let m = NodeId::new(d.diamonds_at(1)[0].mids[0]);
        let (d1, _) = bi_graph::shortest_path(d.graph(), d.source(), m).unwrap();
        let (d2, _) = bi_graph::shortest_path(d.graph(), m, d.sink()).unwrap();
        assert!((d1 + d2 - 1.0).abs() < 1e-12);
    }
}
