//! Lemma 3.3 (Fig. 1): the `G_k` game — *ignorance is bliss*.
//!
//! The graph `G_k` (Anshelevich et al.'s price-of-stability lower bound):
//! common source `x`; sinks `y_1..y_{k-1}` with direct edges `x→y_i` of
//! cost `1/i`; a hub `z` with edge `x→z` of cost `1+ε` and free edges
//! `z→y_i`. Agents `1..k-1` deterministically travel `x→y_i`; agent `k`
//! travels `x→z` with probability 1/2 and stays put otherwise.
//!
//! With local views, the 1/2 chance that agent `k` subsidizes the hub
//! makes the hub route dominant for agent 1, then inductively for all
//! agents (for `ε < 1/(2k-1)`): the **unique** Bayesian equilibrium routes
//! everyone through `z` at social cost `1+ε` — which is also the global
//! optimum. With global views, the state where agent `k` is absent has the
//! all-direct profile as its unique equilibrium, costing `H(k-1)`, so
//! `best-eqC ≥ H(k-1)/2 = Ω(log k)` while `worst-eqP = optC + ε·O(1)`.

use bi_core::measures::Measures;
use bi_graph::{Direction, Graph, NodeId};
use bi_ncs::{BayesianNcsGame, NcsError, Prior, SolveError, SolveReport, Solver};
use bi_util::harmonic;

/// The Lemma 3.3 construction.
#[derive(Clone, Debug)]
pub struct GkGame {
    k: usize,
    epsilon: f64,
    game: BayesianNcsGame,
}

impl GkGame {
    /// Builds `G_k` for `k ≥ 2` agents with the default
    /// `ε = 1/(2k)` (any `0 < ε < 1/(2k-1)` makes the hub equilibrium
    /// unique).
    ///
    /// # Errors
    ///
    /// Propagates NCS construction errors (cannot occur for `k ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Result<Self, NcsError> {
        assert!(k >= 2, "G_k needs at least two agents");
        Self::with_epsilon(k, 1.0 / (2.0 * k as f64))
    }

    /// Builds `G_k` with an explicit `ε`.
    ///
    /// # Errors
    ///
    /// Propagates NCS construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `ε ≤ 0`.
    pub fn with_epsilon(k: usize, epsilon: f64) -> Result<Self, NcsError> {
        assert!(k >= 2, "G_k needs at least two agents");
        assert!(epsilon > 0.0, "ε must be positive");
        let mut graph = Graph::new(Direction::Directed);
        let x = graph.add_node();
        let z = graph.add_node();
        let ys: Vec<NodeId> = (1..k).map(|_| graph.add_node()).collect();
        for (i, &y) in ys.iter().enumerate() {
            graph.add_edge(x, y, 1.0 / (i + 1) as f64);
            graph.add_edge(z, y, 0.0);
        }
        graph.add_edge(x, z, 1.0 + epsilon);
        let mut per_agent: Vec<Vec<((NodeId, NodeId), f64)>> =
            ys.iter().map(|&y| vec![((x, y), 1.0)]).collect();
        per_agent.push(vec![((x, z), 0.5), ((x, x), 0.5)]);
        let game = BayesianNcsGame::new(graph, Prior::independent(per_agent))?;
        Ok(GkGame { k, epsilon, game })
    }

    /// Number of agents `k`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.k
    }

    /// The gap parameter `ε`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Bayesian NCS game.
    #[must_use]
    pub fn game(&self) -> &BayesianNcsGame {
        &self.game
    }

    /// Exact measures via the exhaustive solver (feasible for `k ≲ 14`).
    ///
    /// # Errors
    ///
    /// Propagates solver errors (enumeration size).
    pub fn exact_measures(&self) -> Result<Measures, NcsError> {
        self.game.measures()
    }

    /// Solves the game through a configured [`Solver`] — e.g. a budgeted
    /// Monte Carlo backend for `k` beyond exhaustive reach.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`]s.
    pub fn solve_with(&self, solver: &Solver) -> Result<SolveReport, SolveError> {
        solver.solve(&self.game)
    }

    /// The social cost of the unique Bayesian equilibrium, `1 + ε`
    /// (Lemma 3.3), which equals `worst-eqP`, `best-eqP`, and `optP`
    /// (buying the hub edge serves everyone).
    #[must_use]
    pub fn analytic_worst_eq_p(&self) -> f64 {
        1.0 + self.epsilon
    }

    /// The analytic `optC = 1 + ε`: in both states the hub route serves
    /// all active agents at cost `1 + ε` (for `k ≥ 3`, `H(k-1) > 1 + ε`,
    /// so the hub is the optimum in both states).
    #[must_use]
    pub fn analytic_opt_c(&self) -> f64 {
        if self.k >= 3 {
            1.0 + self.epsilon
        } else {
            // k = 2: when agent 2 is absent the single direct edge (cost 1)
            // beats the hub; when present the shared hub costs 1 + ε.
            0.5 * (1.0 + self.epsilon) + 0.5
        }
    }

    /// The analytic lower bound `best-eqC ≥ H(k-1)/2` from the state where
    /// agent `k` is absent and the unique equilibrium is all-direct.
    #[must_use]
    pub fn analytic_best_eq_c_lower(&self) -> f64 {
        harmonic(self.k - 1) / 2.0
    }

    /// The headline "ignorance is bliss" ratio
    /// `worst-eqP / best-eqC ≤ (1+ε)/(H(k-1)/2) = O(1/log k)`.
    #[must_use]
    pub fn analytic_bliss_ratio(&self) -> f64 {
        self.analytic_worst_eq_p() / self.analytic_best_eq_c_lower()
    }

    /// The hub strategy profile (everyone via `z`), the unique Bayesian
    /// equilibrium per Lemma 3.3.
    #[must_use]
    pub fn hub_strategy(&self) -> Vec<Vec<bi_ncs::Path>> {
        let graph = self.game.graph();
        let hub_edge = graph
            .edges()
            .find(|(_, e)| e.source() == NodeId::new(0) && e.target() == NodeId::new(1))
            .expect("x→z edge exists")
            .0;
        self.game
            .agent_types()
            .iter()
            .map(|types| {
                types
                    .iter()
                    .map(|&(s, t)| {
                        if s == t {
                            Vec::new()
                        } else if t == NodeId::new(1) {
                            vec![hub_edge]
                        } else {
                            // x → z → y_i: hub edge plus the free edge.
                            let free = graph
                                .edges()
                                .find(|(_, e)| e.source() == NodeId::new(1) && e.target() == t)
                                .expect("z→y edge exists")
                                .0;
                            vec![hub_edge, free]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Agent permutations generating the game's automorphism group:
    /// empty, because `G_k` has none. Every spoke agent `i < k−1`
    /// travels to its own distinct terminal `y_i`, and the hub agent is
    /// the only stochastic one, so no two agents are interchangeable.
    ///
    /// Exported (like [`crate::gworst::GWorstGame`]'s) so the symmetry
    /// test layer can pin "no symmetry" as a contract too: the
    /// orbit-reduced sweep must detect a trivial group here.
    #[must_use]
    pub fn automorphism_generators(&self) -> Vec<Vec<usize>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_profile_is_the_bayesian_equilibrium() {
        for k in [3usize, 5, 8] {
            let g = GkGame::new(k).unwrap();
            let hub = g.hub_strategy();
            assert!(
                g.game().is_bayesian_equilibrium(&hub),
                "k={k}: hub profile must be a Bayesian equilibrium"
            );
            assert!(
                (g.game().social_cost(&hub) - g.analytic_worst_eq_p()).abs() < 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    fn exact_measures_match_analytics_for_small_k() {
        for k in [3usize, 5, 7] {
            let g = GkGame::new(k).unwrap();
            let m = g.exact_measures().unwrap();
            m.verify_chain().unwrap();
            assert!(
                (m.worst_eq_p - g.analytic_worst_eq_p()).abs() < 1e-9,
                "k={k}: worst-eqP {} vs {}",
                m.worst_eq_p,
                g.analytic_worst_eq_p()
            );
            assert!(
                (m.best_eq_p - g.analytic_worst_eq_p()).abs() < 1e-9,
                "k={k}: unique equilibrium"
            );
            assert!((m.opt_c - g.analytic_opt_c()).abs() < 1e-9, "k={k}");
            assert!(
                m.best_eq_c >= g.analytic_best_eq_c_lower() - 1e-9,
                "k={k}: best-eqC {} below H(k-1)/2 = {}",
                m.best_eq_c,
                g.analytic_best_eq_c_lower()
            );
        }
    }

    #[test]
    fn ignorance_is_bliss_remark_1() {
        // worst-eqP < best-eqC: all equilibria with local views beat all
        // equilibria with global views.
        let g = GkGame::new(8).unwrap();
        let m = g.exact_measures().unwrap();
        assert!(
            m.worst_eq_p < m.best_eq_c,
            "worst-eqP {} should beat best-eqC {}",
            m.worst_eq_p,
            m.best_eq_c
        );
        // And the worst Bayesian equilibrium achieves the expected global
        // optimum (Remark 1).
        assert!((m.worst_eq_p - m.opt_c).abs() < 1e-9);
    }

    #[test]
    fn bliss_ratio_shrinks_like_inverse_log() {
        let ratios: Vec<f64> = [4usize, 8, 16, 32, 64]
            .iter()
            .map(|&k| GkGame::new(k).unwrap().analytic_bliss_ratio())
            .collect();
        for w in ratios.windows(2) {
            assert!(w[1] < w[0], "bliss ratio must shrink: {ratios:?}");
        }
        // Inverse-log shape: ratio · H(k-1) is Θ(1).
        let normalized: Vec<f64> = [4usize, 8, 16, 32, 64]
            .iter()
            .zip(&ratios)
            .map(|(&k, r)| r * harmonic(k - 1))
            .collect();
        let spread = normalized.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            / normalized.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 1.5,
            "normalized ratios should be flat: {normalized:?}"
        );
    }

    #[test]
    fn epsilon_validation() {
        assert!(GkGame::with_epsilon(4, 0.05).is_ok());
        assert!(std::panic::catch_unwind(|| GkGame::with_epsilon(4, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| GkGame::new(1)).is_err());
    }
}
