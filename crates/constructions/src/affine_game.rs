//! Lemma 3.2: the affine-plane game.
//!
//! For a prime power `m`, take the affine plane of order `m` and build the
//! directed graph with a source `u`, one intermediate vertex `v_ℓ` per
//! line (edge `u→v_ℓ` of cost 1) and one sink `w_p` per point (free edges
//! `v_ℓ→w_p` for `p ∈ ℓ`). The `k = m+1` agents share source `u`; nature
//! draws a line `ℓ` and a permutation `π` uniformly, sends agent `i ∈ [m]`
//! to the `π(i)`-th point of `ℓ` and agent `k` to `v_ℓ`.
//!
//! Because two distinct points share exactly one line, an agent who
//! guesses the wrong line never shares her `u→v` edge, so **every**
//! strategy profile has expected social cost `1 + m²/(m+1) = Θ(m)`; yet
//! every underlying game's unique Nash equilibrium routes everyone through
//! the true line at total cost 1. Hence `optP/optC`, `best-eqP/best-eqC`
//! and `optP/worst-eqC` are all `Ω(k)` on a `Θ(k²)`-vertex graph.

use std::fmt;

use bi_geometry::affine::{AffinePlane, AffinePlaneError};
use bi_graph::{Direction, Graph, NodeId};
use bi_ncs::{NcsError, NcsGame};

/// The Lemma 3.2 construction for a prime-power order `m`.
#[derive(Clone, Debug)]
pub struct AffinePlaneGame {
    plane: AffinePlane,
    graph: Graph,
    /// `v_ℓ` vertex per line.
    line_vertices: Vec<NodeId>,
    /// `w_p` vertex per point.
    point_vertices: Vec<NodeId>,
    source: NodeId,
}

/// Errors constructing an [`AffinePlaneGame`].
#[derive(Clone, Debug, PartialEq)]
pub enum AffineGameError {
    /// The order is not a usable prime power.
    Plane(AffinePlaneError),
    /// A strategy assigned a point to a line not containing it.
    InvalidStrategy {
        /// The offending agent (line index).
        agent: usize,
        /// The point routed via a non-incident line.
        point: usize,
    },
}

impl fmt::Display for AffineGameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineGameError::Plane(e) => write!(f, "{e}"),
            AffineGameError::InvalidStrategy { agent, point } => {
                write!(
                    f,
                    "agent {agent} routes point {point} via a non-incident line"
                )
            }
        }
    }
}

impl std::error::Error for AffineGameError {}

impl From<AffinePlaneError> for AffineGameError {
    fn from(e: AffinePlaneError) -> Self {
        AffineGameError::Plane(e)
    }
}

impl AffinePlaneGame {
    /// Builds the construction for plane order `m`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bi_constructions::affine_game::AffinePlaneGame;
    ///
    /// // Order 3 gives k = 4 agents on a Θ(k²)-vertex graph.
    /// let game = AffinePlaneGame::new(3).unwrap();
    /// assert_eq!(game.num_agents(), 4);
    ///
    /// // Lemma 3.2: every strategy profile costs 1 + m²/(m+1) in
    /// // expectation, while complete information always achieves 1, so
    /// // the ignorance ratio is Θ(k).
    /// let measured = game
    ///     .expected_social_cost(&game.first_line_strategies())
    ///     .unwrap();
    /// assert!((measured - game.analytic_opt_p()).abs() < 1e-9);
    /// assert!((game.analytic_ratio() - measured).abs() < 1e-9);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AffineGameError::Plane`] when `m` is not a supported
    /// prime power.
    pub fn new(m: u64) -> Result<Self, AffineGameError> {
        let plane = AffinePlane::new(m)?;
        let mut graph = Graph::new(Direction::Directed);
        let source = graph.add_node();
        let line_vertices: Vec<NodeId> =
            (0..plane.line_count()).map(|_| graph.add_node()).collect();
        let point_vertices: Vec<NodeId> =
            (0..plane.point_count()).map(|_| graph.add_node()).collect();
        for (lid, &v) in line_vertices.iter().enumerate() {
            graph.add_edge(source, v, 1.0);
            for &p in plane.points_on_line(lid) {
                graph.add_edge(v, point_vertices[p], 0.0);
            }
        }
        Ok(AffinePlaneGame {
            plane,
            graph,
            line_vertices,
            point_vertices,
            source,
        })
    }

    /// Plane order `m`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.plane.order()
    }

    /// Number of agents `k = m + 1`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.plane.order() + 1
    }

    /// Number of graph vertices (`Θ(k²)`).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying directed graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The affine plane the game is built on.
    #[must_use]
    pub fn plane(&self) -> &AffinePlane {
        &self.plane
    }

    /// The exact expected social cost of a strategy profile.
    ///
    /// A strategy of agent `i ∈ [m]` assigns to every point `p` the line
    /// she routes through on observing destination `w_p` (agent `k`'s
    /// strategy is forced). Averaging over the uniform `(ℓ, π)` prior
    /// collapses analytically: each agent's destination is a uniform point
    /// of `ℓ`, so
    /// `E[K] = 1 + avg_ℓ Σ_{p∈ℓ} (1/m)·#{i : s_i(p) ≠ ℓ}`.
    ///
    /// # Errors
    ///
    /// Returns [`AffineGameError::InvalidStrategy`] if some `s_i(p)` does
    /// not contain `p`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong (`m` strategies of `m²`
    /// entries each).
    pub fn expected_social_cost(&self, strategies: &[Vec<usize>]) -> Result<f64, AffineGameError> {
        let m = self.plane.order();
        assert_eq!(strategies.len(), m, "one strategy per point-agent");
        for (agent, s) in strategies.iter().enumerate() {
            assert_eq!(s.len(), self.plane.point_count(), "one line per point");
            for (point, &line) in s.iter().enumerate() {
                if !self.plane.incident(point, line) {
                    return Err(AffineGameError::InvalidStrategy { agent, point });
                }
            }
        }
        let mut total = 0.0;
        for lid in 0..self.plane.line_count() {
            let mut wrong = 0usize;
            for &p in self.plane.points_on_line(lid) {
                for s in strategies {
                    if s[p] != lid {
                        wrong += 1;
                    }
                }
            }
            total += 1.0 + wrong as f64 / m as f64;
        }
        Ok(total / self.plane.line_count() as f64)
    }

    /// The analytic expected social cost `1 + m²/(m+1)`, which Lemma 3.2's
    /// symmetry argument shows **every** strategy profile attains, so
    /// `optP = best-eqP = worst-eqP = 1 + m²/(m+1)`.
    #[must_use]
    pub fn analytic_opt_p(&self) -> f64 {
        let m = self.plane.order() as f64;
        1.0 + m * m / (m + 1.0)
    }

    /// The analytic complete-information values: every underlying game's
    /// unique Nash equilibrium routes all agents through the true line,
    /// so `optC = best-eqC = worst-eqC = 1`.
    #[must_use]
    pub fn analytic_opt_c(&self) -> f64 {
        1.0
    }

    /// The headline ratio `optP/worst-eqC = 1 + m²/(m+1) = Ω(k)`.
    #[must_use]
    pub fn analytic_ratio(&self) -> f64 {
        self.analytic_opt_p() / self.analytic_opt_c()
    }

    /// The underlying complete-information NCS game for a given line and
    /// point assignment (`assignment[i]` is the destination point of agent
    /// `i ∈ [m]`; agent `k` targets `v_ℓ`).
    ///
    /// # Errors
    ///
    /// Propagates NCS construction failures (cannot occur for valid
    /// line/point inputs).
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not list exactly the points of the
    /// line.
    pub fn underlying_game(&self, line: usize, assignment: &[usize]) -> Result<NcsGame, NcsError> {
        let pts = self.plane.points_on_line(line);
        assert_eq!(assignment.len(), pts.len(), "one destination per agent");
        for p in assignment {
            assert!(pts.contains(p), "assigned point must lie on the line");
        }
        let mut pairs: Vec<(NodeId, NodeId)> = assignment
            .iter()
            .map(|&p| (self.source, self.point_vertices[p]))
            .collect();
        pairs.push((self.source, self.line_vertices[line]));
        NcsGame::new(self.graph.clone(), pairs)
    }

    /// The "always guess the true-looking line" strategy: each point
    /// routes through its first incident line. Used as a concrete profile
    /// in tests and benches.
    #[must_use]
    pub fn first_line_strategies(&self) -> Vec<Vec<usize>> {
        let m = self.plane.order();
        let s: Vec<usize> = (0..self.plane.point_count())
            .map(|p| self.plane.lines_through(p)[0])
            .collect();
        vec![s; m]
    }

    /// Agent permutations generating the game's automorphism group: the
    /// `m` point-agents are fully interchangeable — the expected social
    /// cost `1 + avg_ℓ Σ_{p∈ℓ} (1/m)·#{i : s_i(p) ≠ ℓ}` depends only on
    /// integer counts over agents, so permuting their strategies leaves
    /// it exactly (bitwise) invariant. The adjacent transpositions
    /// `(i, i+1)` for `i < m−1` generate `S_m` on them.
    ///
    /// Each generator is a length-`m` permutation over the point-agents
    /// only: strategy profiles passed to [`Self::expected_social_cost`]
    /// cover just those `m` agents (the line agent's route is forced),
    /// so the permutations act on that same index space.
    #[must_use]
    pub fn automorphism_generators(&self) -> Vec<Vec<usize>> {
        let m = self.plane.order();
        (0..m.saturating_sub(1))
            .map(|i| {
                let mut perm: Vec<usize> = (0..m).collect();
                perm.swap(i, i + 1);
                perm
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::paths::PathLimits;
    use rand::Rng;

    #[test]
    fn construction_counts_match_lemma() {
        let g = AffinePlaneGame::new(3).unwrap();
        assert_eq!(g.num_agents(), 4);
        // 1 + (m² + m) + m² vertices.
        assert_eq!(g.vertex_count(), 1 + 12 + 9);
        assert_eq!(g.order(), 3);
    }

    #[test]
    fn analytic_cost_matches_exact_evaluation_on_any_strategy() {
        for m in [2u64, 3, 4] {
            let game = AffinePlaneGame::new(m).unwrap();
            let cost = game
                .expected_social_cost(&game.first_line_strategies())
                .unwrap();
            assert!(
                (cost - game.analytic_opt_p()).abs() < 1e-9,
                "m={m}: {cost} vs {}",
                game.analytic_opt_p()
            );
        }
    }

    #[test]
    fn every_random_strategy_profile_costs_the_same() {
        // The heart of Lemma 3.2: the expected cost is strategy-invariant.
        let game = AffinePlaneGame::new(3).unwrap();
        let mut rng = bi_util::rng::seeded(8);
        for _ in 0..20 {
            let strategies: Vec<Vec<usize>> = (0..game.order())
                .map(|_| {
                    (0..game.plane().point_count())
                        .map(|p| {
                            let ls = game.plane().lines_through(p);
                            ls[rng.random_range(0..ls.len())]
                        })
                        .collect()
                })
                .collect();
            let cost = game.expected_social_cost(&strategies).unwrap();
            assert!((cost - game.analytic_opt_p()).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_strategies_are_rejected() {
        let game = AffinePlaneGame::new(2).unwrap();
        let mut bad = game.first_line_strategies();
        // Route point 0 via a line that misses it.
        let miss = (0..game.plane().line_count())
            .find(|&l| !game.plane().incident(0, l))
            .unwrap();
        bad[0][0] = miss;
        assert!(matches!(
            game.expected_social_cost(&bad),
            Err(AffineGameError::InvalidStrategy { agent: 0, point: 0 })
        ));
    }

    #[test]
    fn underlying_games_have_unique_equilibrium_of_cost_one() {
        let game = AffinePlaneGame::new(2).unwrap();
        // Try a couple of (line, permutation) states.
        for line in [0usize, 3, 5] {
            let pts = game.plane().points_on_line(line).to_vec();
            let ncs = game.underlying_game(line, &pts).unwrap();
            let analysis = bi_ncs::analysis::analyze(&ncs, PathLimits::default()).unwrap();
            assert!((analysis.best_eq - 1.0).abs() < 1e-9, "line {line}");
            assert!((analysis.worst_eq - 1.0).abs() < 1e-9, "line {line}");
            assert_eq!(analysis.equilibrium_count, 1, "line {line}");
            assert!((analysis.opt - 1.0).abs() < 1e-9, "line {line}");
        }
    }

    #[test]
    fn ratio_grows_linearly_with_k() {
        let ratios: Vec<f64> = [2u64, 3, 4, 5, 7]
            .iter()
            .map(|&m| AffinePlaneGame::new(m).unwrap().analytic_ratio())
            .collect();
        let ks: Vec<f64> = [2u64, 3, 4, 5, 7].iter().map(|&m| (m + 1) as f64).collect();
        let slope = bi_util::log_log_slope(&ks, &ratios);
        assert!((slope - 1.0).abs() < 0.25, "slope {slope} should be ≈ 1");
    }
}
