//! Lemma 3.5: the diamond-graph game via the online Steiner reduction.
//!
//! The Imase–Waxman adversary distribution on a depth-`j` diamond graph
//! becomes a Bayesian NCS game: agent `i`'s type is `(v_i, s)` where `v_i`
//! is the `i`-th requested vertex (all sequences have the same length
//! `2^j`, so the agent count is fixed). Every sequence's offline optimum
//! is 1, so `optC = 1`, while `optP` — the best prior-aware strategy
//! profile — inherits the online `Ω(j) = Ω(log n)` lower bound.
//!
//! Exact `optP` is enumerable for `j ≤ 2`; beyond that the module measures
//! (a) the greedy online algorithm against the adversary (the canonical
//! `Θ(log n)`-competitive benchmark) and (b) a locally-optimized *path
//! system* (a strategy profile in which each vertex fixes one path to the
//! root), whose exact expected cost upper-bounds `optP` and exhibits the
//! same logarithmic growth.

use bi_core::measures::Measures;
use bi_graph::paths::{self, PathLimits};
use bi_graph::NodeId;
use bi_ncs::{BayesianNcsGame, NcsError, Prior, SolveError, SolveReport, Solver};
use bi_online::adversary::DiamondAdversary;
use bi_online::diamond::DiamondGraph;
use bi_online::steiner::OnlineSteiner;
use rand::Rng;

/// The Lemma 3.5 construction at diamond depth `j`.
#[derive(Clone, Debug)]
pub struct DiamondGame {
    diamond: DiamondGraph,
    adversary: DiamondAdversary,
}

impl DiamondGame {
    /// Builds the game for diamond depth `j ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds the diamond builder's limit.
    #[must_use]
    pub fn new(j: u32) -> Self {
        assert!(j >= 1, "depth must be at least 1");
        let diamond = DiamondGraph::new(j);
        let adversary = DiamondAdversary::new(&diamond);
        DiamondGame { diamond, adversary }
    }

    /// The diamond graph.
    #[must_use]
    pub fn diamond(&self) -> &DiamondGraph {
        &self.diamond
    }

    /// Number of agents (`2^j`: the sink plus `2^j − 1` midpoints).
    #[must_use]
    pub fn num_agents(&self) -> usize {
        1usize << self.diamond.levels()
    }

    /// The exact Bayesian NCS game over the full adversary support
    /// (feasible for `j ≤ 3`; the support has `2^(2^j − 1)` states).
    ///
    /// # Errors
    ///
    /// Propagates prior/NCS construction failures.
    ///
    /// # Panics
    ///
    /// Panics if the support is too large to enumerate (`j > 4`).
    pub fn bayesian_game(&self) -> Result<BayesianNcsGame, NcsError> {
        let root = self.diamond.source();
        let support: Vec<(Vec<(NodeId, NodeId)>, f64)> = self
            .adversary
            .enumerate_all()
            .into_iter()
            .map(|seq| {
                let types: Vec<(NodeId, NodeId)> =
                    seq.requests.iter().map(|&v| (v, root)).collect();
                (types, seq.probability)
            })
            .collect();
        BayesianNcsGame::with_limits(
            self.diamond.graph().clone(),
            Prior::joint(support),
            PathLimits {
                max_paths: 100_000,
                // Simple paths in diamonds are short; capping the length
                // keeps the action sets to the combinatorially relevant
                // routes.
                max_len: 2usize.pow(self.diamond.levels()) + 2,
            },
        )
    }

    /// Exact measures via the exhaustive solver (only feasible at `j ≤ 2`;
    /// the strategy space explodes beyond that).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn exact_measures(&self) -> Result<Measures, NcsError> {
        self.bayesian_game()?.measures()
    }

    /// Solves the Bayesian game through a configured [`Solver`]. With a
    /// sampling backend this is the first way to get (inner-approximate)
    /// equilibrium measures at depths `j ≥ 3`, where the strategy space
    /// explodes beyond exhaustive reach.
    ///
    /// # Errors
    ///
    /// Propagates construction errors ([`NcsError`], wrapped as
    /// [`SolveError::Model`]) and [`SolveError`]s.
    pub fn solve_with(&self, solver: &Solver) -> Result<SolveReport, SolveError> {
        let game = self
            .bayesian_game()
            .map_err(|e| SolveError::Model(Box::new(e)))?;
        solver.solve(&game)
    }

    /// `optC` is exactly 1: every sequence in the support lies on one
    /// canonical `s–t` path of total cost 1.
    #[must_use]
    pub fn analytic_opt_c(&self) -> f64 {
        1.0
    }

    /// Expected cost of the greedy online algorithm against the adversary,
    /// estimated from `samples` sampled sequences. By Imase–Waxman this is
    /// `Ω(j)·optC`.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn expected_greedy_cost(&self, samples: u32, seed: u64) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let mut rng = bi_util::rng::seeded(seed);
        let total: f64 = (0..samples)
            .map(|_| {
                let seq = self.adversary.sample(&mut rng);
                OnlineSteiner::greedy(self.diamond.graph(), self.diamond.source(), &seq.requests)
                    .total_cost
            })
            .sum();
        total / f64::from(samples)
    }

    /// The exact expected cost of a *path system*: a map assigning every
    /// vertex one fixed path to the root — i.e. a symmetric strategy
    /// profile of the Bayesian game. The expectation is taken exactly over
    /// the full adversary support.
    ///
    /// # Panics
    ///
    /// Panics if `paths_by_vertex` misses a requested vertex.
    #[must_use]
    pub fn path_system_cost(&self, paths_by_vertex: &[Vec<bi_graph::EdgeId>]) -> f64 {
        let graph = self.diamond.graph();
        let mut total = 0.0;
        for seq in self.adversary.enumerate_all() {
            let mut used = vec![false; graph.edge_count()];
            let mut cost = 0.0;
            for &v in &seq.requests {
                for &e in &paths_by_vertex[v.index()] {
                    if !used[e.index()] {
                        used[e.index()] = true;
                        cost += graph.edge(e).cost();
                    }
                }
            }
            total += seq.probability * cost;
        }
        total
    }

    /// Locally optimizes a path system by coordinate descent over
    /// alternative simple paths per vertex; returns `(cost, system)`. The
    /// result upper-bounds `optP` (it *is* a strategy profile) and, per
    /// Lemma 3.5, cannot beat the online lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn optimize_path_system(
        &self,
        rounds: u32,
        seed: u64,
    ) -> (f64, Vec<Vec<bi_graph::EdgeId>>) {
        assert!(rounds > 0, "need at least one round");
        let graph = self.diamond.graph();
        let root = self.diamond.source();
        let limits = PathLimits {
            max_paths: 200,
            max_len: 2usize.pow(self.diamond.levels()) + 2,
        };
        // Candidate paths per vertex; start from a shortest path.
        let mut candidates: Vec<Vec<Vec<bi_graph::EdgeId>>> = Vec::new();
        let mut system: Vec<Vec<bi_graph::EdgeId>> = Vec::new();
        for v in graph.nodes() {
            let cands = paths::simple_paths(graph, v, root, limits);
            let best = bi_graph::shortest_path(graph, v, root)
                .expect("diamond graphs are connected")
                .1;
            system.push(best);
            candidates.push(cands);
        }
        let mut cost = self.path_system_cost(&system);
        let mut rng = bi_util::rng::seeded(seed);
        for _ in 0..rounds {
            let mut improved = false;
            for v in 0..system.len() {
                if candidates[v].len() <= 1 {
                    continue;
                }
                // Try a random subset of candidates to keep rounds cheap.
                for _ in 0..candidates[v].len().min(16) {
                    let c = rng.random_range(0..candidates[v].len());
                    let old = std::mem::replace(&mut system[v], candidates[v][c].clone());
                    let new_cost = self.path_system_cost(&system);
                    if new_cost < cost - 1e-12 {
                        cost = new_cost;
                        improved = true;
                    } else {
                        system[v] = old;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        (cost, system)
    }

    /// Agent permutations generating the automorphism group of
    /// [`Self::bayesian_game`]: empty. Each agent is a fixed sequence
    /// position whose request distribution over diamond vertices differs
    /// from every other position's (the adversary reveals vertices in
    /// level order), so no two agents are interchangeable.
    ///
    /// Exported so the symmetry test layer can pin the trivial group as
    /// a contract alongside the symmetric families.
    #[must_use]
    pub fn automorphism_generators(&self) -> Vec<Vec<usize>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_measures_at_depth_one() {
        let game = DiamondGame::new(1);
        let m = game.exact_measures().unwrap();
        m.verify_chain().unwrap();
        assert!((m.opt_c - 1.0).abs() < 1e-9);
        // With one diamond and two equiprobable midpoints, any strategy
        // profile pays for the wrong side half the time: optP = 1.25.
        assert!(m.opt_p > 1.2 - 1e-9, "optP {} should exceed optC", m.opt_p);
    }

    #[test]
    fn exact_opt_p_grows_from_depth_one_to_two() {
        let m1 = DiamondGame::new(1).exact_measures().unwrap();
        let g2 = DiamondGame::new(2);
        // Depth 2 exact strategy enumeration is large; use the optimized
        // path system as a certified upper bound and the depth-1 exact
        // value for the growth check.
        let (c2, _) = g2.optimize_path_system(3, 7);
        assert!(
            c2 > m1.opt_p + 0.05,
            "depth-2 best path system {c2} must exceed depth-1 optP {}",
            m1.opt_p
        );
    }

    #[test]
    fn greedy_cost_exceeds_opt_c_and_grows() {
        let mut last = 1.0;
        for j in 1..=3 {
            let game = DiamondGame::new(j);
            let cost = game.expected_greedy_cost(48, 3);
            assert!(cost >= game.analytic_opt_c() - 1e-9);
            assert!(cost > last - 0.1, "greedy cost should grow with depth");
            last = cost;
        }
    }

    #[test]
    fn path_system_cost_of_shortest_paths_is_exact_at_depth_one() {
        let game = DiamondGame::new(1);
        let graph = game.diamond().graph();
        let root = game.diamond().source();
        let system: Vec<_> = graph
            .nodes()
            .map(|v| bi_graph::shortest_path(graph, v, root).unwrap().1)
            .collect();
        let cost = game.path_system_cost(&system);
        // Requests: t (cost 1 via one side) plus the random midpoint; with
        // prob 1/2 the midpoint lies on t's chosen side (no extra cost),
        // else it adds 1/2: E = 1 + 1/4… depending on tie-breaking the
        // value is in [1, 1.5].
        assert!((1.0 - 1e-9..=1.5 + 1e-9).contains(&cost), "cost {cost}");
    }

    #[test]
    fn bayesian_game_support_matches_adversary() {
        let game = DiamondGame::new(2);
        let bg = game.bayesian_game().unwrap();
        assert_eq!(bg.support().len(), 8); // 2^(2^2 - 1)
        assert_eq!(bg.num_agents(), 4);
    }

    #[test]
    fn optimized_system_never_beats_opt_c() {
        let game = DiamondGame::new(2);
        let (cost, system) = game.optimize_path_system(5, 11);
        assert!(cost >= game.analytic_opt_c() - 1e-9);
        assert_eq!(system.len(), game.diamond().graph().node_count());
    }
}
