//! Lemma 3.1 and Observation 2.2 checkers, plus the random-game sweeps
//! that exercise the universal bounds.

use bi_graph::{Direction, NodeId};
use bi_ncs::{BayesianNcsGame, NcsError, Prior, SolveError, Solver};
use rand::Rng;

/// The result of a Lemma 3.1 verification: `worst-eqP ≤ k·optC`.
#[derive(Clone, Debug)]
pub struct Lemma31Check {
    /// `worst-eqP` of the game.
    pub worst_eq_p: f64,
    /// The bound `k·optC`.
    pub bound: f64,
    /// Number of agents.
    pub k: usize,
}

impl Lemma31Check {
    /// Whether the universal bound holds (it must for every NCS game).
    #[must_use]
    pub fn holds(&self) -> bool {
        bi_util::approx_le(self.worst_eq_p, self.bound)
    }
}

/// Verifies Lemma 3.1 on a concrete game by exact measurement.
///
/// # Errors
///
/// Propagates solver errors.
pub fn lemma_3_1_check(game: &BayesianNcsGame) -> Result<Lemma31Check, NcsError> {
    let m = game.measures()?;
    Ok(Lemma31Check {
        worst_eq_p: m.worst_eq_p,
        bound: game.num_agents() as f64 * m.opt_c,
        k: game.num_agents(),
    })
}

/// Verifies Lemma 3.1 through a configured [`Solver`]. With an exhaustive
/// backend this equals [`lemma_3_1_check`]; with a sampling backend the
/// reported `worst-eqP` is an inner approximation, so a failing check is
/// still a genuine counterexample while a passing check is one-sided.
///
/// # Errors
///
/// Propagates [`SolveError`]s.
pub fn lemma_3_1_check_with(
    game: &BayesianNcsGame,
    solver: &Solver,
) -> Result<Lemma31Check, SolveError> {
    let report = solver.solve(game)?;
    Ok(Lemma31Check {
        worst_eq_p: report.measures.worst_eq_p,
        bound: game.num_agents() as f64 * report.measures.opt_c,
        k: game.num_agents(),
    })
}

/// Generates a random Bayesian NCS game on a connected random graph:
/// `k` agents, each with `types_per_agent` independent random
/// `(source, destination)` types (distinct per agent, positive random
/// probabilities).
///
/// # Errors
///
/// Propagates construction errors (none occur for the connected graphs
/// produced here).
///
/// # Panics
///
/// Panics if `types_per_agent` exceeds the number of distinct pairs.
pub fn random_bayesian_ncs(
    direction: Direction,
    n: usize,
    edge_prob: f64,
    k: usize,
    types_per_agent: usize,
    seed: u64,
) -> Result<BayesianNcsGame, NcsError> {
    assert!(
        types_per_agent <= n * n,
        "more types than distinct (source, destination) pairs"
    );
    let graph = bi_graph::generators::gnp_connected(
        direction,
        n,
        edge_prob,
        (0.5, 2.0),
        bi_util::rng::derive_seed(seed, "graph"),
    );
    let mut rng = bi_util::rng::seeded(bi_util::rng::derive_seed(seed, "prior"));
    let per_agent = (0..k)
        .map(|_| {
            let mut types: Vec<(NodeId, NodeId)> = Vec::new();
            while types.len() < types_per_agent {
                let s = NodeId::new(rng.random_range(0..n));
                let t = NodeId::new(rng.random_range(0..n));
                if !types.contains(&(s, t)) {
                    types.push((s, t));
                }
            }
            let raw: Vec<f64> = (0..types_per_agent)
                .map(|_| rng.random_range(0.2..1.0))
                .collect();
            let total: f64 = raw.iter().sum();
            types
                .into_iter()
                .zip(raw)
                .map(|(t, p)| (t, p / total))
                .collect::<Vec<_>>()
        })
        .collect();
    BayesianNcsGame::new(graph, Prior::independent(per_agent))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_3_1_holds_on_random_directed_games() {
        for seed in 0..8 {
            let game = random_bayesian_ncs(Direction::Directed, 5, 0.3, 2, 2, seed).unwrap();
            let check = lemma_3_1_check(&game).unwrap();
            assert!(
                check.holds(),
                "seed {seed}: worst-eqP {} exceeds k·optC = {}",
                check.worst_eq_p,
                check.bound
            );
        }
    }

    #[test]
    fn lemma_3_1_holds_on_random_undirected_games() {
        for seed in 0..8 {
            let game = random_bayesian_ncs(Direction::Undirected, 5, 0.25, 3, 2, seed).unwrap();
            let check = lemma_3_1_check(&game).unwrap();
            assert!(check.holds(), "seed {seed}");
            assert_eq!(check.k, 3);
        }
    }

    #[test]
    fn observation_2_2_holds_on_random_games() {
        for seed in 0..8 {
            let game =
                random_bayesian_ncs(Direction::Undirected, 4, 0.4, 2, 2, 500 + seed).unwrap();
            let m = game.measures().unwrap();
            m.verify_chain()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = random_bayesian_ncs(Direction::Directed, 5, 0.3, 2, 2, 9).unwrap();
        let b = random_bayesian_ncs(Direction::Directed, 5, 0.3, 2, 2, 9).unwrap();
        assert_eq!(a.support().len(), b.support().len());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn universal_upper_bound_has_linear_shape_at_worst() {
        // Sweep k and confirm the measured worst-eqP/optC never exceeds k.
        for k in 2..=4usize {
            for seed in 0..3 {
                let game =
                    random_bayesian_ncs(Direction::Directed, 4, 0.4, k, 2, 1000 + seed).unwrap();
                let m = game.measures().unwrap();
                assert!(
                    m.worst_eq_p <= k as f64 * m.opt_c + 1e-9,
                    "k={k} seed={seed}"
                );
            }
        }
    }
}
