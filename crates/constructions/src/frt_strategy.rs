//! Lemma 3.4: the FRT-tree strategy profile for benevolent agents.
//!
//! Sample a dominating tree `τ` for the graph metric (FRT), designate a
//! shortest graph path `P_e` for every tree edge `e`, and instruct the
//! agent with type `(x, y)` to buy `∪_{e ∈ τ(x,y)} P_e`. The expected
//! social cost of this profile is `O(log n)·optC`; sampling several trees
//! and keeping the best one makes the lemma's "some tree meets the
//! expectation" step constructive.

use bi_graph::{EdgeId, Graph, NodeId};
use bi_metric::space::{MetricError, MetricSpace};
use bi_metric::{frt, HstTree};
use rand::Rng;

/// A tree-based routing scheme: one designated shortest path per FRT tree
/// edge.
#[derive(Clone, Debug)]
pub struct FrtRouting {
    tree: HstTree,
    /// For each tree node, the designated graph path from its center to
    /// its parent's center (empty at the root or when centers coincide).
    up_paths: Vec<Vec<EdgeId>>,
}

impl FrtRouting {
    /// Builds a routing scheme from `samples` FRT draws on the graph
    /// metric, keeping the tree with the best average stretch.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricError`] when the graph is disconnected or has
    /// zero-distance vertex pairs (zero-cost edges); such graphs need
    /// perturbation before embedding.
    ///
    /// # Panics
    ///
    /// Panics if the graph is directed or `samples == 0`.
    pub fn build(graph: &Graph, samples: usize, seed: u64) -> Result<Self, MetricError> {
        assert!(
            !graph.is_directed(),
            "FRT routing needs an undirected graph"
        );
        let metric = MetricSpace::from_graph(graph)?;
        let mut rng = bi_util::rng::seeded(seed);
        let tree = frt::sample_best_of(&metric, samples, &mut rng);
        let mut up_paths = vec![Vec::new(); tree.node_count()];
        for (parent, child) in tree.edges() {
            let pc = tree.node(parent).center;
            let cc = tree.node(child).center;
            if pc != cc {
                up_paths[child] = bi_graph::shortest_path(graph, NodeId::new(cc), NodeId::new(pc))
                    .expect("connected graph")
                    .1;
            }
        }
        Ok(FrtRouting { tree, up_paths })
    }

    /// The underlying FRT tree.
    #[must_use]
    pub fn tree(&self) -> &HstTree {
        &self.tree
    }

    /// The edge set an agent with type `(x, y)` buys: the union of the
    /// designated paths along the tree path from `x` to `y`.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    #[must_use]
    pub fn route(&self, x: NodeId, y: NodeId) -> Vec<EdgeId> {
        if x == y {
            return Vec::new();
        }
        let mut edges: Vec<EdgeId> = self
            .tree
            .path_nodes(x.index(), y.index())
            .into_iter()
            .flat_map(|node| self.up_paths[node].iter().copied())
            .collect();
        edges.sort();
        edges.dedup();
        edges
    }
}

/// One measured state of a Lemma 3.4 experiment.
#[derive(Clone, Debug)]
pub struct FrtMeasurement {
    /// Expected social cost of the FRT strategy profile, `K(s)`.
    pub strategy_cost: f64,
    /// Expected optimal complete-information cost, `optC` (exact Steiner
    /// trees per state).
    pub opt_c: f64,
}

impl FrtMeasurement {
    /// The ratio `K(s)/optC`, which Lemma 3.4 bounds by `O(log n)`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.strategy_cost / self.opt_c
    }
}

/// Measures the FRT strategy on a shared-source Bayesian NCS game: each
/// state is a terminal set (all agents route to `root`), weighted by its
/// prior probability. `optC` uses exact Steiner trees.
///
/// # Panics
///
/// Panics if a state has more terminals than the exact Steiner solver
/// allows, or probabilities are malformed.
pub fn measure_shared_source(
    graph: &Graph,
    routing: &FrtRouting,
    root: NodeId,
    states: &[(Vec<NodeId>, f64)],
) -> FrtMeasurement {
    let total_prob: f64 = states.iter().map(|(_, p)| p).sum();
    assert!(
        (total_prob - 1.0).abs() < 1e-6,
        "state probabilities must sum to 1"
    );
    let mut strategy_cost = 0.0;
    let mut opt_c = 0.0;
    for (terminals, prob) in states {
        let mut union: Vec<EdgeId> = terminals
            .iter()
            .flat_map(|&v| routing.route(v, root))
            .collect();
        union.sort();
        union.dedup();
        strategy_cost += prob * graph.total_cost(union);
        let mut terms = terminals.clone();
        terms.push(root);
        let tree = bi_graph::steiner::steiner_tree(graph, &terms).expect("connected graph");
        opt_c += prob * tree.cost;
    }
    FrtMeasurement {
        strategy_cost,
        opt_c,
    }
}

/// Generates a random shared-source prior: `n_states` equiprobable
/// terminal sets of the given size, sampled without replacement from the
/// non-root vertices.
///
/// # Panics
///
/// Panics if the graph has too few vertices for the requested terminal
/// count.
#[must_use]
pub fn random_terminal_states(
    graph: &Graph,
    root: NodeId,
    n_states: usize,
    terminals_per_state: usize,
    seed: u64,
) -> Vec<(Vec<NodeId>, f64)> {
    assert!(
        terminals_per_state < graph.node_count(),
        "not enough vertices for the requested terminal count"
    );
    let mut rng = bi_util::rng::seeded(seed);
    let prob = 1.0 / n_states as f64;
    (0..n_states)
        .map(|_| {
            let mut terms: Vec<NodeId> = Vec::new();
            while terms.len() < terminals_per_state {
                let v = NodeId::new(rng.random_range(0..graph.node_count()));
                if v != root && !terms.contains(&v) {
                    terms.push(v);
                }
            }
            (terms, prob)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::generators;

    #[test]
    fn routes_connect_their_endpoints() {
        let graph = generators::grid_graph(4, 4, 1.0);
        let routing = FrtRouting::build(&graph, 5, 3).unwrap();
        for x in 0..16usize {
            for y in 0..16usize {
                let edges = routing.route(NodeId::new(x), NodeId::new(y));
                if x == y {
                    assert!(edges.is_empty());
                    continue;
                }
                // The union must contain an x–y path: check connectivity in
                // the bought subgraph.
                let mut sub = Graph::with_nodes(bi_graph::Direction::Undirected, 16);
                for &e in &edges {
                    let edge = graph.edge(e);
                    sub.add_edge(edge.source(), edge.target(), edge.cost());
                }
                assert!(
                    bi_graph::shortest_path(&sub, NodeId::new(x), NodeId::new(y)).is_some(),
                    "route({x},{y}) does not connect its endpoints"
                );
            }
        }
    }

    #[test]
    fn shared_source_ratio_is_modest_on_grids() {
        let graph = generators::grid_graph(5, 5, 1.0);
        let routing = FrtRouting::build(&graph, 10, 7).unwrap();
        let root = NodeId::new(0);
        let states = random_terminal_states(&graph, root, 8, 5, 11);
        let m = measure_shared_source(&graph, &routing, root, &states);
        assert!(m.ratio() >= 1.0 - 1e-9, "strategy cannot beat the optimum");
        // O(log n) with small constants; n = 25 → comfortably below 40.
        assert!(m.ratio() < 40.0, "ratio {} too large", m.ratio());
    }

    #[test]
    fn zero_cost_edges_are_rejected_via_metric_error() {
        let mut g = Graph::new(bi_graph::Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 0.0);
        assert!(FrtRouting::build(&g, 3, 1).is_err());
    }

    #[test]
    fn random_terminal_states_exclude_the_root() {
        let graph = generators::grid_graph(3, 3, 1.0);
        let root = NodeId::new(4);
        let states = random_terminal_states(&graph, root, 5, 3, 2);
        for (terms, prob) in &states {
            assert_eq!(terms.len(), 3);
            assert!(!terms.contains(&root));
            assert!((prob - 0.2).abs() < 1e-12);
        }
    }
}
