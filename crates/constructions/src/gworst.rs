//! Lemmas 3.6 and 3.7 (Fig. 2): the `G_worst` games.
//!
//! The undirected 3-vertex graph `G_worst`: `c(u,v) = k+1`, `c(v,w) = 1`,
//! `c(u,w) = 1+ε`. Agents `1..k` travel `u→w`; agent `k+1` travels `u→v`
//! with probability `p` and stays put otherwise.
//!
//! * With `p = 1/k` and `2/k − 1/k² < ε < 2/k` (the proof printed under
//!   Lemma 3.7 in the source text), the expensive detour
//!   `u–v–w` is a Bayesian equilibrium of cost `k+2`, while the
//!   prior-averaged worst complete-information equilibrium is `O(1)`:
//!   `worst-eqP/worst-eqC = Ω(k)`.
//! * With `p = 1/2` and `1/k < ε < 3/(2k)` (the proof printed under
//!   Lemma 3.6), the unique Bayesian equilibrium costs `1+ε+1/2`, while
//!   the state with agent `k+1` present has a complete-information
//!   equilibrium of cost `k+2`: `worst-eqP/worst-eqC = O(1/k)`.
//!
//! (The lemma *statements* in the source text are swapped relative to
//! these proofs; see `DESIGN.md`. Both constructions are implemented and
//! measured, so Table 1's `Ω(k)`/`O(1/k)` row is reproduced either way.)

use bi_core::measures::Measures;
use bi_graph::{Direction, Graph, NodeId};
use bi_ncs::{BayesianNcsGame, NcsError, Prior, SolveError, SolveReport, Solver};

/// Which `G_worst` variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GWorstVariant {
    /// Agent `k+1` appears with probability 1/2 → `worst-eqP/worst-eqC =
    /// O(1/k)` (ignorance helps).
    Half,
    /// Agent `k+1` appears with probability 1/k → `worst-eqP/worst-eqC =
    /// Ω(k)` (ignorance hurts).
    InvK,
}

/// A `G_worst` game instance.
#[derive(Clone, Debug)]
pub struct GWorstGame {
    k: usize,
    variant: GWorstVariant,
    epsilon: f64,
    game: BayesianNcsGame,
}

impl GWorstGame {
    /// Builds the `(k+1)`-agent game for `k ≥ 3` with the proof's default
    /// `ε` (midpoint of the admissible interval).
    ///
    /// # Errors
    ///
    /// Propagates NCS construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`.
    pub fn new(k: usize, variant: GWorstVariant) -> Result<Self, NcsError> {
        assert!(k >= 3, "the G_worst analysis needs k ≥ 3");
        let kf = k as f64;
        let epsilon = match variant {
            GWorstVariant::Half => 1.25 / kf, // inside (1/k, 3/(2k))
            GWorstVariant::InvK => 2.0 / kf - 0.5 / (kf * kf), // inside (2/k − 1/k², 2/k)
        };
        let p = match variant {
            GWorstVariant::Half => 0.5,
            GWorstVariant::InvK => 1.0 / kf,
        };
        let mut graph = Graph::new(Direction::Undirected);
        let u = graph.add_node();
        let v = graph.add_node();
        let w = graph.add_node();
        graph.add_edge(u, v, kf + 1.0);
        graph.add_edge(v, w, 1.0);
        graph.add_edge(u, w, 1.0 + epsilon);
        let mut per_agent: Vec<Vec<((NodeId, NodeId), f64)>> =
            (0..k).map(|_| vec![((u, w), 1.0)]).collect();
        per_agent.push(vec![((u, v), p), ((u, u), 1.0 - p)]);
        let game = BayesianNcsGame::new(graph, Prior::independent(per_agent))?;
        Ok(GWorstGame {
            k,
            variant,
            epsilon,
            game,
        })
    }

    /// The number of `u→w` agents `k` (total agents `k+1`).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Which variant this is.
    #[must_use]
    pub fn variant(&self) -> GWorstVariant {
        self.variant
    }

    /// The gap parameter `ε`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Bayesian NCS game.
    #[must_use]
    pub fn game(&self) -> &BayesianNcsGame {
        &self.game
    }

    /// Exact measures (strategy space `2^(k+1)`; fine for `k ≲ 12`).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn exact_measures(&self) -> Result<Measures, NcsError> {
        self.game.measures()
    }

    /// Solves the game through a configured [`Solver`] — e.g. a budgeted
    /// Monte Carlo backend for `k` beyond exhaustive reach.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`]s.
    pub fn solve_with(&self, solver: &Solver) -> Result<SolveReport, SolveError> {
        solver.solve(&self.game)
    }

    /// The proof's analytic `worst-eqP`: `k+2` for [`GWorstVariant::InvK`]
    /// (everyone on the expensive detour), `1+ε+1/2` for
    /// [`GWorstVariant::Half`] (everyone on the direct edge, agent `k+1`
    /// detouring through `w` when active).
    #[must_use]
    pub fn analytic_worst_eq_p(&self) -> f64 {
        match self.variant {
            GWorstVariant::InvK => self.k as f64 + 2.0,
            GWorstVariant::Half => 1.0 + self.epsilon + 0.5,
        }
    }

    /// The proof's analytic bound on `worst-eqC`: for
    /// [`GWorstVariant::InvK`] the upper bound
    /// `(1−1/k)(1+ε) + (1/k)(k+3+ε) = O(1)`; for [`GWorstVariant::Half`]
    /// the lower bound `(k+2)/2`.
    #[must_use]
    pub fn analytic_worst_eq_c_bound(&self) -> f64 {
        let kf = self.k as f64;
        match self.variant {
            GWorstVariant::InvK => {
                (1.0 - 1.0 / kf) * (1.0 + self.epsilon) + (kf + 3.0 + self.epsilon) / kf
            }
            GWorstVariant::Half => (kf + 2.0) / 2.0,
        }
    }

    /// The headline analytic ratio `worst-eqP / worst-eqC-bound`:
    /// `Ω(k)` for [`GWorstVariant::InvK`], `O(1/k)` for
    /// [`GWorstVariant::Half`].
    #[must_use]
    pub fn analytic_ratio(&self) -> f64 {
        self.analytic_worst_eq_p() / self.analytic_worst_eq_c_bound()
    }

    /// Agent permutations generating the game's automorphism group: the
    /// `k` deterministic `u→w` agents are fully interchangeable (same
    /// terminal pair, same cost shares), so the adjacent transpositions
    /// `(i, i+1)` for `i < k−1` generate `S_k` on them; the stochastic
    /// agent `k` is fixed by every generator.
    ///
    /// Each generator is a full permutation of the `k+1` agents
    /// (`perm[i]` is where agent `i` goes). The symmetry-reduced sweep
    /// ([`bi_core::symmetry`]) re-derives exactly this group from the
    /// game data; the export pins it as a testable contract.
    #[must_use]
    pub fn automorphism_generators(&self) -> Vec<Vec<usize>> {
        adjacent_transpositions(self.k + 1, self.k)
    }
}

/// The adjacent transpositions `(i, i+1)` for `i < class_len − 1`, each
/// as a full permutation of `total` agents.
fn adjacent_transpositions(total: usize, class_len: usize) -> Vec<Vec<usize>> {
    (0..class_len.saturating_sub(1))
        .map(|i| {
            let mut perm: Vec<usize> = (0..total).collect();
            perm.swap(i, i + 1);
            perm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invk_variant_ratio_grows_linearly() {
        for k in [4usize, 6, 8] {
            let g = GWorstGame::new(k, GWorstVariant::InvK).unwrap();
            let m = g.exact_measures().unwrap();
            m.verify_chain().unwrap();
            assert!(
                (m.worst_eq_p - g.analytic_worst_eq_p()).abs() < 1e-9,
                "k={k}: worst-eqP {} vs analytic {}",
                m.worst_eq_p,
                g.analytic_worst_eq_p()
            );
            assert!(
                m.worst_eq_c <= g.analytic_worst_eq_c_bound() + 1e-9,
                "k={k}: worst-eqC {} above bound {}",
                m.worst_eq_c,
                g.analytic_worst_eq_c_bound()
            );
            let ratio = m.worst_eq_p / m.worst_eq_c;
            assert!(
                ratio > k as f64 / 4.0,
                "k={k}: ratio {ratio} should be Ω(k)"
            );
        }
    }

    #[test]
    fn half_variant_ratio_shrinks_inversely() {
        for k in [4usize, 6, 8] {
            let g = GWorstGame::new(k, GWorstVariant::Half).unwrap();
            let m = g.exact_measures().unwrap();
            m.verify_chain().unwrap();
            assert!(
                (m.worst_eq_p - g.analytic_worst_eq_p()).abs() < 1e-9,
                "k={k}: worst-eqP {} vs analytic {}",
                m.worst_eq_p,
                g.analytic_worst_eq_p()
            );
            assert!(
                m.worst_eq_c >= g.analytic_worst_eq_c_bound() - 1e-9,
                "k={k}: worst-eqC {} below bound {}",
                m.worst_eq_c,
                g.analytic_worst_eq_c_bound()
            );
            let ratio = m.worst_eq_p / m.worst_eq_c;
            assert!(
                ratio < 8.0 / k as f64,
                "k={k}: ratio {ratio} should be O(1/k)"
            );
        }
    }

    #[test]
    fn detour_profile_is_a_bayesian_equilibrium_in_invk() {
        let g = GWorstGame::new(6, GWorstVariant::InvK).unwrap();
        let graph = g.game().graph();
        let uv = graph.edges().find(|(_, e)| e.cost() > 2.0).unwrap().0;
        let vw = graph.edges().find(|(_, e)| e.cost() == 1.0).unwrap().0;
        // Agents 1..k take u-v-w; agent k+1 takes u-v when active.
        let mut s: Vec<Vec<bi_ncs::Path>> = (0..g.k()).map(|_| vec![vec![uv, vw]]).collect();
        // Agent k+1's types: (u,v) and (u,u) — order as collected.
        let types = &g.game().agent_types()[g.k()];
        let paths: Vec<bi_ncs::Path> = types
            .iter()
            .map(|&(src, dst)| if src == dst { Vec::new() } else { vec![uv] })
            .collect();
        s.push(paths);
        assert!(g.game().is_bayesian_equilibrium(&s));
        assert!((g.game().social_cost(&s) - (g.k() as f64 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn epsilon_intervals_match_the_proofs() {
        let g = GWorstGame::new(5, GWorstVariant::Half).unwrap();
        let k = 5.0;
        assert!(g.epsilon() > 1.0 / k && g.epsilon() < 1.5 / k);
        let g = GWorstGame::new(5, GWorstVariant::InvK).unwrap();
        assert!(g.epsilon() > 2.0 / k - 1.0 / (k * k) && g.epsilon() < 2.0 / k);
    }

    #[test]
    fn both_variants_live_on_three_vertices() {
        let g = GWorstGame::new(4, GWorstVariant::Half).unwrap();
        assert_eq!(g.game().graph().node_count(), 3);
        assert_eq!(g.game().graph().edge_count(), 3);
        assert_eq!(g.variant(), GWorstVariant::Half);
    }
}
