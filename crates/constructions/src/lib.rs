//! Every explicit construction from *Bayesian ignorance*, ready to
//! measure.
//!
//! Each module implements one proof's construction, exposes its analytic
//! cost formulas, and (where instance sizes permit) cross-validates them
//! against the exact solvers in [`bi_ncs`]:
//!
//! * [`affine_game`] — Lemma 3.2: the affine-plane Bayesian NCS game with
//!   `optP/worst-eqC = Ω(k)` on a directed `Θ(k²)`-vertex graph;
//! * [`pos_game`] — Lemma 3.3 (Fig. 1): the `G_k` game where *ignorance is
//!   bliss* — `worst-eqP = O(1)` while `best-eqC = Ω(log k)` (Remark 1);
//! * [`gworst`] — Lemmas 3.6/3.7 (Fig. 2): the 3-vertex `G_worst` games
//!   with `worst-eqP/worst-eqC = Ω(k)` and `= O(1/k)`;
//! * [`diamond_game`] — Lemma 3.5: the reduction from online Steiner trees
//!   on diamond graphs, giving `optP/optC = Ω(log n)` undirected;
//! * [`frt_strategy`] — Lemma 3.4: the FRT-tree strategy profile showing
//!   `optP/optC = O(log n)` undirected;
//! * [`potential_bound`] — Lemma 3.8: `best-eqP ≤ H(k)·optP` via the
//!   Bayesian potential minimizer;
//! * [`universal`] — Lemma 3.1 (`worst-eqP ≤ k·optC`) and Observation 2.2
//!   checkers plus the random-game sweeps that exercise them.
//!
//! # Examples
//!
//! ```
//! use bi_constructions::pos_game::GkGame;
//!
//! let game = GkGame::new(6).unwrap();
//! let m = game.exact_measures().unwrap();
//! // Ignorance is bliss: every Bayesian equilibrium beats the best
//! // complete-information equilibrium.
//! assert!(m.worst_eq_p < m.best_eq_c);
//! ```

pub mod affine_game;
pub mod diamond_game;
pub mod frt_strategy;
pub mod gworst;
pub mod pos_game;
pub mod potential_bound;
pub mod universal;
