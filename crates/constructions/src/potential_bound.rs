//! Lemma 3.8: `best-eqP ≤ H(k)·optP` via the Bayesian potential.
//!
//! The expected Rosenthal potential `Q` satisfies `Q/H(k) ≤ K ≤ Q`, and
//! its minimizer is a Bayesian equilibrium (Observation 2.1), so the best
//! Bayesian equilibrium costs at most `H(k)` times the partial-information
//! optimum — the Bayesian extension of the Anshelevich et al. price of
//! stability bound.

use bi_core::game::{EnumerationError, ProfileIter, MAX_ENUMERATION};
use bi_ncs::bayesian::NcsStrategyProfile;
use bi_ncs::{BayesianNcsGame, NcsError, Path};
use bi_util::harmonic;

/// The result of a Lemma 3.8 verification.
#[derive(Clone, Debug)]
pub struct PotentialBound {
    /// Social cost of the potential-minimizing strategy profile (an upper
    /// bound on `best-eqP` because the minimizer is an equilibrium).
    pub minimizer_cost: f64,
    /// The minimum Bayesian potential value.
    pub min_potential: f64,
    /// The partial-information optimum `optP`.
    pub opt_p: f64,
    /// The Lemma 3.8 bound `H(k)·optP`.
    pub bound: f64,
}

impl PotentialBound {
    /// Whether the bound holds (it must, for every NCS game).
    #[must_use]
    pub fn holds(&self) -> bool {
        bi_util::approx_le(self.minimizer_cost, self.bound)
    }
}

/// Finds the strategy profile minimizing the Bayesian potential by
/// exhaustive enumeration, returning it with its potential and social
/// cost, plus `optP` for the Lemma 3.8 comparison.
///
/// # Errors
///
/// Propagates enumeration errors.
pub fn potential_minimizer(
    game: &BayesianNcsGame,
) -> Result<(NcsStrategyProfile, PotentialBound), NcsError> {
    let sets = game.strategy_sets()?;
    let slot_sizes: Vec<usize> = sets.iter().flatten().map(Vec::len).collect();
    let total: u128 = slot_sizes.iter().map(|&s| s as u128).product();
    if total > MAX_ENUMERATION {
        return Err(NcsError::TooLarge(EnumerationError { required: total }));
    }
    let mut slots = Vec::new();
    for (i, types) in game.agent_types().iter().enumerate() {
        for tau in 0..types.len() {
            slots.push((i, tau));
        }
    }
    let mut best: Option<(NcsStrategyProfile, f64)> = None;
    let mut opt_p = f64::INFINITY;
    for assignment in ProfileIter::new(slot_sizes) {
        let mut s: NcsStrategyProfile = game
            .agent_types()
            .iter()
            .map(|types| vec![Path::new(); types.len()])
            .collect();
        for (&(i, tau), &choice) in slots.iter().zip(&assignment) {
            s[i][tau] = sets[i][tau][choice].clone();
        }
        let q = game.bayesian_potential(&s);
        opt_p = opt_p.min(game.social_cost(&s));
        if best.as_ref().is_none_or(|(_, bq)| q < *bq) {
            best = Some((s, q));
        }
    }
    let (minimizer, min_potential) = best.expect("strategy space is never empty");
    let minimizer_cost = game.social_cost(&minimizer);
    let k = game.num_agents();
    let bound = PotentialBound {
        minimizer_cost,
        min_potential,
        opt_p,
        bound: harmonic(k) * opt_p,
    };
    Ok((minimizer, bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universal::random_bayesian_ncs;
    use bi_graph::Direction;

    #[test]
    fn minimizer_is_always_a_bayesian_equilibrium() {
        // Observation 2.1's punchline.
        for seed in 0..6 {
            let game = random_bayesian_ncs(Direction::Directed, 5, 0.3, 2, 2, seed).unwrap();
            let (minimizer, _) = potential_minimizer(&game).unwrap();
            assert!(
                game.is_bayesian_equilibrium(&minimizer),
                "seed {seed}: potential minimizer must be an equilibrium"
            );
        }
    }

    #[test]
    fn lemma_3_8_bound_holds_on_random_games() {
        for seed in 0..6 {
            let game = random_bayesian_ncs(Direction::Undirected, 5, 0.3, 2, 2, seed).unwrap();
            let (_, bound) = potential_minimizer(&game).unwrap();
            assert!(
                bound.holds(),
                "seed {seed}: minimizer cost {} exceeds H(k)·optP = {}",
                bound.minimizer_cost,
                bound.bound
            );
        }
    }

    #[test]
    fn potential_sandwiches_social_cost() {
        // Q/H(k) ≤ K(s) ≤ Q for every strategy profile, spot-checked at
        // the minimizer.
        for seed in 0..4 {
            let game = random_bayesian_ncs(Direction::Directed, 4, 0.4, 2, 2, 100 + seed).unwrap();
            let (minimizer, bound) = potential_minimizer(&game).unwrap();
            let k = game.social_cost(&minimizer);
            let h = harmonic(game.num_agents());
            assert!(k <= bound.min_potential + 1e-9, "K ≤ Q");
            assert!(bound.min_potential <= h * k + 1e-9, "Q ≤ H(k)·K");
        }
    }

    #[test]
    fn best_eq_p_from_measures_respects_the_bound() {
        for seed in 0..4 {
            let game =
                random_bayesian_ncs(Direction::Undirected, 4, 0.4, 2, 2, 200 + seed).unwrap();
            let m = game.measures().unwrap();
            let bound = harmonic(game.num_agents()) * m.opt_p;
            assert!(
                bi_util::approx_le(m.best_eq_p, bound),
                "seed {seed}: best-eqP {} vs H(k)·optP {}",
                m.best_eq_p,
                bound
            );
        }
    }
}
