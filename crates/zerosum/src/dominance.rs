//! Iterated elimination of strictly dominated actions in matrix games.
//!
//! A preprocessing step for the Section 4 solver: strategy profiles that
//! are strictly dominated can never appear in the Lemma 4.1 distribution,
//! and dropping them shrinks the LP. Elimination preserves the game value
//! and (after re-inflation) the optimal strategies.

use crate::matrix_game::MatrixGame;

/// The result of iterated strict-dominance elimination.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The reduced game.
    pub game: MatrixGame,
    /// Indices of the surviving rows in the original game.
    pub rows: Vec<usize>,
    /// Indices of the surviving columns in the original game.
    pub cols: Vec<usize>,
}

impl Reduced {
    /// Re-inflates a reduced row strategy to the original action space
    /// (eliminated actions get probability 0).
    ///
    /// # Panics
    ///
    /// Panics if `strategy` does not match the reduced row count.
    #[must_use]
    pub fn inflate_row(&self, strategy: &[f64], original_rows: usize) -> Vec<f64> {
        assert_eq!(strategy.len(), self.rows.len(), "strategy length");
        let mut out = vec![0.0; original_rows];
        for (&idx, &p) in self.rows.iter().zip(strategy) {
            out[idx] = p;
        }
        out
    }

    /// Re-inflates a reduced column strategy to the original action space.
    ///
    /// # Panics
    ///
    /// Panics if `strategy` does not match the reduced column count.
    #[must_use]
    pub fn inflate_col(&self, strategy: &[f64], original_cols: usize) -> Vec<f64> {
        assert_eq!(strategy.len(), self.cols.len(), "strategy length");
        let mut out = vec![0.0; original_cols];
        for (&idx, &p) in self.cols.iter().zip(strategy) {
            out[idx] = p;
        }
        out
    }
}

/// Iteratively removes strictly dominated rows (for the maximizer) and
/// columns (for the minimizer) until a fixed point.
///
/// Only *pure-strategy* dominance is used (sound but not complete); the
/// value of the reduced game equals the value of the original.
///
/// # Examples
///
/// ```
/// use bi_zerosum::{dominance, matrix_game::MatrixGame};
///
/// // Row 0 strictly dominates row 1; column 1 then dominates column 0.
/// let g = MatrixGame::new(vec![vec![3.0, 2.0], vec![1.0, 0.0]]).unwrap();
/// let r = dominance::eliminate(&g);
/// assert_eq!(r.rows, vec![0]);
/// assert_eq!(r.cols, vec![1]);
/// ```
#[must_use]
pub fn eliminate(game: &MatrixGame) -> Reduced {
    let payoff = game.payoff();
    let mut rows: Vec<usize> = (0..game.rows()).collect();
    let mut cols: Vec<usize> = (0..game.cols()).collect();
    loop {
        let mut changed = false;
        // Rows: the maximizer discards row r if some row r' is strictly
        // better against every surviving column.
        let mut keep_rows = Vec::with_capacity(rows.len());
        'row: for (pos, &r) in rows.iter().enumerate() {
            for (other_pos, &r2) in rows.iter().enumerate() {
                if pos == other_pos {
                    continue;
                }
                // Among equal rows keep the first occurrence only if the
                // dominating row survives; strict dominance avoids ties.
                if cols.iter().all(|&c| payoff[r2][c] > payoff[r][c]) {
                    changed = true;
                    continue 'row;
                }
            }
            keep_rows.push(r);
        }
        rows = keep_rows;
        // Columns: the minimizer discards column c if some c' is strictly
        // smaller against every surviving row.
        let mut keep_cols = Vec::with_capacity(cols.len());
        'col: for (pos, &c) in cols.iter().enumerate() {
            for (other_pos, &c2) in cols.iter().enumerate() {
                if pos == other_pos {
                    continue;
                }
                if rows.iter().all(|&r| payoff[r][c2] < payoff[r][c]) {
                    changed = true;
                    continue 'col;
                }
            }
            keep_cols.push(c);
        }
        cols = keep_cols;
        if !changed {
            break;
        }
    }
    let reduced_payoff: Vec<Vec<f64>> = rows
        .iter()
        .map(|&r| cols.iter().map(|&c| payoff[r][c]).collect())
        .collect();
    Reduced {
        game: MatrixGame::new(reduced_payoff).expect("submatrix of a valid game"),
        rows,
        cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elimination_preserves_the_value() {
        use rand::Rng;
        let mut rng = bi_util::rng::seeded(31);
        for _ in 0..20 {
            let m = rng.random_range(2..6);
            let n = rng.random_range(2..6);
            let payoff: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.random_range(-3.0..3.0)).collect())
                .collect();
            let game = MatrixGame::new(payoff).unwrap();
            let full = game.solve().unwrap().value;
            let reduced = eliminate(&game);
            let red = reduced.game.solve().unwrap().value;
            assert!((full - red).abs() < 1e-7, "value changed: {full} vs {red}");
        }
    }

    #[test]
    fn inflated_strategies_remain_optimal() {
        let game = MatrixGame::new(vec![
            vec![3.0, 2.0, 5.0],
            vec![1.0, 0.0, 4.0],
            vec![2.5, 1.5, 6.0],
        ])
        .unwrap();
        let reduced = eliminate(&game);
        let sol = reduced.game.solve().unwrap();
        let x = reduced.inflate_row(&sol.row_strategy, game.rows());
        let y = reduced.inflate_col(&sol.col_strategy, game.cols());
        let (r, c) = game.exploitability(&x, &y);
        assert!(r.abs() < 1e-7 && c.abs() < 1e-7);
    }

    #[test]
    fn undominated_games_are_untouched() {
        // Matching pennies: nothing is dominated.
        let game = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let reduced = eliminate(&game);
        assert_eq!(reduced.rows, vec![0, 1]);
        assert_eq!(reduced.cols, vec![0, 1]);
    }

    #[test]
    fn saddle_points_collapse_to_one_by_one() {
        let game = MatrixGame::new(vec![vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        let reduced = eliminate(&game);
        assert_eq!(reduced.rows, vec![1]);
        assert_eq!(reduced.cols, vec![0]);
        assert_eq!(reduced.game.payoff()[0][0], 2.0);
    }
}
