//! Multiplicative-weights (Hedge) solver for zero-sum matrix games.
//!
//! The row player maintains exponential weights over rows; each round the
//! column player best-responds to the current mixture. The time-averaged
//! play converges to the game value at rate `O(√(ln m / T))`, giving a
//! second independent approximate solver to cross-check the simplex LP.

use crate::matrix_game::MatrixGame;

/// Result of a multiplicative-weights run.
#[derive(Clone, Debug)]
pub struct MwResult {
    /// Time-averaged row strategy.
    pub row_strategy: Vec<f64>,
    /// Time-averaged column strategy (mixture over the best responses).
    pub col_strategy: Vec<f64>,
    /// Value bracket `[min_j (x̄ M)_j, max_i (M ȳ)_i]`.
    pub value_bounds: (f64, f64),
}

impl MwResult {
    /// Midpoint of the value bracket.
    #[must_use]
    pub fn value_estimate(&self) -> f64 {
        0.5 * (self.value_bounds.0 + self.value_bounds.1)
    }
}

/// Runs Hedge for the row player over `rounds` rounds with the standard
/// learning rate `η = √(8 ln m / T)` clipped to payoff range 1 (payoffs
/// are rescaled internally).
///
/// # Panics
///
/// Panics if `rounds == 0`.
///
/// # Examples
///
/// ```
/// use bi_zerosum::matrix_game::MatrixGame;
///
/// let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// let r = bi_zerosum::mw::solve(&g, 4000);
/// assert!(r.value_estimate().abs() < 0.1);
/// ```
#[must_use]
pub fn solve(game: &MatrixGame, rounds: usize) -> MwResult {
    assert!(rounds > 0, "need at least one round");
    let m = game.rows();
    let n = game.cols();
    let payoff = game.payoff();
    let (lo, hi) = payoff
        .iter()
        .flatten()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
            (lo.min(p), hi.max(p))
        });
    let range = (hi - lo).max(1e-12);
    let eta = (8.0 * (m as f64).ln().max(1.0) / rounds as f64).sqrt();
    let mut log_w = vec![0.0f64; m];
    let mut avg_x = vec![0.0f64; m];
    let mut col_hist = vec![0.0f64; n];
    for _ in 0..rounds {
        let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut x: Vec<f64> = log_w.iter().map(|&lw| (lw - max_lw).exp()).collect();
        let sum: f64 = x.iter().sum();
        for xi in &mut x {
            *xi /= sum;
        }
        // Column player best-responds (minimizes).
        let best_j = (0..n)
            .map(|j| {
                let v: f64 = x.iter().zip(payoff).map(|(xi, row)| xi * row[j]).sum();
                (j, v)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(j, _)| j)
            .expect("matrix games have at least one column");
        col_hist[best_j] += 1.0;
        for i in 0..m {
            // Row player gains payoff[i][best_j]; normalize to [0,1].
            let gain = (payoff[i][best_j] - lo) / range;
            log_w[i] += eta * gain;
        }
        for (a, xi) in avg_x.iter_mut().zip(&x) {
            *a += xi;
        }
    }
    let t = rounds as f64;
    let x: Vec<f64> = avg_x.into_iter().map(|v| v / t).collect();
    let y: Vec<f64> = col_hist.into_iter().map(|v| v / t).collect();
    let lower = (0..n)
        .map(|j| (0..m).map(|i| x[i] * payoff[i][j]).sum::<f64>())
        .fold(f64::INFINITY, f64::min);
    let upper = (0..m)
        .map(|i| (0..n).map(|j| payoff[i][j] * y[j]).sum::<f64>())
        .fold(f64::NEG_INFINITY, f64::max);
    MwResult {
        row_strategy: x,
        col_strategy: y,
        value_bounds: (lower, upper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximates_known_values() {
        let g = MatrixGame::new(vec![vec![2.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let r = solve(&g, 20_000);
        assert!(
            (r.value_estimate() - 0.2).abs() < 0.05,
            "{:?}",
            r.value_bounds
        );
    }

    #[test]
    fn agrees_with_simplex_on_random_games() {
        use rand::Rng;
        let mut rng = bi_util::rng::seeded(23);
        for _ in 0..5 {
            let m = rng.random_range(2..6);
            let n = rng.random_range(2..6);
            let payoff: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.random_range(-1.0..1.0)).collect())
                .collect();
            let g = MatrixGame::new(payoff).unwrap();
            let exact = g.solve().unwrap().value;
            let approx = solve(&g, 30_000).value_estimate();
            assert!(
                (exact - approx).abs() < 0.08,
                "exact {exact} vs mw {approx}"
            );
        }
    }

    #[test]
    fn constant_matrix_has_constant_value() {
        let g = MatrixGame::new(vec![vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap();
        let r = solve(&g, 100);
        assert!((r.value_estimate() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn output_strategies_are_distributions() {
        let g = MatrixGame::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let r = solve(&g, 500);
        assert!((r.row_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((r.col_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
