//! Fictitious play for zero-sum matrix games.
//!
//! Robinson (1951) proved that the empirical strategies of fictitious play
//! converge to the game value in zero-sum games. The workspace uses this as
//! an independent cross-check of the simplex solution and as an anytime
//! approximate solver for matrices too large for exact LP comfort.

use crate::matrix_game::MatrixGame;

/// Result of a fictitious-play run.
#[derive(Clone, Debug)]
pub struct FictitiousResult {
    /// Empirical (time-averaged) row strategy.
    pub row_strategy: Vec<f64>,
    /// Empirical column strategy.
    pub col_strategy: Vec<f64>,
    /// Value interval `[lower, upper]` bracketing the game value:
    /// `lower = min_j (x M)_j`, `upper = max_i (M y)_i`.
    pub value_bounds: (f64, f64),
    /// Number of iterations performed.
    pub iterations: usize,
}

impl FictitiousResult {
    /// Midpoint of the value bracket.
    #[must_use]
    pub fn value_estimate(&self) -> f64 {
        0.5 * (self.value_bounds.0 + self.value_bounds.1)
    }
}

/// Runs synchronous fictitious play for `iterations` rounds.
///
/// Each round both players best-respond to the opponent's empirical
/// mixture; the returned strategies are the empirical averages, whose
/// value bracket shrinks as `O(1/√T)`-ish in practice.
///
/// # Panics
///
/// Panics if `iterations == 0`.
///
/// # Examples
///
/// ```
/// use bi_zerosum::matrix_game::MatrixGame;
///
/// let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// let r = bi_zerosum::fictitious::play(&g, 2000);
/// assert!(r.value_bounds.0 <= 0.0 + 1e-9 && 0.0 <= r.value_bounds.1 + 1e-9);
/// assert!((r.value_estimate()).abs() < 0.1);
/// ```
#[must_use]
pub fn play(game: &MatrixGame, iterations: usize) -> FictitiousResult {
    assert!(iterations > 0, "need at least one iteration");
    let m = game.rows();
    let n = game.cols();
    let payoff = game.payoff();
    // Cumulative payoff each pure row gets against the column history, and
    // symmetrically for columns.
    let mut row_scores = vec![0.0f64; m];
    let mut col_scores = vec![0.0f64; n];
    let mut row_counts = vec![0usize; m];
    let mut col_counts = vec![0usize; n];
    // Start from action 0 for both.
    let mut row_play = 0usize;
    let mut col_play = 0usize;
    for _ in 0..iterations {
        row_counts[row_play] += 1;
        col_counts[col_play] += 1;
        for (i, score) in row_scores.iter_mut().enumerate() {
            *score += payoff[i][col_play];
        }
        for (j, score) in col_scores.iter_mut().enumerate() {
            *score += payoff[row_play][j];
        }
        row_play = argmax(&row_scores);
        col_play = argmin(&col_scores);
    }
    let total = iterations as f64;
    let x: Vec<f64> = row_counts.iter().map(|&c| c as f64 / total).collect();
    let y: Vec<f64> = col_counts.iter().map(|&c| c as f64 / total).collect();
    let lower = (0..n)
        .map(|j| (0..m).map(|i| x[i] * payoff[i][j]).sum::<f64>())
        .fold(f64::INFINITY, f64::min);
    let upper = (0..m)
        .map(|i| (0..n).map(|j| payoff[i][j] * y[j]).sum::<f64>())
        .fold(f64::NEG_INFINITY, f64::max);
    FictitiousResult {
        row_strategy: x,
        col_strategy: y,
        value_bounds: (lower, upper),
        iterations,
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_contain_the_true_value() {
        use rand::Rng;
        let mut rng = bi_util::rng::seeded(5);
        for _ in 0..10 {
            let m = rng.random_range(2..5);
            let n = rng.random_range(2..5);
            let payoff: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.random_range(-2.0..2.0)).collect())
                .collect();
            let g = MatrixGame::new(payoff).unwrap();
            let exact = g.solve().unwrap().value;
            let fp = play(&g, 5000);
            assert!(
                fp.value_bounds.0 <= exact + 1e-6 && exact <= fp.value_bounds.1 + 1e-6,
                "value {exact} outside [{}, {}]",
                fp.value_bounds.0,
                fp.value_bounds.1
            );
        }
    }

    #[test]
    fn converges_on_rock_paper_scissors() {
        let g = MatrixGame::new(vec![
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap();
        let fp = play(&g, 20_000);
        assert!(fp.value_estimate().abs() < 0.05);
        for p in &fp.row_strategy {
            assert!((p - 1.0 / 3.0).abs() < 0.1);
        }
    }

    #[test]
    fn pure_saddle_points_lock_in() {
        let g = MatrixGame::new(vec![vec![0.0, 1.0], vec![-1.0, 2.0]]).unwrap();
        // Saddle at (0,0): value 0.
        let fp = play(&g, 2000);
        assert!((fp.value_estimate() - 0.0).abs() < 0.05);
        assert!(fp.row_strategy[0] > 0.9);
        assert!(fp.col_strategy[0] > 0.9);
    }

    #[test]
    fn strategies_are_distributions() {
        let g = MatrixGame::new(vec![vec![1.0, 2.0], vec![3.0, 0.5]]).unwrap();
        let fp = play(&g, 100);
        assert!((fp.row_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fp.col_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(fp.iterations, 100);
    }
}
