//! Linear programming and zero-sum matrix games.
//!
//! Section 4 of *Bayesian ignorance* proves (via von Neumann's minimax
//! theorem) that public random bits can replace knowledge of the common
//! prior: there is a distribution `q ∈ Δ(S)` over strategy profiles whose
//! expected normalized social cost matches the optimal prior-aware bound
//! `R(φ)`. Making that constructive requires actually *solving* zero-sum
//! games, which this crate does three ways:
//!
//! * [`simplex`] — a dense primal simplex solver for LPs in the standard
//!   form `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (exactly the form
//!   matrix games reduce to), with dual extraction;
//! * [`matrix_game::MatrixGame`] — exact game values and optimal mixed
//!   strategies via the LP reduction;
//! * [`fictitious`] and [`mw`] — iterative solvers (fictitious play,
//!   multiplicative weights) used to cross-validate the LP and to handle
//!   larger matrices approximately.
//!
//! # Examples
//!
//! ```
//! use bi_zerosum::matrix_game::MatrixGame;
//!
//! // Matching pennies: value 0, uniform strategies.
//! let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
//! let sol = g.solve().unwrap();
//! assert!(sol.value.abs() < 1e-9);
//! assert!((sol.row_strategy[0] - 0.5).abs() < 1e-9);
//! ```

pub mod dominance;
pub mod fictitious;
pub mod matrix_game;
pub mod mw;
pub mod simplex;

pub use matrix_game::{GameSolution, MatrixGame};
pub use simplex::{LpError, LpSolution};
