//! A dense primal simplex solver for `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with
//! `b ≥ 0`.
//!
//! With non-negative right-hand sides the slack basis is feasible, so no
//! phase-1 is needed; Bland's anti-cycling rule guarantees termination.
//! This covers every LP in this workspace (matrix-game reductions and the
//! Proposition 4.2 feasibility probes), all of which arrive in this form.

use std::fmt;

const TOL: f64 = 1e-9;

/// Errors from [`solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot limit was hit (numerical trouble; should not happen with
    /// Bland's rule on well-scaled inputs).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex pivot limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal primal variables `x`.
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
    /// Optimal dual variables (shadow prices), one per constraint. By
    /// strong duality, `bᵀy` equals the objective.
    pub dual: Vec<f64>,
}

/// Solves `max cᵀx  s.t.  Ax ≤ b, x ≥ 0`.
///
/// # Errors
///
/// Returns [`LpError::Unbounded`] when the objective is unbounded and
/// [`LpError::IterationLimit`] when the (generous) pivot cap is hit.
///
/// # Panics
///
/// Panics if dimensions are inconsistent, any entry is non-finite, or some
/// `b_i < 0` (callers must pre-shift; every LP in this workspace has
/// `b ≥ 0` by construction).
///
/// # Examples
///
/// ```
/// // max x+y s.t. x ≤ 2, y ≤ 3, x+y ≤ 4
/// let sol = bi_zerosum::simplex::solve(
///     &[1.0, 1.0],
///     &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
///     &[2.0, 3.0, 4.0],
/// ).unwrap();
/// assert!((sol.objective - 4.0).abs() < 1e-9);
/// ```
pub fn solve(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b must have one entry per constraint");
    for row in a {
        assert_eq!(row.len(), n, "A rows must match the length of c");
    }
    assert!(
        c.iter()
            .chain(b.iter())
            .chain(a.iter().flatten())
            .all(|v| v.is_finite()),
        "LP data must be finite"
    );
    assert!(b.iter().all(|&bi| bi >= 0.0), "b must be non-negative");

    // Tableau layout: columns 0..n are structural variables, n..n+m slacks,
    // last column the RHS. Row m is the objective row (reduced costs).
    let width = n + m + 1;
    let mut t = vec![vec![0.0f64; width]; m + 1];
    for i in 0..m {
        t[i][..n].copy_from_slice(&a[i]);
        t[i][n + i] = 1.0;
        t[i][width - 1] = b[i];
    }
    t[m][..n].copy_from_slice(c);
    let mut basis: Vec<usize> = (n..n + m).collect();

    let max_pivots = 50_000 + 200 * (n + m);
    for _ in 0..max_pivots {
        // Bland's rule: entering variable = smallest index with positive
        // reduced cost.
        let Some(enter) = (0..n + m).find(|&j| t[m][j] > TOL) else {
            return Ok(extract(&t, &basis, n, m));
        };
        // Ratio test, Bland tie-break on the leaving basis variable.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, row) in t.iter().enumerate().take(m) {
            if row[enter] > TOL {
                let ratio = row[width - 1] / row[enter];
                if ratio < best - TOL
                    || (ratio < best + TOL && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(&mut t, leave, enter);
        basis[leave] = enter;
    }
    Err(LpError::IterationLimit)
}

fn pivot(t: &mut [Vec<f64>], row: usize, col: usize) {
    let pv = t[row][col];
    debug_assert!(pv.abs() > TOL, "pivot on (near-)zero element");
    for v in &mut t[row] {
        *v /= pv;
    }
    let (above, rest) = t.split_at_mut(row);
    let (pivot_row, below) = rest.split_first_mut().expect("row in range");
    for r in above.iter_mut().chain(below.iter_mut()) {
        if r[col].abs() > 0.0 {
            let f = r[col];
            for (v, &p) in r.iter_mut().zip(&*pivot_row) {
                *v -= f * p;
            }
        }
    }
}

fn extract(t: &[Vec<f64>], basis: &[usize], n: usize, m: usize) -> LpSolution {
    let width = n + m + 1;
    let mut x = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = t[i][width - 1];
        }
    }
    // Pivoting keeps -cᵀx in the objective row's RHS cell.
    let objective = -t[m][width - 1];
    // Duals are the negated reduced costs of the slack columns.
    let dual = (0..m).map(|i| -t[m][n + i]).collect();
    LpSolution { x, objective, dual }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn solves_textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj 36.
        let sol = solve(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        )
        .unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn strong_duality_holds() {
        let c = [3.0, 5.0];
        let b = [4.0, 12.0, 18.0];
        let sol = solve(&c, &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]], &b).unwrap();
        let dual_obj: f64 = b.iter().zip(&sol.dual).map(|(bi, yi)| bi * yi).sum();
        assert_close(dual_obj, sol.objective);
        assert!(sol.dual.iter().all(|&y| y >= -1e-9));
    }

    #[test]
    fn zero_objective_stays_at_origin() {
        let sol = solve(&[0.0, 0.0], &[vec![1.0, 1.0]], &[5.0]).unwrap();
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn detects_unbounded_problems() {
        // max x with no binding constraint on x.
        let err = solve(&[1.0], &[vec![-1.0]], &[1.0]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
        assert!(err.to_string().contains("unbounded"));
    }

    #[test]
    fn degenerate_constraints_terminate() {
        // Multiple redundant constraints through the optimum.
        let sol = solve(
            &[1.0, 1.0],
            &[
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![1.0, 0.0],
            ],
            &[2.0, 2.0, 4.0, 2.0],
        )
        .unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn binding_constraint_identification_via_duals() {
        // Only the second constraint binds at the optimum.
        let sol = solve(&[1.0], &[vec![1.0], vec![1.0]], &[10.0, 2.0]).unwrap();
        assert_close(sol.objective, 2.0);
        assert_close(sol.dual[0], 0.0);
        assert_close(sol.dual[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rhs() {
        let _ = solve(&[1.0], &[vec![1.0]], &[-1.0]);
    }

    #[test]
    fn random_lps_satisfy_kkt_spot_checks() {
        use rand::Rng;
        let mut rng = bi_util::rng::seeded(3);
        for _ in 0..30 {
            let n = rng.random_range(1..5);
            let m = rng.random_range(1..6);
            let c: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..2.0)).collect();
            let a: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.random_range(0.1..2.0)).collect())
                .collect();
            let b: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..3.0)).collect();
            let sol = solve(&c, &a, &b).unwrap();
            // Primal feasibility.
            for (row, &bi) in a.iter().zip(&b) {
                let lhs: f64 = row.iter().zip(&sol.x).map(|(aij, xj)| aij * xj).sum();
                assert!(lhs <= bi + 1e-7);
            }
            assert!(sol.x.iter().all(|&x| x >= -1e-9));
            // Strong duality.
            let dual_obj: f64 = b.iter().zip(&sol.dual).map(|(bi, yi)| bi * yi).sum();
            assert!((dual_obj - sol.objective).abs() < 1e-6);
        }
    }
}
