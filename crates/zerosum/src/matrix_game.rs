//! Exact zero-sum matrix games via the LP reduction.

use std::fmt;

use crate::simplex::{self, LpError};

/// Errors constructing or solving a [`MatrixGame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GameError {
    /// The payoff matrix is empty or ragged.
    BadShape,
    /// A payoff entry is not finite.
    BadEntry,
    /// The underlying LP failed (numerically).
    Lp(LpError),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::BadShape => write!(f, "payoff matrix must be rectangular and non-empty"),
            GameError::BadEntry => write!(f, "payoff entries must be finite"),
            GameError::Lp(e) => write!(f, "LP solver failed: {e}"),
        }
    }
}

impl std::error::Error for GameError {}

/// A two-player zero-sum game given by a payoff matrix `M`: the **row
/// player maximizes** `x M yᵀ`, the column player minimizes it.
///
/// # Examples
///
/// ```
/// use bi_zerosum::matrix_game::MatrixGame;
///
/// // Rock-paper-scissors.
/// let g = MatrixGame::new(vec![
///     vec![0.0, -1.0, 1.0],
///     vec![1.0, 0.0, -1.0],
///     vec![-1.0, 1.0, 0.0],
/// ]).unwrap();
/// let sol = g.solve().unwrap();
/// assert!(sol.value.abs() < 1e-9);
/// assert!(sol.col_strategy.iter().all(|&p| (p - 1.0/3.0).abs() < 1e-9));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixGame {
    payoff: Vec<Vec<f64>>,
}

/// The value and optimal mixed strategies of a [`MatrixGame`].
#[derive(Clone, Debug)]
pub struct GameSolution {
    /// The game value `v = max_x min_y x M yᵀ`.
    pub value: f64,
    /// An optimal mixed strategy for the (maximizing) row player.
    pub row_strategy: Vec<f64>,
    /// An optimal mixed strategy for the (minimizing) column player.
    pub col_strategy: Vec<f64>,
}

impl MatrixGame {
    /// Creates a game from a rectangular, finite payoff matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::BadShape`] for empty/ragged input and
    /// [`GameError::BadEntry`] for non-finite entries.
    pub fn new(payoff: Vec<Vec<f64>>) -> Result<Self, GameError> {
        if payoff.is_empty() || payoff[0].is_empty() {
            return Err(GameError::BadShape);
        }
        let ncols = payoff[0].len();
        if payoff.iter().any(|r| r.len() != ncols) {
            return Err(GameError::BadShape);
        }
        if payoff.iter().flatten().any(|v| !v.is_finite()) {
            return Err(GameError::BadEntry);
        }
        Ok(MatrixGame { payoff })
    }

    /// Number of row-player actions.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.payoff.len()
    }

    /// Number of column-player actions.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.payoff[0].len()
    }

    /// The payoff matrix.
    #[must_use]
    pub fn payoff(&self) -> &[Vec<f64>] {
        &self.payoff
    }

    /// Expected payoff `x M yᵀ` of a mixed strategy pair.
    ///
    /// # Panics
    ///
    /// Panics if the strategy lengths do not match the matrix.
    #[must_use]
    pub fn expected_payoff(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.rows());
        assert_eq!(y.len(), self.cols());
        self.payoff
            .iter()
            .zip(x)
            .map(|(row, &xi)| xi * row.iter().zip(y).map(|(m, &yj)| m * yj).sum::<f64>())
            .sum()
    }

    /// Solves the game exactly: value plus optimal mixed strategies.
    ///
    /// Uses the classical reduction: after shifting `M` to be strictly
    /// positive, the column player's LP `max Σw  s.t.  M w ≤ 1, w ≥ 0` has
    /// optimum `1/v'`, the normalized `w` is her optimal strategy, and the
    /// LP duals normalize to the row player's optimal strategy.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Lp`] if the simplex solver fails numerically
    /// (it cannot be unbounded for a shifted game).
    pub fn solve(&self) -> Result<GameSolution, GameError> {
        let min_entry = self
            .payoff
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let shift = if min_entry < 1.0 {
            1.0 - min_entry
        } else {
            0.0
        };
        let m = self.rows();
        let n = self.cols();
        let shifted: Vec<Vec<f64>> = self
            .payoff
            .iter()
            .map(|row| row.iter().map(|&p| p + shift).collect())
            .collect();
        let c = vec![1.0; n];
        let b = vec![1.0; m];
        let sol = simplex::solve(&c, &shifted, &b).map_err(GameError::Lp)?;
        let inv_value = sol.objective;
        debug_assert!(inv_value > 0.0, "shifted game has positive value");
        let value_shifted = 1.0 / inv_value;
        let col_strategy: Vec<f64> = sol.x.iter().map(|&w| w * value_shifted).collect();
        let row_strategy: Vec<f64> = sol.dual.iter().map(|&u| u * value_shifted).collect();
        Ok(GameSolution {
            value: value_shifted - shift,
            row_strategy: normalize(row_strategy),
            col_strategy: normalize(col_strategy),
        })
    }

    /// How much each player could gain by deviating from `(x, y)`:
    /// returns `(row_regret, col_regret)` where `row_regret = max_i (M y)_i − x M yᵀ`
    /// and `col_regret = x M yᵀ − min_j (x M)_j`. Both are ≈ 0 exactly at
    /// an equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if the strategy lengths do not match the matrix.
    #[must_use]
    pub fn exploitability(&self, x: &[f64], y: &[f64]) -> (f64, f64) {
        let base = self.expected_payoff(x, y);
        let best_row = (0..self.rows())
            .map(|i| {
                self.payoff[i]
                    .iter()
                    .zip(y)
                    .map(|(m, &yj)| m * yj)
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let best_col = (0..self.cols())
            .map(|j| {
                self.payoff
                    .iter()
                    .zip(x)
                    .map(|(row, &xi)| row[j] * xi)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        (best_row - base, base - best_col)
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in &mut v {
            *x /= sum;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_matrices() {
        assert_eq!(MatrixGame::new(vec![]).unwrap_err(), GameError::BadShape);
        assert_eq!(
            MatrixGame::new(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            GameError::BadShape
        );
        assert_eq!(
            MatrixGame::new(vec![vec![f64::NAN]]).unwrap_err(),
            GameError::BadEntry
        );
    }

    #[test]
    fn saddle_point_game_is_pure() {
        // Row 1 dominates; column 0 dominates. Value = M[1][0] = 2.
        let g = MatrixGame::new(vec![vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        let sol = g.solve().unwrap();
        assert!((sol.value - 2.0).abs() < 1e-9);
        assert!((sol.row_strategy[1] - 1.0).abs() < 1e-9);
        assert!((sol.col_strategy[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matching_pennies_mixes_uniformly() {
        let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol = g.solve().unwrap();
        assert!(sol.value.abs() < 1e-9);
        for p in sol.row_strategy.iter().chain(&sol.col_strategy) {
            assert!((p - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn known_asymmetric_game() {
        // M = [[2, -1], [-1, 1]]: value = (2·1 − 1)/(2+1+1+1) = 1/5,
        // x = (2/5, 3/5), y = (2/5, 3/5).
        let g = MatrixGame::new(vec![vec![2.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol = g.solve().unwrap();
        assert!((sol.value - 0.2).abs() < 1e-9);
        assert!((sol.row_strategy[0] - 0.4).abs() < 1e-9);
        assert!((sol.col_strategy[0] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn solution_has_no_exploitability() {
        let g = MatrixGame::new(vec![vec![3.0, -2.0, 4.0], vec![-1.0, 5.0, 0.0]]).unwrap();
        let sol = g.solve().unwrap();
        let (r, c) = g.exploitability(&sol.row_strategy, &sol.col_strategy);
        assert!(r.abs() < 1e-7, "row regret {r}");
        assert!(c.abs() < 1e-7, "col regret {c}");
    }

    #[test]
    fn value_is_antisymmetric_under_transpose_negation() {
        use rand::Rng;
        let mut rng = bi_util::rng::seeded(17);
        for _ in 0..20 {
            let m = rng.random_range(2..5);
            let n = rng.random_range(2..5);
            let payoff: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.random_range(-3.0..3.0)).collect())
                .collect();
            let g = MatrixGame::new(payoff.clone()).unwrap();
            let v = g.solve().unwrap().value;
            let transposed_negated: Vec<Vec<f64>> = (0..n)
                .map(|j| (0..m).map(|i| -payoff[i][j]).collect())
                .collect();
            let g2 = MatrixGame::new(transposed_negated).unwrap();
            let v2 = g2.solve().unwrap().value;
            assert!((v + v2).abs() < 1e-7, "v={v}, v2={v2}");
        }
    }

    #[test]
    fn strategies_are_distributions() {
        let g = MatrixGame::new(vec![
            vec![0.0, 2.0, -1.0],
            vec![1.0, -2.0, 3.0],
            vec![-1.0, 1.0, 1.0],
        ])
        .unwrap();
        let sol = g.solve().unwrap();
        assert!((sol.row_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((sol.col_strategy.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(sol
            .row_strategy
            .iter()
            .chain(&sol.col_strategy)
            .all(|&p| p >= -1e-12));
    }

    #[test]
    fn expected_payoff_matches_value_at_equilibrium() {
        let g = MatrixGame::new(vec![vec![1.0, 4.0], vec![3.0, 2.0]]).unwrap();
        let sol = g.solve().unwrap();
        let ep = g.expected_payoff(&sol.row_strategy, &sol.col_strategy);
        assert!((ep - sol.value).abs() < 1e-9);
        // Known value: (1·2 − 4·3)/(1+2−4−3) = (2−12)/(−4) = 2.5
        assert!((sol.value - 2.5).abs() < 1e-9);
    }
}
