//! Common priors over `(source, destination)` type profiles.

use bi_graph::NodeId;
use bi_util::approx_eq;

use crate::error::NcsError;

/// The type of an NCS agent: her `(source, destination)` pair (Section 2
/// of the paper sets `T_i = V × V`).
pub type AgentType = (NodeId, NodeId);

/// Cap on the expanded support size of an independent prior.
pub const MAX_SUPPORT: usize = 200_000;

/// A common prior over type profiles, either as an explicit joint support
/// or as independent per-agent distributions (whose product is expanded on
/// demand).
///
/// # Examples
///
/// ```
/// use bi_graph::NodeId;
/// use bi_ncs::Prior;
///
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let prior = Prior::independent(vec![
///     vec![((a, b), 1.0)],
///     vec![((a, b), 0.5), ((a, a), 0.5)],
/// ]);
/// let support = prior.support().unwrap();
/// assert_eq!(support.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Prior {
    /// Explicit support: `(type profile, probability)` pairs.
    Joint(Vec<(Vec<AgentType>, f64)>),
    /// Independent per-agent type distributions.
    Independent(Vec<Vec<(AgentType, f64)>>),
}

impl Prior {
    /// Convenience constructor for [`Prior::Joint`].
    #[must_use]
    pub fn joint(support: Vec<(Vec<AgentType>, f64)>) -> Self {
        Prior::Joint(support)
    }

    /// Convenience constructor for [`Prior::Independent`].
    ///
    /// Each inner vector is one agent's type distribution as
    /// `((source, destination), probability)` pairs; the joint support is
    /// their product.
    ///
    /// # Examples
    ///
    /// ```
    /// use bi_graph::NodeId;
    /// use bi_ncs::Prior;
    ///
    /// let (a, b) = (NodeId::new(0), NodeId::new(1));
    /// // Agent 0 is deterministic; agent 1 travels with probability 1/2.
    /// let prior = Prior::independent(vec![
    ///     vec![((a, b), 1.0)],
    ///     vec![((a, b), 0.5), ((a, a), 0.5)],
    /// ]);
    /// let support = prior.support().unwrap();
    /// assert_eq!(support.len(), 2);
    /// assert!(support.iter().all(|(_, p)| (p - 0.5).abs() < 1e-12));
    /// ```
    #[must_use]
    pub fn independent(per_agent: Vec<Vec<(AgentType, f64)>>) -> Self {
        Prior::Independent(per_agent)
    }

    /// Number of agents this prior describes.
    ///
    /// # Panics
    ///
    /// Panics on an empty joint support (callers hit the validation error
    /// in [`Prior::support`] first in practice).
    #[must_use]
    pub fn num_agents(&self) -> usize {
        match self {
            Prior::Joint(support) => support.first().map_or(0, |(t, _)| t.len()),
            Prior::Independent(per_agent) => per_agent.len(),
        }
    }

    /// Expands and validates the prior into an explicit support with
    /// positive probabilities summing to 1. Zero-probability entries are
    /// dropped; duplicate type profiles in a joint prior are merged.
    ///
    /// # Errors
    ///
    /// Returns [`NcsError::BadPrior`] for empty/negative/non-normalized
    /// input, and [`NcsError::TooLarge`] when an independent product
    /// exceeds [`MAX_SUPPORT`].
    pub fn support(&self) -> Result<Vec<(Vec<AgentType>, f64)>, NcsError> {
        match self {
            Prior::Joint(support) => {
                if support.is_empty() {
                    return Err(NcsError::BadPrior("empty support".into()));
                }
                let k = support[0].0.len();
                let mut total = 0.0;
                let mut out: Vec<(Vec<AgentType>, f64)> = Vec::new();
                for (types, prob) in support {
                    if types.len() != k {
                        return Err(NcsError::BadPrior(
                            "type profiles of differing lengths".into(),
                        ));
                    }
                    if *prob < 0.0 {
                        return Err(NcsError::BadPrior("negative probability".into()));
                    }
                    total += prob;
                    if *prob > 0.0 {
                        if let Some(entry) = out.iter_mut().find(|(t, _)| t == types) {
                            entry.1 += prob;
                        } else {
                            out.push((types.clone(), *prob));
                        }
                    }
                }
                if !approx_eq(total, 1.0) {
                    return Err(NcsError::BadPrior(format!(
                        "probabilities sum to {total}, expected 1"
                    )));
                }
                if out.is_empty() {
                    return Err(NcsError::BadPrior("all probabilities are zero".into()));
                }
                Ok(out)
            }
            Prior::Independent(per_agent) => {
                if per_agent.is_empty() {
                    return Err(NcsError::BadPrior("no agents".into()));
                }
                let mut size = 1usize;
                for (i, dist) in per_agent.iter().enumerate() {
                    if dist.is_empty() {
                        return Err(NcsError::BadPrior(format!("agent {i} has no types")));
                    }
                    let total: f64 = dist.iter().map(|(_, p)| p).sum();
                    if !approx_eq(total, 1.0) {
                        return Err(NcsError::BadPrior(format!(
                            "agent {i} marginal sums to {total}, expected 1"
                        )));
                    }
                    if dist.iter().any(|(_, p)| *p < 0.0) {
                        return Err(NcsError::BadPrior(format!(
                            "agent {i} has a negative probability"
                        )));
                    }
                    for (j, (t, _)) in dist.iter().enumerate() {
                        if dist[..j].iter().any(|(t2, _)| t2 == t) {
                            return Err(NcsError::BadPrior(format!(
                                "agent {i} lists a duplicate type"
                            )));
                        }
                    }
                    let positive = dist.iter().filter(|(_, p)| *p > 0.0).count();
                    size = size.saturating_mul(positive);
                    if size > MAX_SUPPORT {
                        return Err(NcsError::BadPrior(format!(
                            "independent product exceeds {MAX_SUPPORT} states"
                        )));
                    }
                }
                // Cartesian product of the positive-probability entries.
                let mut out: Vec<(Vec<AgentType>, f64)> = vec![(Vec::new(), 1.0)];
                for dist in per_agent {
                    let mut next = Vec::with_capacity(out.len() * dist.len());
                    for (types, prob) in &out {
                        for (t, p) in dist.iter().filter(|(_, p)| *p > 0.0) {
                            let mut extended = types.clone();
                            extended.push(*t);
                            next.push((extended, prob * p));
                        }
                    }
                    out = next;
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: usize, b: usize) -> AgentType {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn joint_support_round_trips() {
        let prior = Prior::joint(vec![
            (vec![t(0, 1), t(0, 2)], 0.25),
            (vec![t(0, 1), t(0, 0)], 0.75),
        ]);
        let support = prior.support().unwrap();
        assert_eq!(support.len(), 2);
        assert_eq!(prior.num_agents(), 2);
    }

    #[test]
    fn joint_duplicates_are_merged() {
        let prior = Prior::joint(vec![(vec![t(0, 1)], 0.5), (vec![t(0, 1)], 0.5)]);
        let support = prior.support().unwrap();
        assert_eq!(support.len(), 1);
        assert!(approx_eq(support[0].1, 1.0));
    }

    #[test]
    fn joint_validation_errors() {
        assert!(matches!(
            Prior::joint(vec![]).support(),
            Err(NcsError::BadPrior(_))
        ));
        assert!(matches!(
            Prior::joint(vec![(vec![t(0, 1)], 0.4)]).support(),
            Err(NcsError::BadPrior(_))
        ));
        assert!(matches!(
            Prior::joint(vec![(vec![t(0, 1)], 1.5), (vec![t(0, 2)], -0.5)]).support(),
            Err(NcsError::BadPrior(_))
        ));
        assert!(matches!(
            Prior::joint(vec![(vec![t(0, 1)], 0.5), (vec![t(0, 2), t(1, 1)], 0.5)]).support(),
            Err(NcsError::BadPrior(_))
        ));
    }

    #[test]
    fn independent_expands_the_product() {
        let prior = Prior::independent(vec![
            vec![(t(0, 1), 0.5), (t(0, 2), 0.5)],
            vec![(t(1, 2), 0.25), (t(1, 0), 0.75)],
        ]);
        let support = prior.support().unwrap();
        assert_eq!(support.len(), 4);
        let total: f64 = support.iter().map(|(_, p)| p).sum();
        assert!(approx_eq(total, 1.0));
    }

    #[test]
    fn independent_drops_zero_probability_types() {
        let prior = Prior::independent(vec![vec![(t(0, 1), 1.0), (t(0, 2), 0.0)]]);
        let support = prior.support().unwrap();
        assert_eq!(support.len(), 1);
    }

    #[test]
    fn independent_validation_errors() {
        assert!(matches!(
            Prior::independent(vec![]).support(),
            Err(NcsError::BadPrior(_))
        ));
        assert!(matches!(
            Prior::independent(vec![vec![(t(0, 1), 0.9)]]).support(),
            Err(NcsError::BadPrior(_))
        ));
        assert!(matches!(
            Prior::independent(vec![vec![(t(0, 1), 0.5), (t(0, 1), 0.5)]]).support(),
            Err(NcsError::BadPrior(_))
        ));
    }
}
