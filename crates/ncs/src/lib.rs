//! Network cost-sharing (NCS) games — the arena of *Bayesian ignorance*.
//!
//! An NCS game is a (di)graph with non-negative edge costs and `k` agents,
//! each of whom must buy an edge set connecting her source to her
//! destination; every bought edge's cost is split equally among its buyers
//! (fair / Shapley sharing). NCS games are congestion games with the
//! Rosenthal potential `q(a) = Σ_e c(e)·H(load_e(a))`, so pure Nash
//! equilibria always exist; by Observation 2.1 of the paper the
//! prior-expected potential makes every **Bayesian** NCS game a Bayesian
//! potential game too.
//!
//! * [`NcsGame`] — complete-information games: payments, potential, exact
//!   best responses (shortest path under `c(e)/(load+1)` reweighting),
//!   better-response dynamics, exhaustive equilibrium enumeration and
//!   social optima over enumerated path action sets;
//! * [`BayesianNcsGame`] — Bayesian games over a [`Prior`] on
//!   `(source, destination)` type profiles, with *exact* Bayesian
//!   equilibrium checking (interim best responses are shortest paths under
//!   expected shares, so no action-set truncation is involved) and the six
//!   measures of the paper;
//! * [`Prior`] — joint (explicit support) or independent per-agent type
//!   distributions.
//!
//! **Action-space convention.** The raw action space is `2^E`, but every
//! cost-minimal action and every equilibrium action of interest is a single
//! simple path (any feasible action contains a path, and dropping surplus
//! edges never raises a payment), so all exact algorithms operate on
//! enumerated simple-path action sets. Equilibrium *checks* compare
//! against best responses computed by Dijkstra over all paths, so they are
//! exact regardless of enumeration.
//!
//! # Examples
//!
//! ```
//! use bi_graph::{Direction, Graph};
//! use bi_ncs::NcsGame;
//!
//! let mut g = Graph::new(Direction::Directed);
//! let s = g.add_node();
//! let t = g.add_node();
//! g.add_edge(s, t, 3.0);
//! let game = NcsGame::new(g, vec![(s, t), (s, t)]).unwrap();
//! // Both agents share the only edge: 1.5 each.
//! let profile = game.action_sets(Default::default()).unwrap();
//! let joint = vec![profile[0][0].clone(), profile[1][0].clone()];
//! assert_eq!(game.payment(0, &joint), 1.5);
//! assert_eq!(game.social_cost(&joint), 3.0);
//! ```

pub mod analysis;
pub mod bayesian;
pub mod codec;
mod error;
mod game;
pub mod prior;

pub use bayesian::BayesianNcsGame;
pub use error::NcsError;
pub use game::{NcsGame, Path};
pub use prior::Prior;

// Re-exported so NCS users can drive the unified engine without naming
// `bi-core`: `BayesianNcsGame` implements `BayesianModel`, and any
// `Solver` (exhaustive, best-response dynamics, Monte Carlo) solves it.
pub use bi_core::model::BayesianModel;
pub use bi_core::solve::{Backend, Budget, SolveError, SolveReport, Solver, SolverBuilder};
