//! Error types for NCS game construction and analysis.

use std::fmt;

use bi_core::game::EnumerationError;

/// Errors constructing or analysing NCS games.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum NcsError {
    /// An agent's source or destination node is out of range.
    NodeOutOfRange {
        /// The agent whose terminal pair is invalid.
        agent: usize,
    },
    /// An agent's destination is unreachable from her source, so she has
    /// no finite-cost action.
    Unreachable {
        /// The agent with no finite-cost action.
        agent: usize,
    },
    /// Simple-path enumeration hit its limit before completing, so an
    /// exact computation over the action sets would be unsound.
    IncompleteActionSet {
        /// The agent whose action set was truncated.
        agent: usize,
    },
    /// Exact enumeration would exceed the workspace limit.
    TooLarge(EnumerationError),
    /// The prior is malformed (probabilities, dimensions, empty support).
    BadPrior(String),
    /// No pure Nash equilibrium was found in an underlying game. This
    /// cannot happen mathematically (NCS games are potential games); it
    /// signals an action-set or tolerance problem and is surfaced rather
    /// than silently absorbed.
    NoEquilibrium {
        /// The support-state index whose underlying game failed.
        state: usize,
    },
    /// The unified solver failed in a way with no NCS-specific mapping
    /// (kept as a message; the typed error is `bi_core::solve::SolveError`
    /// — call `Solver::solve` directly for structured handling).
    Solver(String),
}

impl fmt::Display for NcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcsError::NodeOutOfRange { agent } => {
                write!(f, "agent {agent} references a node outside the graph")
            }
            NcsError::Unreachable { agent } => {
                write!(f, "agent {agent} cannot reach her destination")
            }
            NcsError::IncompleteActionSet { agent } => {
                write!(
                    f,
                    "path enumeration for agent {agent} hit the limit; raise PathLimits"
                )
            }
            NcsError::TooLarge(e) => write!(f, "{e}"),
            NcsError::BadPrior(msg) => write!(f, "invalid prior: {msg}"),
            NcsError::NoEquilibrium { state } => {
                write!(
                    f,
                    "no pure equilibrium found in underlying game {state} (numerical issue)"
                )
            }
            NcsError::Solver(msg) => write!(f, "solver error: {msg}"),
        }
    }
}

impl std::error::Error for NcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NcsError::TooLarge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnumerationError> for NcsError {
    fn from(e: EnumerationError) -> Self {
        NcsError::TooLarge(e)
    }
}
