//! Bayesian network cost-sharing games.

use bi_core::compiled::{CompiledSpace, EvalKernel, Lowered, SlotStep};
use bi_core::game::EnumerationError;
use bi_core::measures::Measures;
use bi_core::model::{BayesianModel, CompleteInfo};
use bi_core::solve::{SolveError, Solver};
use bi_graph::paths::{self, PathLimits};
use bi_graph::Graph;
use bi_util::harmonic;

use crate::analysis;
use crate::error::NcsError;
use crate::game::{NcsGame, Path};
use crate::prior::{AgentType, Prior};

/// A pure strategy profile of a Bayesian NCS game: `s[i][τ]` is the path
/// agent `i` buys when observing her `τ`-th type (indices into
/// [`BayesianNcsGame::agent_types`]).
pub type NcsStrategyProfile = Vec<Vec<Path>>;

/// A Bayesian network cost-sharing game: a graph with edge costs plus a
/// common prior over `(source, destination)` type profiles. Each agent
/// observes only her own pair and buys a path for it.
///
/// Interim best responses are shortest paths under the *expected-share*
/// edge weights `w(e) = E[c(e)/(load₋ᵢ(e)+1) | t_i]` (expected payments
/// are additive over edges), so Bayesian-equilibrium checks are exact over
/// the full `2^E` action space even though optimization enumerates
/// simple-path strategy sets.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
/// use bi_ncs::{BayesianNcsGame, Prior};
///
/// let mut g = Graph::new(Direction::Directed);
/// let s = g.add_node();
/// let t = g.add_node();
/// g.add_edge(s, t, 1.0);
/// let prior = Prior::independent(vec![vec![((s, t), 1.0)]]);
/// let game = BayesianNcsGame::new(g, prior).unwrap();
/// let m = game.measures().unwrap();
/// assert_eq!(m.opt_p, 1.0);
/// assert_eq!(m.opt_c, 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct BayesianNcsGame {
    graph: Graph,
    support: Vec<(Vec<AgentType>, f64)>,
    /// Distinct positive-marginal types per agent.
    agent_types: Vec<Vec<AgentType>>,
    /// Per support state, the type index of each agent.
    support_type_idx: Vec<Vec<usize>>,
    /// The complete-information game of each support state, built once at
    /// construction (cost evaluations are the solver's hot path).
    state_games: Vec<NcsGame>,
    /// Prior marginal weight of each `(agent, type)` slot, precomputed
    /// (the solver reads it per profile in its hot loop).
    type_weights: Vec<Vec<f64>>,
    limits: PathLimits,
}

impl BayesianNcsGame {
    /// Creates a Bayesian NCS game with default path-enumeration limits.
    ///
    /// # Errors
    ///
    /// Returns prior validation errors, [`NcsError::NodeOutOfRange`] /
    /// [`NcsError::Unreachable`] for infeasible types.
    pub fn new(graph: Graph, prior: Prior) -> Result<Self, NcsError> {
        Self::with_limits(graph, prior, PathLimits::default())
    }

    /// Creates a Bayesian NCS game with explicit path-enumeration limits
    /// (used by the exhaustive optimizers; equilibrium *checks* never
    /// truncate).
    ///
    /// # Errors
    ///
    /// See [`BayesianNcsGame::new`].
    pub fn with_limits(graph: Graph, prior: Prior, limits: PathLimits) -> Result<Self, NcsError> {
        let support = prior.support()?;
        let k = support[0].0.len();
        let mut agent_types: Vec<Vec<AgentType>> = vec![Vec::new(); k];
        for (types, _) in &support {
            for (i, &t) in types.iter().enumerate() {
                let (s, d) = t;
                if s.index() >= graph.node_count() || d.index() >= graph.node_count() {
                    return Err(NcsError::NodeOutOfRange { agent: i });
                }
                if bi_graph::shortest_path(&graph, s, d).is_none() {
                    return Err(NcsError::Unreachable { agent: i });
                }
                if !agent_types[i].contains(&t) {
                    agent_types[i].push(t);
                }
            }
        }
        let support_type_idx: Vec<Vec<usize>> = support
            .iter()
            .map(|(types, _)| {
                types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        agent_types[i]
                            .iter()
                            .position(|u| u == t)
                            .expect("type collected above")
                    })
                    .collect()
            })
            .collect();
        let mut type_weights: Vec<Vec<f64>> = agent_types
            .iter()
            .map(|types| vec![0.0; types.len()])
            .collect();
        for (idx, (_, prob)) in support_type_idx.iter().zip(&support) {
            for (i, &tau) in idx.iter().enumerate() {
                type_weights[i][tau] += *prob;
            }
        }
        let state_games = support
            .iter()
            .map(|(types, _)| {
                NcsGame::new(graph.clone(), types.clone()).expect("feasibility checked above")
            })
            .collect();
        Ok(BayesianNcsGame {
            graph,
            support,
            agent_types,
            support_type_idx,
            state_games,
            type_weights,
            limits,
        })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of agents `k`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.agent_types.len()
    }

    /// The distinct positive-probability types of each agent.
    #[must_use]
    pub fn agent_types(&self) -> &[Vec<AgentType>] {
        &self.agent_types
    }

    /// The expanded prior support as `(type profile, probability)` pairs.
    #[must_use]
    pub fn support(&self) -> &[(Vec<AgentType>, f64)] {
        &self.support
    }

    /// The complete-information NCS game of the `idx`-th support state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn underlying_game(&self, idx: usize) -> NcsGame {
        self.state_games[idx].clone()
    }

    /// Candidate paths of one `(agent, type)` slot: every simple path of
    /// the agent's terminal pair, or an error if enumeration truncates.
    fn slot_paths(&self, agent: usize, tau: usize) -> Result<Vec<Path>, NcsError> {
        let (s, t) = self.agent_types[agent][tau];
        let ps = paths::simple_paths(&self.graph, s, t, self.limits);
        if ps.len() >= self.limits.max_paths {
            Err(NcsError::IncompleteActionSet { agent })
        } else {
            Ok(ps)
        }
    }

    /// Candidate path sets per `(agent, type)` slot.
    ///
    /// # Errors
    ///
    /// Returns [`NcsError::IncompleteActionSet`] if enumeration truncates.
    pub fn strategy_sets(&self) -> Result<Vec<Vec<Vec<Path>>>, NcsError> {
        self.agent_types
            .iter()
            .enumerate()
            .map(|(i, types)| {
                (0..types.len())
                    .map(|tau| self.slot_paths(i, tau))
                    .collect()
            })
            .collect()
    }

    /// The action profile a strategy induces in support state `idx`.
    fn state_profile(&self, s: &NcsStrategyProfile, idx: usize) -> Vec<Path> {
        self.support_type_idx[idx]
            .iter()
            .enumerate()
            .map(|(i, &tau)| s[i][tau].clone())
            .collect()
    }

    /// Ex-ante social cost `K(s) = E_t[K_t(s(t))]`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong.
    #[must_use]
    pub fn social_cost(&self, s: &NcsStrategyProfile) -> f64 {
        self.check_strategy(s);
        self.support
            .iter()
            .zip(&self.state_games)
            .enumerate()
            .map(|(idx, ((_, prob), game))| prob * game.social_cost(&self.state_profile(s, idx)))
            .sum()
    }

    /// Ex-ante expected payment of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong.
    #[must_use]
    pub fn expected_payment(&self, i: usize, s: &NcsStrategyProfile) -> f64 {
        self.check_strategy(s);
        self.support
            .iter()
            .zip(&self.state_games)
            .enumerate()
            .map(|(idx, ((_, prob), game))| prob * game.payment(i, &self.state_profile(s, idx)))
            .sum()
    }

    /// The Bayesian (expected Rosenthal) potential of Observation 2.1:
    /// `Q(s) = Σ_t p(t)·Σ_e c(e)·H(load_e(s(t)))`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong.
    #[must_use]
    pub fn bayesian_potential(&self, s: &NcsStrategyProfile) -> f64 {
        self.check_strategy(s);
        let mut total = 0.0;
        for (idx, (_, prob)) in self.support.iter().enumerate() {
            let mut loads = vec![0u32; self.graph.edge_count()];
            for (i, &tau) in self.support_type_idx[idx].iter().enumerate() {
                for &e in &s[i][tau] {
                    loads[e.index()] += 1;
                }
            }
            total += prob
                * self
                    .graph
                    .edges()
                    .map(|(id, e)| e.cost() * harmonic(loads[id.index()] as usize))
                    .sum::<f64>();
        }
        total
    }

    /// Expected-share edge weights for agent `i` at her `τ`-th type:
    /// `w(e) = Σ_{t : t_i = τ} p(t)·c(e)/(load₋ᵢ(e, s(t)) + 1)`
    /// (unnormalized by the marginal, which cancels in comparisons).
    fn interim_weights(&self, i: usize, tau: usize, s: &NcsStrategyProfile) -> Vec<f64> {
        let mut weights = vec![0.0f64; self.graph.edge_count()];
        for (idx, (_, prob)) in self.support.iter().enumerate() {
            if self.support_type_idx[idx][i] != tau {
                continue;
            }
            let mut loads = vec![0u32; self.graph.edge_count()];
            for (j, &tau_j) in self.support_type_idx[idx].iter().enumerate() {
                if j == i {
                    continue;
                }
                for &e in &s[j][tau_j] {
                    loads[e.index()] += 1;
                }
            }
            for (id, edge) in self.graph.edges() {
                weights[id.index()] += prob * edge.cost() / f64::from(loads[id.index()] + 1);
            }
        }
        weights
    }

    /// The unnormalized interim cost of agent `i` playing `path` at type
    /// `τ` while the others follow `s`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape or indices are out of range.
    #[must_use]
    pub fn interim_cost(
        &self,
        i: usize,
        tau: usize,
        path: &[bi_graph::EdgeId],
        s: &NcsStrategyProfile,
    ) -> f64 {
        self.check_strategy(s);
        let weights = self.interim_weights(i, tau, s);
        path.iter().map(|&e| weights[e.index()]).sum()
    }

    /// Agent `i`'s exact interim best response at type `τ`: the shortest
    /// path under the expected-share weights. Returns `(path, cost)`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape or indices are out of range.
    #[must_use]
    pub fn interim_best_response(
        &self,
        i: usize,
        tau: usize,
        s: &NcsStrategyProfile,
    ) -> (Path, f64) {
        self.check_strategy(s);
        let weights = self.interim_weights(i, tau, s);
        let (src, dst) = self.agent_types[i][tau];
        let sp = bi_graph::dijkstra(&self.graph, src, |e| weights[e.index()]);
        let path = sp.path_edges(dst).expect("feasibility checked");
        (path, sp.distance(dst))
    }

    /// Whether `s` is a pure Bayesian equilibrium (exact, via interim
    /// best-response shortest paths). Routed through
    /// [`BayesianModel::is_equilibrium`].
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong.
    #[must_use]
    pub fn is_bayesian_equilibrium(&self, s: &NcsStrategyProfile) -> bool {
        self.check_strategy(s);
        BayesianModel::is_equilibrium(self, s)
    }

    /// A natural starting strategy: every type buys a (cost-)shortest
    /// path.
    #[must_use]
    pub fn shortest_path_strategy(&self) -> NcsStrategyProfile {
        self.agent_types
            .iter()
            .map(|types| {
                types
                    .iter()
                    .map(|&(s, t)| {
                        bi_graph::shortest_path(&self.graph, s, t)
                            .expect("feasibility checked")
                            .1
                    })
                    .collect()
            })
            .collect()
    }

    /// Interim best-response dynamics from `start` until a fixed point (a
    /// Bayesian equilibrium) or `max_rounds` sweeps. Convergence is
    /// guaranteed by the Bayesian potential (Observation 2.1). Routed
    /// through [`BayesianModel::best_response_dynamics`].
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape is wrong.
    #[must_use]
    pub fn best_response_dynamics(
        &self,
        start: NcsStrategyProfile,
        max_rounds: usize,
    ) -> Option<NcsStrategyProfile> {
        self.check_strategy(&start);
        BayesianModel::best_response_dynamics(self, start, max_rounds)
    }

    /// Computes all six measures of the paper exactly:
    ///
    /// * `optP`, `best-eqP`, `worst-eqP` by exhaustive strategy
    ///   enumeration with exact equilibrium checks;
    /// * `optC`, `best-eqC`, `worst-eqC` by exhaustive per-state analysis.
    ///
    /// This is a thin compatibility wrapper over
    /// `Solver::default().solve(&game)` — prefer [`Solver`] directly for
    /// budgets, sampled backends, multi-threaded sweeps, and the
    /// structured `SolveReport`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bi_graph::{Direction, Graph};
    /// use bi_ncs::{BayesianNcsGame, Prior};
    ///
    /// // Two routes from s to t: a two-hop route of cost 2 and a direct
    /// // edge of cost 3.
    /// let mut g = Graph::new(Direction::Directed);
    /// let s = g.add_node();
    /// let m = g.add_node();
    /// let t = g.add_node();
    /// g.add_edge(s, m, 1.0);
    /// g.add_edge(m, t, 1.0);
    /// g.add_edge(s, t, 3.0);
    ///
    /// // Agent 0 always travels s→t; agent 1 travels s→t or stays put.
    /// let prior = Prior::independent(vec![
    ///     vec![((s, t), 1.0)],
    ///     vec![((s, t), 0.5), ((s, s), 0.5)],
    /// ]);
    /// let game = BayesianNcsGame::new(g, prior)?;
    /// let measures = game.measures()?;
    /// // Someone must buy a route in every state, so optC ≥ 2; partial
    /// // information can only cost more (Observation 2.2's chain).
    /// assert!(measures.opt_c >= 2.0 - 1e-9);
    /// assert!(measures.opt_p >= measures.opt_c - 1e-9);
    /// assert!(measures.verify_chain().is_ok());
    /// # Ok::<(), bi_ncs::NcsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`NcsError::TooLarge`] when enumeration is infeasible and
    /// propagates per-state analysis failures.
    pub fn measures(&self) -> Result<Measures, NcsError> {
        match Solver::default().solve(self) {
            Ok(report) => Ok(report.measures),
            Err(e) => Err(match e {
                SolveError::BudgetExceeded { required, .. } => {
                    NcsError::TooLarge(EnumerationError { required })
                }
                SolveError::SpaceTooLarge => NcsError::TooLarge(EnumerationError {
                    required: u128::MAX,
                }),
                SolveError::NoEquilibrium => NcsError::NoEquilibrium { state: usize::MAX },
                SolveError::NoStateEquilibrium { state } => NcsError::NoEquilibrium { state },
                SolveError::Model(inner) => match inner.downcast::<NcsError>() {
                    Ok(ncs) => *ncs,
                    Err(other) => NcsError::Solver(other.to_string()),
                },
                other => NcsError::Solver(other.to_string()),
            }),
        }
    }

    fn check_strategy(&self, s: &NcsStrategyProfile) {
        assert_eq!(s.len(), self.num_agents(), "strategy profile length");
        for (si, types) in s.iter().zip(&self.agent_types) {
            assert_eq!(si.len(), types.len(), "one path per type");
        }
    }
}

impl BayesianModel for BayesianNcsGame {
    type Action = Path;

    fn num_agents(&self) -> usize {
        self.agent_types.len()
    }

    fn type_count(&self, agent: usize) -> usize {
        self.agent_types[agent].len()
    }

    fn type_weight(&self, agent: usize, tau: usize) -> f64 {
        self.type_weights[agent][tau]
    }

    fn candidate_actions(&self, agent: usize, tau: usize) -> Result<Vec<Path>, SolveError> {
        self.slot_paths(agent, tau)
            .map_err(|e| SolveError::Model(Box::new(e)))
    }

    fn social_cost(&self, profile: &NcsStrategyProfile) -> f64 {
        BayesianNcsGame::social_cost(self, profile)
    }

    fn interim_cost(
        &self,
        agent: usize,
        tau: usize,
        action: &Path,
        profile: &NcsStrategyProfile,
    ) -> f64 {
        BayesianNcsGame::interim_cost(self, agent, tau, action, profile)
    }

    fn best_response(&self, agent: usize, tau: usize, profile: &NcsStrategyProfile) -> (Path, f64) {
        self.interim_best_response(agent, tau, profile)
    }

    // Fused overrides: the default methods would compute the expected-share
    // weights twice per slot (once for the played cost, once for the best
    // response); one weights pass and one Dijkstra per slot suffice.

    fn slot_is_stable(&self, agent: usize, tau: usize, profile: &NcsStrategyProfile) -> bool {
        let weights = self.interim_weights(agent, tau, profile);
        let played: f64 = profile[agent][tau]
            .iter()
            .map(|&e| weights[e.index()])
            .sum();
        let (src, dst) = self.agent_types[agent][tau];
        let sp = bi_graph::dijkstra(&self.graph, src, |e| weights[e.index()]);
        bi_util::approx_le(played, sp.distance(dst))
    }

    fn slot_improvement(
        &self,
        agent: usize,
        tau: usize,
        profile: &NcsStrategyProfile,
    ) -> Option<Path> {
        let weights = self.interim_weights(agent, tau, profile);
        let played: f64 = profile[agent][tau]
            .iter()
            .map(|&e| weights[e.index()])
            .sum();
        let (src, dst) = self.agent_types[agent][tau];
        let sp = bi_graph::dijkstra(&self.graph, src, |e| weights[e.index()]);
        (sp.distance(dst) < played - bi_util::EPS)
            .then(|| sp.path_edges(dst).expect("feasibility checked"))
    }

    fn agents_interchangeable(&self, a: usize, b: usize) -> bool {
        // Exact bitwise interchangeability (see the trait contract). NCS
        // costs are functions of *integer* edge loads and shared per-edge
        // constants: every agent with the same terminal pair pays the
        // same `c(e)/load` shares. So two agents are interchangeable as
        // soon as they have identical type lists (same terminal pairs in
        // the same order, hence identical per-slot candidate path
        // enumerations) and identical types in every support state:
        // swapping their strategies then leaves every state's edge-load
        // vector — and with it every social and interim term — exactly
        // unchanged.
        a == b
            || (self.agent_types[a] == self.agent_types[b]
                && self
                    .support_type_idx
                    .iter()
                    .all(|types| types[a] == types[b]))
    }

    fn complete_info(&self) -> Result<CompleteInfo, SolveError> {
        let mut opt_c = 0.0;
        let mut best_eq_c = 0.0;
        let mut worst_eq_c = 0.0;
        for (idx, ((_, prob), game)) in self.support.iter().zip(&self.state_games).enumerate() {
            let a = analysis::analyze(game, self.limits).map_err(|e| match e {
                NcsError::NoEquilibrium { .. } => SolveError::NoStateEquilibrium { state: idx },
                other => SolveError::Model(Box::new(other)),
            })?;
            opt_c += prob * a.opt;
            best_eq_c += prob * a.best_eq;
            worst_eq_c += prob * a.worst_eq;
        }
        Ok(CompleteInfo {
            opt_c,
            best_eq_c,
            worst_eq_c,
        })
    }

    fn lower<'a>(&'a self, space: &'a CompiledSpace<Self>) -> Box<dyn Lowered + 'a> {
        Box::new(NcsLowered::new(self, space))
    }
}

/// Compiled evaluation tables of a [`BayesianNcsGame`]: per-state edge
/// loads are the whole game state — social cost, interim shares and
/// best responses are all functions of them — so kernels maintain the
/// loads incrementally (subtract the old path's edges, add the new
/// path's) instead of rebuilding every state's loads per profile.
struct NcsLowered<'a> {
    game: &'a BayesianNcsGame,
    space: &'a CompiledSpace<BayesianNcsGame>,
    /// `c(e)` per edge id, in `Graph::edges` order.
    edge_costs: Vec<f64>,
    /// Support-state probabilities, in support order.
    state_probs: Vec<f64>,
    /// Per state: the slot index of each agent's type in that state.
    state_slots: Vec<Vec<usize>>,
    /// Per slot: the support states the slot participates in, ascending
    /// (interim sums must preserve the legacy state order bit-for-bit).
    slot_states: Vec<Vec<usize>>,
    /// Per slot: the agent's `(source, destination)` terminals.
    slot_terminals: Vec<AgentType>,
    /// Precomputed fair shares: `shares[s][e·k + n] = p_s · c(e) / (n+1)`
    /// for every possible rival load `n ∈ 0..k` — the interim-weight hot
    /// loop does table lookups instead of divisions (the division was
    /// performed once here, on identical operands, so the values are
    /// bit-identical).
    shares: Vec<Vec<f64>>,
    /// When `true`, the candidate sets provably contain **every** simple
    /// path (the length limit cannot prune: `max_len ≥ |V| − 1`) and all
    /// edge costs are non-negative — then the Dijkstra distance equals
    /// the minimum fold-left cost over the candidates, and stability
    /// checks can scan the arena instead of running Dijkstra per slot.
    exact_candidates: bool,
}

impl<'a> NcsLowered<'a> {
    fn new(game: &'a BayesianNcsGame, space: &'a CompiledSpace<BayesianNcsGame>) -> Self {
        let edge_costs: Vec<f64> = game.graph.edges().map(|(_, e)| e.cost()).collect();
        let mut slot_base = Vec::with_capacity(game.num_agents());
        let mut acc = 0usize;
        for types in &game.agent_types {
            slot_base.push(acc);
            acc += types.len();
        }
        let mut slot_states: Vec<Vec<usize>> = vec![Vec::new(); space.num_slots()];
        let mut state_slots = Vec::with_capacity(game.support.len());
        for (s_idx, idx) in game.support_type_idx.iter().enumerate() {
            let slots: Vec<usize> = idx
                .iter()
                .enumerate()
                .map(|(i, &tau)| slot_base[i] + tau)
                .collect();
            for &slot in &slots {
                slot_states[slot].push(s_idx);
            }
            state_slots.push(slots);
        }
        let slot_terminals: Vec<AgentType> = (0..space.num_slots())
            .map(|j| {
                let (i, tau) = space.slot(j);
                game.agent_types[i][tau]
            })
            .collect();
        let exact_candidates = game.limits.max_len >= game.graph.node_count().saturating_sub(1)
            && edge_costs.iter().all(|&c| c >= 0.0);
        let k = game.num_agents();
        let shares: Vec<Vec<f64>> = game
            .support
            .iter()
            .map(|(_, prob)| {
                let mut table = Vec::with_capacity(edge_costs.len() * k);
                for &cost in &edge_costs {
                    for n in 0..k as u32 {
                        table.push(*prob * cost / f64::from(n + 1));
                    }
                }
                table
            })
            .collect();
        NcsLowered {
            game,
            space,
            edge_costs,
            state_probs: game.support.iter().map(|(_, p)| *p).collect(),
            state_slots,
            slot_states,
            slot_terminals,
            shares,
            exact_candidates,
        }
    }
}

impl Lowered for NcsLowered<'_> {
    fn kernel(&self) -> Box<dyn EvalKernel + '_> {
        let states = self.state_probs.len();
        let edges = self.edge_costs.len();
        Box::new(NcsKernel {
            lowered: self,
            digits: vec![0; self.space.num_slots()],
            loads: vec![vec![0; edges]; states],
            state_cost: vec![0.0; states],
            cost_dirty: vec![true; states],
            state_mods: vec![0; states],
            weight_cache: vec![vec![0.0; edges]; self.space.num_slots()],
            weight_snap: self
                .slot_states
                .iter()
                .map(|states| vec![0; states.len()])
                .collect(),
            weight_valid: vec![false; self.space.num_slots()],
            loads_buf: vec![0; edges],
            unstable_hint: 0,
        })
    }
}

/// Incremental evaluator over the [`NcsLowered`] layout.
///
/// * Per-state **edge loads** are delta-updated on every digit advance;
/// * per-state **social costs** are cached and recomputed (in canonical
///   edge order, for bit parity) only for states whose loads changed;
/// * per-slot **interim expected-share weights** are cached and reused
///   while no *other* agent's path changed in any of the slot's states
///   (a slot's own path never enters its own weights).
struct NcsKernel<'a> {
    lowered: &'a NcsLowered<'a>,
    digits: Vec<u32>,
    /// `loads[state][edge]`: number of agents whose current path buys the
    /// edge in that state.
    loads: Vec<Vec<u32>>,
    /// Cached `K_t` per state (valid when not dirty).
    state_cost: Vec<f64>,
    cost_dirty: Vec<bool>,
    /// Bumped on every load change of a state; drives weight-cache
    /// invalidation.
    state_mods: Vec<u64>,
    /// Cached interim weights per slot.
    weight_cache: Vec<Vec<f64>>,
    /// `state_mods` snapshot per slot (aligned with
    /// `NcsLowered::slot_states`) at the time its weights were computed.
    weight_snap: Vec<Vec<u64>>,
    weight_valid: Vec<bool>,
    /// Scratch: a state's loads minus the checked agent's own path.
    loads_buf: Vec<u32>,
    /// The slot that refuted the previous equilibrium check — checked
    /// first next time (pure evaluation-order heuristic; the result of
    /// the AND is order-independent).
    unstable_hint: usize,
}

impl NcsKernel<'_> {
    /// Ensures `weight_cache[slot]` holds the slot's expected-share
    /// weights for the current digits — recomputed in the legacy order
    /// (states ascending, edges ascending) whenever another agent's path
    /// changed in a relevant state, reused otherwise.
    fn refresh_weights(&mut self, slot: usize) {
        let relevant = &self.lowered.slot_states[slot];
        if self.weight_valid[slot]
            && relevant
                .iter()
                .zip(&self.weight_snap[slot])
                .all(|(&s, &snap)| self.state_mods[s] == snap)
        {
            return;
        }
        let own_path = self.lowered.space.action(slot, self.digits[slot]);
        let weights = &mut self.weight_cache[slot];
        weights.fill(0.0);
        for (idx, &s) in relevant.iter().enumerate() {
            self.loads_buf.copy_from_slice(&self.loads[s]);
            for &e in own_path {
                self.loads_buf[e.index()] -= 1;
            }
            // `shares` holds the precomputed `p_s·c(e)/(n+1)` divisions;
            // the accumulation order (states ascending, edges ascending)
            // is the legacy `interim_weights` order.
            let shares = &self.lowered.shares[s];
            let k = self.lowered.state_slots[s].len();
            for (id, weight) in weights.iter_mut().enumerate() {
                *weight += shares[id * k + self.loads_buf[id] as usize];
            }
            self.weight_snap[slot][idx] = self.state_mods[s];
        }
        self.weight_valid[slot] = true;
    }

    /// Fold-left path cost under the slot's cached weights — the exact
    /// summation `BayesianNcsGame::interim_cost` performs.
    fn path_cost(&self, slot: usize, path: &[bi_graph::EdgeId]) -> f64 {
        let weights = &self.weight_cache[slot];
        path.iter().map(|&e| weights[e.index()]).sum()
    }

    /// Bit-faithful `BayesianNcsGame::slot_is_stable` for one slot.
    ///
    /// With provably complete candidates and non-negative weights the
    /// Dijkstra distance equals the minimum candidate cost (identical
    /// fold-left sums), and `approx_le(played, min)` fails iff it fails
    /// against some individual candidate (all comparisons share the same
    /// relative scale `max(played, 1)`), so the scan early-exits and no
    /// Dijkstra runs. Under custom path limits the legacy Dijkstra check
    /// runs verbatim.
    fn slot_is_stable(&mut self, slot: usize) -> bool {
        self.refresh_weights(slot);
        let played = self.path_cost(slot, self.lowered.space.action(slot, self.digits[slot]));
        if self.lowered.exact_candidates {
            for cand in self.lowered.space.slot_actions(slot) {
                if !bi_util::approx_le(played, self.path_cost(slot, cand)) {
                    return false;
                }
            }
            true
        } else {
            let (src, dst) = self.lowered.slot_terminals[slot];
            let weights = &self.weight_cache[slot];
            let sp = bi_graph::dijkstra(&self.lowered.game.graph, src, |e| weights[e.index()]);
            bi_util::approx_le(played, sp.distance(dst))
        }
    }
}

impl EvalKernel for NcsKernel<'_> {
    fn seed(&mut self, digits: &[u32]) {
        self.digits.copy_from_slice(digits);
        for (s, slots) in self.lowered.state_slots.iter().enumerate() {
            self.loads[s].fill(0);
            for &slot in slots {
                for &e in self.lowered.space.action(slot, digits[slot]) {
                    self.loads[s][e.index()] += 1;
                }
            }
            self.cost_dirty[s] = true;
            self.state_mods[s] += 1;
        }
        self.weight_valid.fill(false);
    }

    fn advance(&mut self, slot: usize, old: u32, new: u32) {
        self.digits[slot] = new;
        let old_path = self.lowered.space.action(slot, old);
        let new_path = self.lowered.space.action(slot, new);
        for (idx, &s) in self.lowered.slot_states[slot].iter().enumerate() {
            for &e in old_path {
                self.loads[s][e.index()] -= 1;
            }
            for &e in new_path {
                self.loads[s][e.index()] += 1;
            }
            self.cost_dirty[s] = true;
            self.state_mods[s] += 1;
            // The slot's own weights never depend on its own path: keep
            // its snapshot in lock-step so the cache stays valid.
            self.weight_snap[slot][idx] += 1;
        }
    }

    fn social_cost(&mut self) -> f64 {
        for s in 0..self.state_cost.len() {
            if self.cost_dirty[s] {
                // Same fold as `NcsGame::social_cost`: bought edges in
                // edge-id order.
                self.state_cost[s] = self
                    .lowered
                    .edge_costs
                    .iter()
                    .zip(&self.loads[s])
                    .map(|(&c, &load)| if load > 0 { c } else { 0.0 })
                    .sum();
                self.cost_dirty[s] = false;
            }
        }
        // Same outer fold as `BayesianNcsGame::social_cost`: one
        // `prob · K_t` term per support state, in support order.
        self.state_probs_fold()
    }

    fn is_equilibrium(&mut self) -> bool {
        let space = self.lowered.space;
        let mut hint = self.unstable_hint;
        let stable = bi_core::compiled::stable_with_hint(
            space.num_slots(),
            |slot| space.weight(slot),
            &mut hint,
            |slot| self.slot_is_stable(slot),
        );
        self.unstable_hint = hint;
        stable
    }

    fn slot_improvement(&mut self, slot: usize) -> SlotStep {
        // Replicates `BayesianNcsGame::slot_improvement`: the genuine
        // Dijkstra runs here because the dynamics must follow the exact
        // legacy best-response *path* (not just its cost).
        self.refresh_weights(slot);
        let played = self.path_cost(slot, self.lowered.space.action(slot, self.digits[slot]));
        let (src, dst) = self.lowered.slot_terminals[slot];
        let weights = &self.weight_cache[slot];
        let sp = bi_graph::dijkstra(&self.lowered.game.graph, src, |e| weights[e.index()]);
        if sp.distance(dst) < played - bi_util::EPS {
            let path = sp.path_edges(dst).expect("feasibility checked");
            match self.lowered.space.digit_of(slot, &path) {
                Some(digit) => SlotStep::Improve(digit),
                None => SlotStep::Unrepresentable,
            }
        } else {
            SlotStep::Stable
        }
    }
}

impl NcsKernel<'_> {
    fn state_probs_fold(&self) -> f64 {
        self.lowered
            .state_probs
            .iter()
            .zip(&self.state_cost)
            .map(|(&prob, &cost)| prob * cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::Direction;

    /// Directed diamond: s→t via m (1+1) or direct (3). Agent 0 always
    /// travels; agent 1 travels with probability 1/2.
    fn diamond_game() -> BayesianNcsGame {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, 1.0);
        g.add_edge(m, t, 1.0);
        g.add_edge(s, t, 3.0);
        let prior = Prior::independent(vec![
            vec![((s, t), 1.0)],
            vec![((s, t), 0.5), ((s, s), 0.5)],
        ]);
        BayesianNcsGame::new(g, prior).unwrap()
    }

    #[test]
    fn construction_collects_types_and_support() {
        let game = diamond_game();
        assert_eq!(game.num_agents(), 2);
        assert_eq!(game.agent_types()[0].len(), 1);
        assert_eq!(game.agent_types()[1].len(), 2);
        assert_eq!(game.support().len(), 2);
    }

    #[test]
    fn social_cost_averages_states() {
        let game = diamond_game();
        // Both travel via m when active.
        let via = vec![bi_graph::EdgeId::new(0), bi_graph::EdgeId::new(1)];
        let s = vec![vec![via.clone()], vec![via, Path::new()]];
        // State 1 (both travel): cost 2; state 2 (only agent 0): cost 2.
        assert!((game.social_cost(&s) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interim_best_response_uses_expected_shares() {
        let game = diamond_game();
        let direct = vec![bi_graph::EdgeId::new(2)];
        let via = vec![bi_graph::EdgeId::new(0), bi_graph::EdgeId::new(1)];
        // Agent 1 travels and goes via m; agent 0 currently direct.
        let s = vec![vec![direct], vec![via.clone(), Path::new()]];
        let (path, cost) = game.interim_best_response(0, 0, &s);
        // Via: 1/2·(1/2+1/2)·2? With prob 1/2 agent 1 shares both edges
        // (pay 1), else alone (pay 2): expected 1.5 < direct 3.
        assert_eq!(path, via);
        assert!((cost - 1.5).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_check_and_dynamics_agree() {
        let game = diamond_game();
        let eq = game
            .best_response_dynamics(game.shortest_path_strategy(), 100)
            .expect("potential game converges");
        assert!(game.is_bayesian_equilibrium(&eq));
    }

    #[test]
    fn measures_satisfy_observation_2_2() {
        let game = diamond_game();
        let m = game.measures().unwrap();
        m.verify_chain().unwrap();
        // Sharing via m is optimal in both settings here.
        assert!((m.opt_p - 2.0).abs() < 1e-9);
        assert!((m.opt_c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bayesian_potential_decreases_along_best_responses() {
        let game = diamond_game();
        let direct = vec![bi_graph::EdgeId::new(2)];
        let mut s = vec![vec![direct.clone()], vec![direct, Path::new()]];
        let mut q = game.bayesian_potential(&s);
        for _ in 0..5 {
            let mut moved = false;
            for i in 0..game.num_agents() {
                for tau in 0..game.agent_types()[i].len() {
                    let played = game.interim_cost(i, tau, &s[i][tau].clone(), &s);
                    let (path, cost) = game.interim_best_response(i, tau, &s);
                    if cost < played - bi_util::EPS {
                        s[i][tau] = path;
                        let nq = game.bayesian_potential(&s);
                        assert!(nq < q + 1e-12, "Bayesian potential must not increase");
                        q = nq;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        assert!(game.is_bayesian_equilibrium(&s));
    }

    #[test]
    fn strategy_space_size_multiplies_slots() {
        let game = diamond_game();
        // Agent 0: 2 paths; agent 1: 2 paths × 1 (empty) = 2·2·1 = 4.
        assert_eq!(game.strategy_space_size().unwrap(), 4);
    }

    #[test]
    fn unreachable_types_are_rejected() {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 1.0);
        let prior = Prior::independent(vec![vec![((t, s), 1.0)]]);
        assert!(matches!(
            BayesianNcsGame::new(g, prior),
            Err(NcsError::Unreachable { agent: 0 })
        ));
    }
}
