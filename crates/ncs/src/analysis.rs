//! Exact analysis of complete-information NCS games: dynamics, equilibrium
//! enumeration, social optima.

use bi_core::game::{EnumerationError, ProfileIter, MAX_ENUMERATION};
use bi_graph::paths::PathLimits;

use crate::error::NcsError;
use crate::game::{NcsGame, Path};

/// Outcome of exhaustively analysing one NCS game over complete action
/// sets.
#[derive(Clone, Debug)]
pub struct GameAnalysis {
    /// Minimum social cost over all path profiles (the social optimum; for
    /// NCS games the optimum over `2^E` actions is attained by a path
    /// profile, so this is exact).
    pub opt: f64,
    /// A profile attaining `opt`.
    pub opt_profile: Vec<Path>,
    /// Social cost of a best pure Nash equilibrium.
    pub best_eq: f64,
    /// Social cost of a worst pure Nash equilibrium.
    pub worst_eq: f64,
    /// Number of pure Nash equilibria among path profiles.
    pub equilibrium_count: usize,
}

/// Runs better-response dynamics from `start` until a fixed point (a pure
/// Nash equilibrium) or `max_rounds` sweeps. Convergence is guaranteed by
/// the Rosenthal potential; the round cap only guards against tolerance
/// pathologies. Returns `None` if the cap is hit without reaching
/// equilibrium.
///
/// # Panics
///
/// Panics if the profile shape is wrong.
#[must_use]
pub fn best_response_dynamics(
    game: &NcsGame,
    start: Vec<Path>,
    max_rounds: usize,
) -> Option<Vec<Path>> {
    let mut profile = start;
    for _ in 0..max_rounds {
        let mut changed = false;
        for i in 0..game.num_agents() {
            let current = game.payment(i, &profile);
            let (path, cost) = game.best_response(i, &profile);
            if cost < current - bi_util::EPS {
                profile[i] = path;
                changed = true;
            }
        }
        if !changed {
            debug_assert!(game.is_nash(&profile));
            return Some(profile);
        }
    }
    game.is_nash(&profile).then_some(profile)
}

/// A natural starting profile: every agent on a (cost-)shortest path,
/// ignoring sharing.
#[must_use]
pub fn shortest_path_profile(game: &NcsGame) -> Vec<Path> {
    (0..game.num_agents())
        .map(|i| {
            let (s, t) = game.agent(i);
            bi_graph::shortest_path(game.graph(), s, t)
                .expect("feasibility checked at construction")
                .1
        })
        .collect()
}

/// Exhaustively analyses the game over the product of complete action
/// sets: social optimum, best/worst equilibrium, equilibrium count.
///
/// Equilibrium checks use exact Dijkstra best responses, so they are
/// sound against *all* deviations, not only enumerated ones.
///
/// # Errors
///
/// Propagates action-set errors and returns
/// [`NcsError::TooLarge`] when the profile product exceeds the
/// enumeration limit, or [`NcsError::NoEquilibrium`] if no equilibrium is
/// found (mathematically impossible for NCS games; signals a tolerance
/// problem).
pub fn analyze(game: &NcsGame, limits: PathLimits) -> Result<GameAnalysis, NcsError> {
    let action_sets = game.action_sets(limits)?;
    let sizes: Vec<usize> = action_sets.iter().map(Vec::len).collect();
    let total: u128 = sizes.iter().map(|&s| s as u128).product();
    if total > MAX_ENUMERATION {
        return Err(NcsError::TooLarge(EnumerationError { required: total }));
    }
    let mut opt = f64::INFINITY;
    let mut opt_profile: Option<Vec<Path>> = None;
    let mut best_eq = f64::INFINITY;
    let mut worst_eq = f64::NEG_INFINITY;
    let mut equilibrium_count = 0usize;
    for choice in ProfileIter::new(sizes) {
        let profile: Vec<Path> = choice
            .iter()
            .enumerate()
            .map(|(i, &c)| action_sets[i][c].clone())
            .collect();
        let k = game.social_cost(&profile);
        if k < opt {
            opt = k;
            opt_profile = Some(profile.clone());
        }
        if game.is_nash(&profile) {
            equilibrium_count += 1;
            best_eq = best_eq.min(k);
            worst_eq = worst_eq.max(k);
        }
    }
    if equilibrium_count == 0 {
        return Err(NcsError::NoEquilibrium { state: 0 });
    }
    Ok(GameAnalysis {
        opt,
        opt_profile: opt_profile.expect("action sets are non-empty"),
        best_eq,
        worst_eq,
        equilibrium_count,
    })
}

impl GameAnalysis {
    /// The price of anarchy `worst-eq/opt` (Koutsoupias–Papadimitriou),
    /// using the paper's 0/0 := 1 convention.
    #[must_use]
    pub fn price_of_anarchy(&self) -> f64 {
        ratio(self.worst_eq, self.opt)
    }

    /// The price of stability `best-eq/opt` (Anshelevich et al.), at most
    /// `H(k)` for every NCS game.
    #[must_use]
    pub fn price_of_stability(&self) -> f64 {
        ratio(self.best_eq, self.opt)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if num == 0.0 && den == 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::{Direction, Graph};

    #[test]
    fn price_of_stability_is_at_most_harmonic_k() {
        // Anshelevich et al.'s bound, which Lemma 3.8 lifts to Bayesian
        // games; checked on random complete-information NCS games.
        use rand::Rng;
        for seed in 0..8 {
            let g =
                bi_graph::generators::gnp_connected(Direction::Directed, 6, 0.3, (0.5, 2.0), seed);
            let mut rng = bi_util::rng::seeded(1000 + seed);
            let k = 3;
            let pairs: Vec<_> = (0..k)
                .map(|_| {
                    (
                        bi_graph::NodeId::new(rng.random_range(0..6)),
                        bi_graph::NodeId::new(rng.random_range(0..6)),
                    )
                })
                .collect();
            let game = match NcsGame::new(g, pairs) {
                Ok(g) => g,
                Err(_) => continue,
            };
            let a = analyze(&game, PathLimits::default()).unwrap();
            assert!(
                a.price_of_stability() <= bi_util::harmonic(k) + 1e-9,
                "seed {seed}: PoS {} exceeds H({k})",
                a.price_of_stability()
            );
            assert!(a.price_of_anarchy() >= a.price_of_stability() - 1e-12);
        }
    }

    fn two_routes() -> NcsGame {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, 1.0);
        g.add_edge(m, t, 1.0);
        g.add_edge(s, t, 3.0);
        NcsGame::new(g, vec![(s, t), (s, t)]).unwrap()
    }

    #[test]
    fn analysis_finds_opt_and_equilibria() {
        let game = two_routes();
        let a = analyze(&game, PathLimits::default()).unwrap();
        assert_eq!(a.opt, 2.0); // both share the via route
        assert_eq!(a.best_eq, 2.0); // both-via is Nash
        assert_eq!(a.worst_eq, 3.0); // both-direct is Nash
        assert_eq!(a.equilibrium_count, 2);
    }

    #[test]
    fn dynamics_converge_to_nash() {
        let game = two_routes();
        let start = shortest_path_profile(&game);
        let eq = best_response_dynamics(&game, start, 100).unwrap();
        assert!(game.is_nash(&eq));
    }

    #[test]
    fn dynamics_respect_the_potential() {
        // Each strict better-response step lowers the Rosenthal potential.
        let game = two_routes();
        let mut profile = vec![
            // start both on direct edge? build explicitly:
            game.action_sets(PathLimits::default()).unwrap()[0][0].clone(),
            game.action_sets(PathLimits::default()).unwrap()[1][1].clone(),
        ];
        let mut phi = game.potential(&profile);
        for _ in 0..10 {
            let mut moved = false;
            for i in 0..game.num_agents() {
                let current = game.payment(i, &profile);
                let (path, cost) = game.best_response(i, &profile);
                if cost < current - bi_util::EPS {
                    profile[i] = path;
                    let new_phi = game.potential(&profile);
                    assert!(new_phi < phi + 1e-12, "potential must not increase");
                    phi = new_phi;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assert!(game.is_nash(&profile));
    }

    #[test]
    fn anshelevich_pos_example_has_costly_best_equilibrium() {
        // The classic 2-agent example: PoS > 1. Graph: common source x,
        // sinks y. Agents share nothing at equilibrium.
        // Simple version: k=2 agents x→y; edge A costs 2+ε only usable
        // split... use the two_routes worst-eq gap instead: covered above.
        let game = two_routes();
        let a = analyze(&game, PathLimits::default()).unwrap();
        assert!(a.worst_eq / a.opt >= 1.5 - 1e-9); // PoA = 3/2 here
    }

    #[test]
    fn single_agent_analysis_is_shortest_path() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(a, c, 5.0);
        let game = NcsGame::new(g, vec![(a, c)]).unwrap();
        let r = analyze(&game, PathLimits::default()).unwrap();
        assert_eq!(r.opt, 2.0);
        assert_eq!(r.best_eq, 2.0);
        assert_eq!(r.worst_eq, 2.0);
    }

    #[test]
    fn too_large_products_are_refused() {
        // A graph with very many parallel paths between s and t for many
        // agents would blow up; emulate with tight limits instead.
        let game = two_routes();
        let err = analyze(
            &game,
            PathLimits {
                max_paths: 2,
                max_len: usize::MAX,
            },
        )
        .unwrap_err();
        assert!(matches!(err, NcsError::IncompleteActionSet { .. }));
    }
}
