//! Complete-information network cost-sharing games.

use bi_graph::paths::{self, PathLimits};
use bi_graph::{Graph, NodeId};
use bi_util::harmonic;

use crate::error::NcsError;

/// An action of an NCS agent: the edge ids of a simple path from her
/// source to her destination (empty when source = destination).
pub type Path = Vec<bi_graph::EdgeId>;

/// A complete-information network cost-sharing game: a graph with edge
/// costs plus one `(source, destination)` pair per agent.
///
/// Payments follow fair (Shapley) sharing: an edge bought by `n` agents
/// costs each of them `c(e)/n`.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
/// use bi_ncs::NcsGame;
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b, 2.0);
/// let game = NcsGame::new(g, vec![(a, b)]).unwrap();
/// assert_eq!(game.payment(0, &[vec![e]]), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct NcsGame {
    graph: Graph,
    agents: Vec<(NodeId, NodeId)>,
}

impl NcsGame {
    /// Creates an NCS game.
    ///
    /// # Errors
    ///
    /// Returns [`NcsError::NodeOutOfRange`] for invalid terminals and
    /// [`NcsError::Unreachable`] when some agent has no feasible action.
    pub fn new(graph: Graph, agents: Vec<(NodeId, NodeId)>) -> Result<Self, NcsError> {
        for (i, &(s, t)) in agents.iter().enumerate() {
            if s.index() >= graph.node_count() || t.index() >= graph.node_count() {
                return Err(NcsError::NodeOutOfRange { agent: i });
            }
            if bi_graph::shortest_path(&graph, s, t).is_none() {
                return Err(NcsError::Unreachable { agent: i });
            }
        }
        Ok(NcsGame { graph, agents })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of agents `k`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// The `(source, destination)` pair of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn agent(&self, i: usize) -> (NodeId, NodeId) {
        self.agents[i]
    }

    /// All agents' terminal pairs.
    #[must_use]
    pub fn agents(&self) -> &[(NodeId, NodeId)] {
        &self.agents
    }

    /// Enumerates each agent's action set: all simple source→destination
    /// paths within `limits`.
    ///
    /// # Errors
    ///
    /// Returns [`NcsError::IncompleteActionSet`] when the enumeration for
    /// some agent hits `limits.max_paths` (the exact algorithms built on
    /// these sets would otherwise be silently unsound).
    pub fn action_sets(&self, limits: PathLimits) -> Result<Vec<Vec<Path>>, NcsError> {
        self.agents
            .iter()
            .enumerate()
            .map(|(i, &(s, t))| {
                let ps = paths::simple_paths(&self.graph, s, t, limits);
                if ps.len() >= limits.max_paths {
                    Err(NcsError::IncompleteActionSet { agent: i })
                } else {
                    Ok(ps)
                }
            })
            .collect()
    }

    /// Edge loads of a joint path profile: `loads[e]` is the number of
    /// agents whose path contains edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if the profile length differs from the agent count.
    #[must_use]
    pub fn loads(&self, profile: &[Path]) -> Vec<u32> {
        assert_eq!(profile.len(), self.num_agents(), "profile length");
        let mut loads = vec![0u32; self.graph.edge_count()];
        for path in profile {
            for &e in path {
                loads[e.index()] += 1;
            }
        }
        loads
    }

    /// Agent `i`'s payment under fair sharing:
    /// `Σ_{e ∈ path_i} c(e) / load(e)`.
    ///
    /// # Panics
    ///
    /// Panics if the profile shape is wrong.
    #[must_use]
    pub fn payment(&self, i: usize, profile: &[Path]) -> f64 {
        let loads = self.loads(profile);
        self.payment_with_loads(i, profile, &loads)
    }

    /// Like [`NcsGame::payment`] but reusing precomputed loads.
    #[must_use]
    pub fn payment_with_loads(&self, i: usize, profile: &[Path], loads: &[u32]) -> f64 {
        profile[i]
            .iter()
            .map(|&e| self.graph.edge(e).cost() / f64::from(loads[e.index()]))
            .sum()
    }

    /// Social cost: the total cost of all bought edges (each counted
    /// once), which equals the sum of payments.
    ///
    /// # Panics
    ///
    /// Panics if the profile shape is wrong.
    #[must_use]
    pub fn social_cost(&self, profile: &[Path]) -> f64 {
        let loads = self.loads(profile);
        self.graph
            .edges()
            .map(|(id, e)| if loads[id.index()] > 0 { e.cost() } else { 0.0 })
            .sum()
    }

    /// The Rosenthal potential `q(a) = Σ_e c(e)·H(load_e(a))`
    /// (Rosenthal 1973; cf. Section 2 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the profile shape is wrong.
    #[must_use]
    pub fn potential(&self, profile: &[Path]) -> f64 {
        let loads = self.loads(profile);
        self.graph
            .edges()
            .map(|(id, e)| e.cost() * harmonic(loads[id.index()] as usize))
            .sum()
    }

    /// Agent `i`'s exact best response to the others' paths: the shortest
    /// path under the reweighting `w(e) = c(e)/(load₋ᵢ(e)+1)`. Returns the
    /// path and its payment.
    ///
    /// This searches **all** paths (via Dijkstra), not just an enumerated
    /// action set, so equilibrium checks built on it are exact.
    ///
    /// # Panics
    ///
    /// Panics if the profile shape is wrong.
    #[must_use]
    pub fn best_response(&self, i: usize, profile: &[Path]) -> (Path, f64) {
        let mut loads = self.loads(profile);
        for &e in &profile[i] {
            loads[e.index()] -= 1;
        }
        let (s, t) = self.agents[i];
        let sp = bi_graph::dijkstra(&self.graph, s, |e| {
            self.graph.edge(e).cost() / f64::from(loads[e.index()] + 1)
        });
        let path = sp
            .path_edges(t)
            .expect("feasibility checked at construction");
        (path, sp.distance(t))
    }

    /// Whether `profile` is a pure Nash equilibrium: every agent's payment
    /// is within tolerance of her exact best-response payment.
    ///
    /// # Panics
    ///
    /// Panics if the profile shape is wrong.
    #[must_use]
    pub fn is_nash(&self, profile: &[Path]) -> bool {
        let loads = self.loads(profile);
        (0..self.num_agents()).all(|i| {
            let current = self.payment_with_loads(i, profile, &loads);
            let (_, best) = self.best_response(i, profile);
            bi_util::approx_le(current, best)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::Direction;

    /// Two parallel routes from s to t: direct (cost 3) and via m (1+1).
    fn two_routes() -> (NcsGame, Path, Path) {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        let e_sm = g.add_edge(s, m, 1.0);
        let e_mt = g.add_edge(m, t, 1.0);
        let e_st = g.add_edge(s, t, 3.0);
        let game = NcsGame::new(g, vec![(s, t), (s, t)]).unwrap();
        (game, vec![e_sm, e_mt], vec![e_st])
    }

    #[test]
    fn payments_share_fairly() {
        let (game, via, direct) = two_routes();
        let both_via = vec![via.clone(), via.clone()];
        assert_eq!(game.payment(0, &both_via), 1.0);
        assert_eq!(game.social_cost(&both_via), 2.0);
        let split = vec![via, direct];
        assert_eq!(game.payment(0, &split), 2.0);
        assert_eq!(game.payment(1, &split), 3.0);
        assert_eq!(game.social_cost(&split), 5.0);
    }

    #[test]
    fn potential_uses_harmonic_numbers() {
        let (game, via, _) = two_routes();
        let both = vec![via.clone(), via];
        // Two edges of cost 1 with load 2 each: 2·(1 + 1/2) = 3.
        assert!((game.potential(&both) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn best_response_accounts_for_sharing() {
        let (game, via, direct) = two_routes();
        // Agent 1 currently direct; agent 0 on via. Best response of 1:
        // share via = 0.5+0.5 = 1 < 3.
        let profile = vec![via.clone(), direct];
        let (path, cost) = game.best_response(1, &profile);
        assert_eq!(path, via);
        assert!((cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nash_detection() {
        let (game, via, direct) = two_routes();
        assert!(game.is_nash(&[via.clone(), via.clone()]));
        assert!(!game.is_nash(&[via, direct]));
    }

    #[test]
    fn both_direct_is_also_nash_here() {
        // Sharing the 3-edge costs 1.5 each; deviating to via costs 2.
        let (game, _, direct) = two_routes();
        assert!(game.is_nash(&[direct.clone(), direct]));
    }

    #[test]
    fn action_sets_enumerate_simple_paths() {
        let (game, _, _) = two_routes();
        let sets = game.action_sets(PathLimits::default()).unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn self_loop_agents_have_empty_action() {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 1.0);
        let game = NcsGame::new(g, vec![(s, s)]).unwrap();
        let sets = game.action_sets(PathLimits::default()).unwrap();
        assert_eq!(sets[0], vec![Path::new()]);
        assert_eq!(game.payment(0, &[Path::new()]), 0.0);
    }

    #[test]
    fn unreachable_agents_are_rejected() {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(t, s, 1.0);
        assert_eq!(
            NcsGame::new(g, vec![(s, t)]).unwrap_err(),
            NcsError::Unreachable { agent: 0 }
        );
    }

    #[test]
    fn out_of_range_terminals_are_rejected() {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        assert_eq!(
            NcsGame::new(g, vec![(s, NodeId::new(9))]).unwrap_err(),
            NcsError::NodeOutOfRange { agent: 0 }
        );
    }

    #[test]
    fn undirected_sharing_works_both_ways() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 4.0);
        let game = NcsGame::new(g, vec![(a, b), (b, a)]).unwrap();
        let profile = vec![vec![e], vec![e]];
        assert_eq!(game.payment(0, &profile), 2.0);
        assert_eq!(game.payment(1, &profile), 2.0);
        assert!(game.is_nash(&profile));
    }
}
