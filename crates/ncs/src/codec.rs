//! Wire-codec ([`Encode`]/[`Decode`]) implementations for [`Prior`] and
//! [`BayesianNcsGame`] — the graph-form half of the solve service's
//! request surface.
//!
//! Representations:
//!
//! * an agent type (terminal pair) is `[source, destination]`;
//! * `Prior::Joint` is `{"kind":"joint","support":[{"types":[[s,d],…],
//!   "prob":p},…]}`; `Prior::Independent` is `{"kind":"independent",
//!   "agents":[[{"type":[s,d],"prob":p},…],…]}` — clients can submit a
//!   whole family of independent priors over one graph cheaply, and the
//!   server expands the product;
//! * a [`BayesianNcsGame`] is `{"graph":…, "prior":…}`, decoded through
//!   [`BayesianNcsGame::new`] so wire games pass exactly the feasibility
//!   validation in-process games do. Encoding uses the **expanded** joint
//!   support (the game's own normal form), so two priors describing the
//!   same distribution encode to one canonical form.
//!
//! # Examples
//!
//! ```
//! use bi_graph::{Direction, Graph};
//! use bi_ncs::{BayesianNcsGame, Prior};
//! use bi_util::{Decode, Encode};
//!
//! let mut g = Graph::new(Direction::Directed);
//! let s = g.add_node();
//! let t = g.add_node();
//! g.add_edge(s, t, 1.0);
//! let game = BayesianNcsGame::new(g, Prior::independent(vec![vec![((s, t), 1.0)]])).unwrap();
//! let decoded = BayesianNcsGame::decode(&game.encode()).unwrap();
//! assert_eq!(decoded.canonical_bytes(), game.canonical_bytes());
//! ```

use bi_graph::{Graph, NodeId};
use bi_util::json::{field, field_arr, field_f64, field_str};
use bi_util::{CodecError, Decode, Encode, Json};

use crate::bayesian::BayesianNcsGame;
use crate::prior::{AgentType, Prior};

fn encode_type((s, d): AgentType) -> Json {
    Json::Arr(vec![
        Json::num(s.index() as f64),
        Json::num(d.index() as f64),
    ])
}

fn decode_type(v: &Json) -> Result<AgentType, CodecError> {
    let pair = v
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| CodecError::new("a type must be a `[source, destination]` pair"))?;
    let idx = |j: &Json| {
        j.as_usize()
            .ok_or_else(|| CodecError::new("type endpoints must be non-negative integers"))
    };
    Ok((NodeId::new(idx(&pair[0])?), NodeId::new(idx(&pair[1])?)))
}

fn encode_joint_support(support: &[(Vec<AgentType>, f64)]) -> Json {
    Json::Arr(
        support
            .iter()
            .map(|(types, prob)| {
                Json::Obj(vec![
                    (
                        "types".into(),
                        Json::Arr(types.iter().map(|&t| encode_type(t)).collect()),
                    ),
                    ("prob".into(), Json::num(*prob)),
                ])
            })
            .collect(),
    )
}

fn decode_joint_support(items: &[Json]) -> Result<Vec<(Vec<AgentType>, f64)>, CodecError> {
    items
        .iter()
        .enumerate()
        .map(|(idx, state)| {
            let ctx = |e: CodecError| e.context(&format!("support[{idx}]"));
            let types = field_arr(state, "types")
                .map_err(ctx)?
                .iter()
                .map(decode_type)
                .collect::<Result<Vec<_>, _>>()
                .map_err(ctx)?;
            let prob = field_f64(state, "prob").map_err(ctx)?;
            Ok((types, prob))
        })
        .collect()
}

impl Encode for Prior {
    fn encode(&self) -> Json {
        match self {
            Prior::Joint(support) => Json::Obj(vec![
                ("kind".into(), Json::str("joint")),
                ("support".into(), encode_joint_support(support)),
            ]),
            Prior::Independent(per_agent) => Json::Obj(vec![
                ("kind".into(), Json::str("independent")),
                (
                    "agents".into(),
                    Json::Arr(
                        per_agent
                            .iter()
                            .map(|dist| {
                                Json::Arr(
                                    dist.iter()
                                        .map(|&(t, p)| {
                                            Json::Obj(vec![
                                                ("type".into(), encode_type(t)),
                                                ("prob".into(), Json::num(p)),
                                            ])
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

impl Decode for Prior {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        match field_str(v, "kind")? {
            "joint" => Ok(Prior::Joint(decode_joint_support(field_arr(
                v, "support",
            )?)?)),
            "independent" => {
                let agents = field_arr(v, "agents")?
                    .iter()
                    .enumerate()
                    .map(|(i, dist)| {
                        let ctx = |e: CodecError| e.context(&format!("agents[{i}]"));
                        dist.as_arr()
                            .ok_or_else(|| {
                                CodecError::new(format!(
                                    "agents[{i}] must be an array of type distributions"
                                ))
                            })?
                            .iter()
                            .map(|entry| {
                                let t =
                                    decode_type(field(entry, "type").map_err(ctx)?).map_err(ctx)?;
                                let p = field_f64(entry, "prob").map_err(ctx)?;
                                Ok((t, p))
                            })
                            .collect::<Result<Vec<_>, CodecError>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Prior::Independent(agents))
            }
            other => Err(CodecError::new(format!("unknown prior kind `{other}`"))),
        }
    }
}

impl Encode for BayesianNcsGame {
    fn encode(&self) -> Json {
        // The expanded joint support is the game's normal form: an
        // independent prior and its explicit product encode identically,
        // so the cache recognizes them as the same game.
        Json::Obj(vec![
            ("graph".into(), self.graph().encode()),
            (
                "prior".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::str("joint")),
                    ("support".into(), encode_joint_support(self.support())),
                ]),
            ),
        ])
    }
}

impl Decode for BayesianNcsGame {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let graph = Graph::decode(field(v, "graph")?).map_err(|e| e.context("graph"))?;
        let prior = Prior::decode(field(v, "prior")?).map_err(|e| e.context("prior"))?;
        BayesianNcsGame::new(graph, prior)
            .map_err(|e| CodecError::new(format!("invalid NCS game: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::Direction;

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> Graph {
        let mut g = Graph::new(Direction::Directed);
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, 1.0);
        g.add_edge(m, t, 1.0);
        g.add_edge(s, t, 3.0);
        g
    }

    #[test]
    fn priors_round_trip() {
        let joint = Prior::joint(vec![
            (vec![(node(0), node(2)), (node(0), node(0))], 0.25),
            (vec![(node(0), node(2)), (node(0), node(2))], 0.75),
        ]);
        assert_eq!(Prior::decode(&joint.encode()).unwrap(), joint);
        let independent = Prior::independent(vec![
            vec![((node(0), node(2)), 1.0)],
            vec![((node(0), node(2)), 0.5), ((node(0), node(0)), 0.5)],
        ]);
        assert_eq!(Prior::decode(&independent.encode()).unwrap(), independent);
    }

    #[test]
    fn games_round_trip_and_solve_identically() {
        let prior = Prior::independent(vec![
            vec![((node(0), node(2)), 1.0)],
            vec![((node(0), node(2)), 0.5), ((node(0), node(0)), 0.5)],
        ]);
        let game = BayesianNcsGame::new(diamond(), prior).unwrap();
        let decoded = BayesianNcsGame::decode(&game.encode()).unwrap();
        assert_eq!(decoded.canonical_bytes(), game.canonical_bytes());
        assert_eq!(
            decoded.measures().unwrap(),
            game.measures().unwrap(),
            "wire trip must not change solve results"
        );
    }

    #[test]
    fn independent_and_expanded_joint_encode_identically() {
        let independent = Prior::independent(vec![
            vec![((node(0), node(2)), 1.0)],
            vec![((node(0), node(2)), 0.5), ((node(0), node(0)), 0.5)],
        ]);
        let joint = Prior::Joint(independent.support().unwrap());
        let a = BayesianNcsGame::new(diamond(), independent).unwrap();
        let b = BayesianNcsGame::new(diamond(), joint).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let graph = diamond().encode().canonical_string();
        let cases = [
            (
                format!(r#"{{"graph":{graph},"prior":{{"kind":"mystery"}}}}"#),
                "unknown prior kind",
            ),
            (
                format!(
                    r#"{{"graph":{graph},"prior":{{"kind":"joint","support":[{{"types":[[0]],"prob":1}}]}}}}"#
                ),
                "pair",
            ),
            (
                // An unreachable terminal: validation comes from the
                // constructor, not the codec.
                format!(
                    r#"{{"graph":{graph},"prior":{{"kind":"joint","support":[{{"types":[[2,0]],"prob":1}}]}}}}"#
                ),
                "invalid NCS game",
            ),
            (format!(r#"{{"graph":{graph}}}"#), "missing field `prior`"),
        ];
        for (input, want) in cases {
            let err = BayesianNcsGame::decode_str(&input).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{input}: got `{err}`, wanted `{want}`"
            );
        }
    }
}
